#!/usr/bin/env bash
# Waits for a freshly started asm-service / asm-router process to
# announce its bound address, then prints that address on stdout.
#
# Usage: wait_for_service.sh LOGFILE [TRIES]
#
# The server's first stdout line is "asm-service listening on HOST:PORT"
# (or "asm-router listening on ..."), flushed before serving — with
# `--addr 127.0.0.1:0` the OS picks the port, so CI scrapes it from the
# log. Polls LOGFILE every 0.1 s, up to TRIES times (default 100).
#
# Exit-code contract: when the port never opens, the failure exit code
# is the *wrapped process's* exit code whenever it is knowable, so the
# caller sees "the server crashed with 101" instead of a generic
# timeout. The caller opts in by running the server under a wrapper
# that records the code next to the log (NAME.exit beside NAME.log):
#
#   ( server > name.log 2>&1 & child=$!
#     echo "$child" > name.pid
#     wait "$child"; echo $? > name.exit ) &
#
# If NAME.exit appears before the listening line, the process died
# during startup: the script stops polling immediately and exits with
# the recorded code (mapped to 1 if the process somehow exited 0
# without ever listening — success codes must not mask a missing
# address). Without a sidecar the timeout still exits 1.
set -euo pipefail

log="${1:?usage: wait_for_service.sh LOGFILE [TRIES]}"
tries="${2:-100}"
exit_file="${log%.log}.exit"

# Exits with the wrapped process's recorded code (0 mapped to 1).
propagate() {
  local code
  code=$(cat "$exit_file" 2>/dev/null || echo 1)
  case "$code" in
    '' | *[!0-9]*) code=1 ;;
    0) code=1 ;;
  esac
  echo "wait_for_service: process behind $log exited with code $code before listening" >&2
  echo "---- $log ----" >&2
  cat "$log" >&2 || true
  exit "$code"
}

for _ in $(seq 1 "$tries"); do
  if grep -q "listening on" "$log" 2>/dev/null; then
    sed -n 's/^.* listening on //p' "$log" | head -n 1
    exit 0
  fi
  # A recorded exit code means the process is already gone: no amount
  # of further polling will produce an address.
  if [ -s "$exit_file" ]; then
    propagate
  fi
  sleep 0.1
done

if [ -s "$exit_file" ]; then
  propagate
fi
echo "wait_for_service: no 'listening on' line in $log after $tries polls" >&2
echo "---- $log ----" >&2
cat "$log" >&2 || true
exit 1
