#!/usr/bin/env bash
# Waits for a freshly started asm-service / asm-router process to
# announce its bound address, then prints that address on stdout.
#
# Usage: wait_for_service.sh LOGFILE [TRIES]
#
# The server's first stdout line is "asm-service listening on HOST:PORT"
# (or "asm-router listening on ..."), flushed before serving — with
# `--addr 127.0.0.1:0` the OS picks the port, so CI scrapes it from the
# log. Polls LOGFILE every 0.1 s, up to TRIES times (default 100).
set -euo pipefail

log="${1:?usage: wait_for_service.sh LOGFILE [TRIES]}"
tries="${2:-100}"

for _ in $(seq 1 "$tries"); do
  if grep -q "listening on" "$log" 2>/dev/null; then
    sed -n 's/^.* listening on //p' "$log" | head -n 1
    exit 0
  fi
  sleep 0.1
done

echo "wait_for_service: no 'listening on' line in $log after $tries polls" >&2
echo "---- $log ----" >&2
cat "$log" >&2 || true
exit 1
