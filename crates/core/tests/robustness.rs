//! Failure injection and degenerate-parameter robustness: the algorithms
//! must return *valid* matchings and never panic even when their
//! randomized subroutines are starved or their parameters are extreme.

use asm_core::{almost_regular_asm, asm, AlmostRegularParams, AsmConfig};
use asm_instance::{generators, InstanceBuilder};
use asm_matching::verify_matching;
use asm_maximal::MatcherBackend;

#[test]
fn zero_iteration_matcher_yields_valid_empty_matching() {
    // An Israeli–Itai budget of 0 means step 3 never matches anyone; the
    // algorithm degenerates gracefully: no partnerships, no rejections,
    // everyone stays bad, and the output is still a valid (empty) matching.
    let inst = generators::complete(12, 1);
    let config =
        AsmConfig::new(1.0).with_backend(MatcherBackend::IsraeliItai { max_iterations: 0 });
    let report = asm(&inst, &config).unwrap();
    verify_matching(&inst, &report.matching).unwrap();
    assert!(report.matching.is_empty());
    assert_eq!(report.mm_nonmaximal, report.mm_invocations);
    assert_eq!(report.bad_men.len(), 12);
}

#[test]
fn one_iteration_matcher_still_produces_valid_output() {
    let inst = generators::erdos_renyi(16, 16, 0.5, 3);
    let config =
        AsmConfig::new(1.0).with_backend(MatcherBackend::IsraeliItai { max_iterations: 1 });
    let report = asm(&inst, &config).unwrap();
    verify_matching(&inst, &report.matching).unwrap();
    // Starved matching still makes progress (one iteration matches a
    // constant fraction in expectation).
    assert!(!report.matching.is_empty());
}

#[test]
fn starved_matcher_only_degrades_stability_gracefully() {
    let inst = generators::complete(24, 5);
    let starved = asm(
        &inst,
        &AsmConfig::new(1.0).with_backend(MatcherBackend::IsraeliItai { max_iterations: 2 }),
    )
    .unwrap();
    let healthy = asm(
        &inst,
        &AsmConfig::new(1.0).with_backend(MatcherBackend::IsraeliItai { max_iterations: 64 }),
    )
    .unwrap();
    let sb = starved.stability(&inst).blocking_pairs;
    let hb = healthy.stability(&inst).blocking_pairs;
    // Both valid; the healthy run is at least as stable.
    assert!(hb <= sb.max(1), "healthy {hb} vs starved {sb}");
}

#[test]
fn over_and_under_conservative_decay_estimates_stay_valid() {
    let inst = generators::regular(20, 4, 7);
    for decay in [0.05, 0.5, 0.97] {
        let params = AlmostRegularParams {
            decay,
            ..AlmostRegularParams::new(1.0, 0.2)
        };
        let report = almost_regular_asm(&inst, &params).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
    }
}

#[test]
fn asymmetric_side_counts_are_supported() {
    // 5 women, 20 men: most men must end unmatched but classified.
    let inst = generators::erdos_renyi(5, 20, 0.5, 11);
    let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
    verify_matching(&inst, &report.matching).unwrap();
    assert!(report.matching.len() <= 5);
    assert_eq!(
        report.good_men + report.bad_men.len(),
        20,
        "all men classified"
    );
    assert!(report.stability(&inst).is_one_minus_eps_stable(1.0));
}

#[test]
fn single_sided_markets_are_trivially_handled() {
    let no_men = InstanceBuilder::new(5, 0).build().unwrap();
    let report = asm(&no_men, &AsmConfig::new(1.0)).unwrap();
    assert!(report.matching.is_empty());
    let no_women = InstanceBuilder::new(0, 5).build().unwrap();
    let report = asm(&no_women, &AsmConfig::new(1.0)).unwrap();
    assert!(report.matching.is_empty());
    assert_eq!(report.good_men, 5, "men with empty lists are good");
}

#[test]
fn extreme_quantile_counts_behave() {
    let inst = generators::complete(10, 2);
    // k = 1: a single quantile — men propose to everyone at once.
    let coarse = AsmConfig {
        quantiles: Some(1),
        ..AsmConfig::new(1.0)
    };
    let r1 = asm(&inst, &coarse).unwrap();
    verify_matching(&inst, &r1.matching).unwrap();
    // k much larger than any degree: every quantile holds <= 1 woman, so
    // ASM degenerates to Gale–Shapley-like behavior (Section 3.2).
    let fine = AsmConfig {
        quantiles: Some(1000),
        ..AsmConfig::new(1.0)
    };
    let r2 = asm(&inst, &fine).unwrap();
    verify_matching(&inst, &r2.matching).unwrap();
    assert_eq!(
        r2.stability(&inst).blocking_pairs,
        0,
        "k >= deg reproduces exact Gale-Shapley stability"
    );
}

#[test]
fn huge_epsilon_is_effectively_free() {
    let inst = generators::complete(12, 9);
    let report = asm(&inst, &AsmConfig::new(8.0)).unwrap(); // k = 1
    verify_matching(&inst, &report.matching).unwrap();
    assert!(report.stability(&inst).is_one_minus_eps_stable(8.0));
}

#[test]
fn seeds_do_not_affect_deterministic_backends() {
    let inst = generators::zipf(14, 5, 1.0, 3);
    for backend in [
        MatcherBackend::HkpOracle,
        MatcherBackend::DetGreedy,
        MatcherBackend::BipartiteProposal,
    ] {
        let a = asm(
            &inst,
            &AsmConfig::new(1.0).with_seed(1).with_backend(backend),
        )
        .unwrap();
        let b = asm(
            &inst,
            &AsmConfig::new(1.0).with_seed(999).with_backend(backend),
        )
        .unwrap();
        assert_eq!(a.matching, b.matching, "{backend:?}");
        assert_eq!(a.rounds, b.rounds, "{backend:?}");
    }
}
