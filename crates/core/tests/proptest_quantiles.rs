//! Property-based tests of the quantized-preference structure against a
//! brute-force model: counts, quantile boundaries, and removal behavior
//! must agree for every list length, k, and removal sequence.

use asm_congest::NodeId;
use asm_core::QuantizedPrefs;
use proptest::prelude::*;

/// Brute-force model: the definition applied literally.
struct Model {
    ranked: Vec<NodeId>,
    k: usize,
    removed: Vec<bool>,
}

impl Model {
    fn quantile_of_rank(&self, rank_1based: usize) -> u32 {
        ((rank_1based * self.k).div_ceil(self.ranked.len())) as u32
    }

    fn surviving_in_quantile(&self, q: u32) -> Vec<NodeId> {
        self.ranked
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.removed[*i] && self.quantile_of_rank(i + 1) == q)
            .map(|(_, &u)| u)
            .collect()
    }

    fn min_nonempty(&self) -> Option<u32> {
        (1..=self.k as u32).find(|&q| !self.surviving_in_quantile(q).is_empty())
    }
}

fn arb_case() -> impl Strategy<Value = (Vec<u32>, usize, Vec<usize>)> {
    (1usize..40, 1usize..20).prop_flat_map(|(deg, k)| {
        let removals = proptest::collection::vec(0..deg, 0..deg * 2);
        (
            Just((0..deg as u32).collect::<Vec<u32>>()),
            Just(k),
            removals,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_brute_force_model((ids, k, removals) in arb_case()) {
        let ranked: Vec<NodeId> = ids.iter().map(|&x| NodeId::new(x * 3 + 1)).collect();
        let mut q = QuantizedPrefs::new(&ranked, k);
        let mut model = Model {
            ranked: ranked.clone(),
            k,
            removed: vec![false; ranked.len()],
        };
        // Interleave removals with checks.
        for &r in &removals {
            let victim = ranked[r];
            let fresh = q.remove(victim);
            prop_assert_eq!(fresh, !model.removed[r], "removal freshness");
            model.removed[r] = true;

            prop_assert_eq!(
                q.remaining(),
                model.removed.iter().filter(|&&x| !x).count()
            );
            prop_assert_eq!(q.min_nonempty_quantile(), model.min_nonempty());
            for quant in 1..=k as u32 {
                prop_assert_eq!(q.members_of(quant), model.surviving_in_quantile(quant));
            }
        }
        // Quantile assignment matches the definition for every member.
        for (i, &u) in ranked.iter().enumerate() {
            prop_assert_eq!(q.quantile_of(u), Some(model.quantile_of_rank(i + 1)));
        }
    }

    #[test]
    fn members_at_or_worse_is_suffix_union((ids, k, removals) in arb_case()) {
        let ranked: Vec<NodeId> = ids.iter().map(|&x| NodeId::new(x + 100)).collect();
        let mut q = QuantizedPrefs::new(&ranked, k);
        for &r in &removals {
            q.remove(ranked[r]);
        }
        for threshold in 1..=k as u32 {
            let worse = q.members_at_or_worse(threshold);
            let expected: Vec<NodeId> = (threshold..=k as u32)
                .flat_map(|quant| q.members_of(quant))
                .collect();
            // Both are in rank order, so direct equality holds.
            prop_assert_eq!(worse, expected);
        }
    }

    #[test]
    fn quantile_count_and_sizes((ids, k, _) in arb_case()) {
        let ranked: Vec<NodeId> = ids.iter().map(|&x| NodeId::new(x)).collect();
        let deg = ranked.len();
        let q = QuantizedPrefs::new(&ranked, k);
        // Quantiles partition the list...
        let total: usize = (1..=k as u32).map(|qq| q.members_of(qq).len()).sum();
        prop_assert_eq!(total, deg);
        // ...into blocks of size <= ceil(deg/k)...
        let cap = deg.div_ceil(k);
        for qq in 1..=k as u32 {
            prop_assert!(q.members_of(qq).len() <= cap);
        }
        // ...and quantile indices are monotone in rank.
        let mut last = 0;
        for &u in &ranked {
            let now = q.quantile_of(u).unwrap();
            prop_assert!(now >= last);
            last = now;
        }
    }
}
