//! Quantile edge cases from DESIGN.md §3: when `deg(v) ≤ k` every
//! quantile is a single rank and `ProposalRound` degenerates to classical
//! Gale–Shapley; at the other extreme `k = 1` collapses every list to one
//! quantile; and empty preference lists must flow through untouched.

use asm_core::baselines::distributed_gs;
use asm_core::{almost_regular_asm, asm, rand_asm, AlmostRegularParams, AsmConfig, RandAsmParams};
use asm_instance::{generators, Instance};
use asm_matching::{count_blocking_pairs, man_optimal_stable, verify_matching};
use asm_maximal::MatcherBackend;

fn families(n: usize, seed: u64) -> Vec<(&'static str, Instance)> {
    vec![
        ("complete", generators::complete(n, seed)),
        ("erdos_renyi", generators::erdos_renyi(n, n, 0.4, seed)),
        ("regular", generators::regular(n, 4.min(n), seed)),
        ("chain", generators::adversarial_chain(n)),
        ("master_list", generators::master_list(n, seed)),
    ]
}

fn max_degree(inst: &Instance) -> usize {
    let ids = inst.ids();
    (0..ids.num_players())
        .map(|i| inst.prefs(asm_congest::NodeId::new(i as u32)).degree())
        .max()
        .unwrap_or(0)
}

#[test]
fn deg_at_most_k_degenerates_to_exact_gale_shapley() {
    // DESIGN.md §3: with deg(v) ≤ k each quantile is a single rank, so
    // the quantile-truncated proposals are exactly classical proposals
    // and ASM computes the man-optimal stable matching — zero blocking
    // pairs and no bad men, not just the ε·|E| budget.
    for (name, inst) in families(16, 7) {
        let config = AsmConfig::new(0.1); // k = 80 > every degree here
        assert!(max_degree(&inst) <= config.quantile_count(), "{name}");
        let report = asm(&inst, &config).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        let gs = man_optimal_stable(&inst);
        assert_eq!(
            report.matching, gs.matching,
            "{name}: deg ≤ k must reproduce the man-optimal stable matching"
        );
        assert_eq!(count_blocking_pairs(&inst, &report.matching), 0, "{name}");
        assert!(report.bad_men.is_empty(), "{name}");
    }
}

#[test]
fn degeneration_agrees_with_distributed_gs_baseline() {
    // Both the centralized and the distributed GS baselines compute the
    // man-optimal stable matching, so the degenerate ASM must agree with
    // either; checking the distributed one exercises a different code path.
    let inst = generators::zipf(20, 5, 1.2, 13);
    let config = AsmConfig::new(0.1);
    assert!(max_degree(&inst) <= config.quantile_count());
    let report = asm(&inst, &config).unwrap();
    let gs = distributed_gs(&inst);
    assert!(gs.converged);
    assert_eq!(report.matching, gs.matching);
}

#[test]
fn degeneration_holds_for_every_backend() {
    // The GS-degeneration argument is about quantile truncation, not the
    // maximal-matching subroutine, so it must hold under every backend.
    let inst = generators::erdos_renyi(14, 14, 0.5, 3);
    let gs = man_optimal_stable(&inst);
    for backend in [
        MatcherBackend::HkpOracle,
        MatcherBackend::DetGreedy,
        MatcherBackend::BipartiteProposal,
        MatcherBackend::PanconesiRizzi,
        MatcherBackend::IsraeliItai { max_iterations: 64 },
    ] {
        let config = AsmConfig::new(0.1).with_backend(backend);
        let report = asm(&inst, &config).unwrap();
        assert_eq!(
            report.matching, gs.matching,
            "{backend:?} broke the GS degeneration"
        );
    }
}

#[test]
fn boundary_k_exactly_max_degree_still_degenerates() {
    // deg(v) ≤ k with equality: complete(n) has degree n, and eps = 8/n
    // gives k = n exactly — still one rank per quantile.
    let n = 10;
    let inst = generators::complete(n, 5);
    let config = AsmConfig::new(8.0 / n as f64);
    assert_eq!(config.quantile_count(), n);
    assert_eq!(max_degree(&inst), n);
    let report = asm(&inst, &config).unwrap();
    assert_eq!(report.matching, man_optimal_stable(&inst).matching);
}

#[test]
fn single_quantile_k_equals_one() {
    // eps = 8 is the loosest valid target: k = ⌈8/8⌉ = 1, every list is
    // one quantile, and δ clamps to 1/2. The run must still produce a
    // valid matching within the (trivially loose) 8·|E| budget.
    let config = AsmConfig::new(8.0);
    assert_eq!(config.quantile_count(), 1);
    assert_eq!(config.delta(), 0.5);
    for (name, inst) in families(16, 11) {
        let report = asm(&inst, &config).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        let num_men = inst.ids().num_men();
        // Partition accounting survives the degenerate quantile count.
        let matched_men = report.matching.len();
        assert!(report.bad_men.len() <= num_men, "{name}");
        assert!(matched_men <= num_men, "{name}");
        // k = 1 means a single proposal quantile: men propose to their
        // whole list at once, so the blocking-pair budget ε·|E| = 8·|E|
        // is non-binding but the matching must still be over real edges.
        assert!(
            count_blocking_pairs(&inst, &report.matching) as f64 <= 8.0 * inst.num_edges() as f64,
            "{name}"
        );
    }
}

#[test]
fn empty_preference_lists_flow_through_all_algorithms() {
    // p = 0 Erdős–Rényi gives every player an empty list; complete(0)
    // and complete(1) are the smallest well-formed instances. All three
    // algorithm variants must return an empty (hence valid) matching
    // without panicking.
    let instances = [
        ("er_p0", generators::erdos_renyi(3, 3, 0.0, 1)),
        ("complete_0", generators::complete(0, 1)),
        ("complete_1", generators::complete(1, 1)),
    ];
    for (name, inst) in &instances {
        let asm_report = asm(inst, &AsmConfig::new(1.0)).unwrap();
        verify_matching(inst, &asm_report.matching).unwrap();

        let rand_report = rand_asm(inst, &RandAsmParams::new(1.0, 0.1)).unwrap();
        verify_matching(inst, &rand_report.matching).unwrap();

        let ar_report = almost_regular_asm(inst, &AlmostRegularParams::new(1.0, 0.1)).unwrap();
        verify_matching(inst, &ar_report.matching).unwrap();

        if inst.num_edges() == 0 {
            assert!(asm_report.matching.is_empty(), "{name}");
            assert!(rand_report.matching.is_empty(), "{name}");
            assert!(ar_report.matching.is_empty(), "{name}");
            // Empty lists are exhausted lists: every man is good.
            assert!(asm_report.bad_men.is_empty(), "{name}");
        }
    }
}

#[test]
fn some_empty_lists_mixed_with_real_lists() {
    // A sparse market where some — but not all — players have empty
    // lists: isolated players must stay unmatched and good while the
    // rest still degenerate to exact GS under a large k.
    let inst = generators::erdos_renyi(12, 12, 0.15, 19);
    let config = AsmConfig::new(0.1);
    let report = asm(&inst, &config).unwrap();
    verify_matching(&inst, &report.matching).unwrap();
    assert_eq!(report.matching, man_optimal_stable(&inst).matching);
    let ids = inst.ids();
    for j in 0..ids.num_men() {
        let m = ids.man(j);
        if inst.prefs(m).is_empty() {
            assert!(!report.matching.is_matched(m));
            assert!(!report.bad_men.contains(&m));
        }
    }
}
