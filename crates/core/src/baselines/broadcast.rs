//! The broadcast-then-solve baseline of the paper's footnote 1.

use super::GsReport;
use asm_instance::Instance;
use asm_matching::man_optimal_stable;

/// The trivial baseline from footnote 1 of the paper: with complete
/// preferences, every player broadcasts their list to all others in
/// `O(n)` rounds, after which each player runs *centralized* Gale–Shapley
/// locally.
///
/// The communication cost is low — modeled here as `2n` rounds (each of a
/// player's `n` links must carry the `2n·n` total list entries it needs
/// to learn, at one `O(log n)`-bit entry per round per link) — but as the
/// footnote notes, the **synchronous distributed run-time is still
/// `Θ̃(n²)`** because of the local Gale–Shapley execution; ASM's point is
/// to beat that, not the round count alone. Returns `None` for incomplete
/// preferences, where a single broadcast round-count model is not
/// meaningful (the graph may even be disconnected).
///
/// # Examples
///
/// ```
/// use asm_core::baselines::broadcast_gs;
/// use asm_instance::generators;
///
/// let inst = generators::complete(16, 1);
/// let report = broadcast_gs(&inst).expect("complete instance");
/// assert_eq!(report.rounds, 32);
/// assert!(report.converged);
///
/// let sparse = generators::regular(16, 3, 1);
/// assert!(broadcast_gs(&sparse).is_none());
/// ```
pub fn broadcast_gs(inst: &Instance) -> Option<GsReport> {
    if !inst.is_complete() || inst.ids().num_men() == 0 {
        return None;
    }
    let n = inst.ids().num_men() as u64;
    let gs = man_optimal_stable(inst);
    Some(GsReport {
        matching: gs.matching,
        cycles: n, // the broadcast phases; no proposal cycles on the wire
        rounds: 2 * n,
        proposals: gs.proposals,
        converged: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;
    use asm_matching::count_blocking_pairs;

    #[test]
    fn matches_centralized_gs_exactly() {
        let inst = generators::complete(12, 4);
        let b = broadcast_gs(&inst).unwrap();
        assert_eq!(b.matching, man_optimal_stable(&inst).matching);
        assert_eq!(count_blocking_pairs(&inst, &b.matching), 0);
    }

    #[test]
    fn rounds_are_linear_in_n() {
        let small = broadcast_gs(&generators::complete(8, 1)).unwrap();
        let large = broadcast_gs(&generators::complete(32, 1)).unwrap();
        assert_eq!(small.rounds, 16);
        assert_eq!(large.rounds, 64);
    }

    #[test]
    fn incomplete_instances_rejected() {
        assert!(broadcast_gs(&generators::erdos_renyi(8, 8, 0.5, 1)).is_none());
        let empty = asm_instance::InstanceBuilder::new(0, 0).build().unwrap();
        assert!(broadcast_gs(&empty).is_none());
    }
}
