//! Distributed Gale–Shapley and its truncation.

use asm_congest::NodeId;
use asm_instance::Instance;
use asm_matching::Matching;
use serde::{Deserialize, Serialize};

/// Result of a (possibly truncated) distributed Gale–Shapley run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GsReport {
    /// The matching at termination/truncation.
    pub matching: Matching,
    /// Proposal cycles executed (each cycle = 2 CONGEST rounds).
    pub cycles: u64,
    /// CONGEST communication rounds (`2 · cycles`).
    pub rounds: u64,
    /// Total PROPOSE messages sent.
    pub proposals: u64,
    /// Whether the process ran to quiescence (true) or hit the truncation
    /// budget (false).
    pub converged: bool,
}

/// Core synchronous Gale–Shapley loop.
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by side index
///
/// Each 2-round cycle: every free man with an untried woman proposes to the
/// best woman who has not rejected him; every woman keeps the best of
/// {current partner} ∪ {proposers} and rejects the rest; rejected men
/// advance down their lists.
fn run(inst: &Instance, max_cycles: Option<u64>) -> GsReport {
    let ids = inst.ids();
    let mut matching = Matching::new(ids.num_players());
    // next[j]: index into man j's list of his current proposal target.
    let mut next: Vec<usize> = vec![0; ids.num_men()];
    let mut cycles: u64 = 0;
    let mut proposals: u64 = 0;

    loop {
        if let Some(budget) = max_cycles {
            if cycles >= budget {
                return GsReport {
                    rounds: 2 * cycles,
                    matching,
                    cycles,
                    proposals,
                    converged: false,
                };
            }
        }
        // Propose round (proposers enumerated in man-id order, as a
        // CONGEST inbox would deliver them).
        let mut received: Vec<Vec<NodeId>> = vec![Vec::new(); ids.num_women()];
        let mut any = false;
        for j in 0..ids.num_men() {
            let m = ids.man(j);
            if matching.is_matched(m) {
                continue;
            }
            if let Some(&w) = inst.prefs(m).ranked().get(next[j]) {
                received[w.index()].push(m);
                proposals += 1;
                any = true;
            }
        }
        if !any {
            return GsReport {
                rounds: 2 * cycles,
                matching,
                cycles,
                proposals,
                converged: true,
            };
        }
        cycles += 1;
        // Accept/reject round.
        for i in 0..ids.num_women() {
            if received[i].is_empty() {
                continue;
            }
            let w = ids.woman(i);
            let best = *received[i]
                .iter()
                .min_by_key(|&&m| inst.rank(w, m).expect("proposer is acceptable"))
                .expect("nonempty");
            let keep_current = match matching.partner(w) {
                Some(p) => inst.rank(w, p) < inst.rank(w, best),
                None => false,
            };
            let winner = if keep_current {
                matching.partner(w).expect("checked above")
            } else {
                if let Some(old) = matching.remove(w) {
                    // Displaced partner resumes from his next choice.
                    next[ids.side_index(old)] += 1;
                }
                matching.add_pair(best, w).expect("both free");
                best
            };
            for &m in &received[i] {
                if m != winner {
                    next[ids.side_index(m)] += 1;
                }
            }
        }
    }
}

/// Runs distributed Gale–Shapley to quiescence, producing the man-optimal
/// stable matching.
///
/// # Examples
///
/// ```
/// use asm_core::baselines::distributed_gs;
/// use asm_instance::generators;
/// use asm_matching::count_blocking_pairs;
///
/// let inst = generators::complete(16, 1);
/// let gs = distributed_gs(&inst);
/// assert!(gs.converged);
/// assert_eq!(count_blocking_pairs(&inst, &gs.matching), 0);
/// ```
pub fn distributed_gs(inst: &Instance) -> GsReport {
    run(inst, None)
}

/// Runs distributed Gale–Shapley for at most `max_cycles` proposal cycles
/// and returns whatever matching stands — the truncation strategy of
/// Floréen et al. \[3\] for almost stable matchings on bounded lists.
pub fn truncated_gs(inst: &Instance, max_cycles: u64) -> GsReport {
    run(inst, Some(max_cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;
    use asm_matching::{count_blocking_pairs, man_optimal_stable, StabilityReport};

    #[test]
    fn agrees_with_centralized_gs() {
        for seed in 0..5 {
            let inst = generators::erdos_renyi(14, 14, 0.5, seed);
            let dist = distributed_gs(&inst);
            let central = man_optimal_stable(&inst);
            assert_eq!(
                dist.matching, central.matching,
                "both compute the man-optimal stable matching (seed {seed})"
            );
        }
    }

    #[test]
    fn chain_instance_takes_linear_cycles() {
        let n = 64;
        let inst = generators::adversarial_chain(n);
        let gs = distributed_gs(&inst);
        assert!(
            gs.cycles >= n as u64 - 1,
            "the displacement chain serializes: got {} cycles",
            gs.cycles
        );
        assert_eq!(count_blocking_pairs(&inst, &gs.matching), 0);
    }

    #[test]
    fn truncation_monotonically_improves() {
        let inst = generators::regular(32, 6, 3);
        let full = distributed_gs(&inst);
        let mut last = usize::MAX;
        for budget in [1u64, 2, 4, 8, 64] {
            let t = truncated_gs(&inst, budget);
            let b = StabilityReport::analyze(&inst, &t.matching).blocking_pairs;
            // Not strictly monotone in general, but the trend must reach 0.
            if budget >= full.cycles {
                assert!(t.converged);
                assert_eq!(b, 0);
            }
            last = last.min(b);
        }
        assert_eq!(last, last);
    }

    #[test]
    fn zero_budget_returns_empty_matching() {
        let inst = generators::complete(8, 1);
        let t = truncated_gs(&inst, 0);
        assert!(!t.converged);
        assert!(t.matching.is_empty());
        assert_eq!(t.rounds, 0);
    }

    #[test]
    fn rounds_are_twice_cycles() {
        let inst = generators::complete(10, 4);
        let gs = distributed_gs(&inst);
        assert_eq!(gs.rounds, 2 * gs.cycles);
        assert!(gs.proposals >= 10);
    }

    #[test]
    fn empty_instance_converges_immediately() {
        let inst = asm_instance::InstanceBuilder::new(3, 3).build().unwrap();
        let gs = distributed_gs(&inst);
        assert!(gs.converged);
        assert_eq!(gs.cycles, 0);
    }

    #[test]
    fn master_list_is_fast_in_cycles_but_heavy_in_proposals() {
        // All men propose to the same woman; one survives per cycle, so
        // cycles ~ n but proposals ~ n²/2.
        let n = 24u64;
        let inst = generators::master_list(n as usize, 1);
        let gs = distributed_gs(&inst);
        assert!(gs.converged);
        assert_eq!(gs.proposals, n * (n + 1) / 2);
    }
}
