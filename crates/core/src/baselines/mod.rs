//! Baseline algorithms the paper compares against.
//!
//! * [`distributed_gs`] — the classical distributed interpretation of
//!   Gale–Shapley (Section 1.1): each free man proposes to his best
//!   not-yet-rejecting woman each cycle; women keep their best suitor.
//!   Produces the man-optimal *stable* matching in `O(n²)` worst-case
//!   cycles.
//! * [`truncated_gs`] — the same process stopped after a fixed number of
//!   cycles, the Floréen–Kaski–Polishchuk–Suomela \[3\] approach to almost
//!   stable matchings on bounded preference lists (experiment F6).
//! * [`broadcast_gs`] — footnote 1's broadcast-then-solve-locally scheme:
//!   `O(n)` rounds but `Θ̃(n²)` synchronous run-time.
//! * [`congest_gs`] — the same deferred-acceptance protocol as real
//!   message-passing processes, for wire-level round validation.

mod broadcast;
mod congest_gs;
mod gs;

pub use broadcast::broadcast_gs;
pub use congest_gs::{congest_gs, CongestGsReport, GsMsg, GsPlayer};
pub use gs::{distributed_gs, truncated_gs, GsReport};
