//! Message-passing distributed Gale–Shapley.
//!
//! The [`super::distributed_gs`] baseline simulates proposal cycles on
//! vectors; this module runs the same deferred-acceptance protocol as real
//! CONGEST processes, validating the baseline's round accounting at the
//! wire level. The protocol is fully event-driven:
//!
//! * a free man proposes to the best woman who has not rejected him, then
//!   waits — silence means tentative acceptance;
//! * a woman keeps the best proposer seen so far (her tentative partner)
//!   and sends `Reject` to everyone else, including a displaced partner;
//! * a rejected man proposes again in the round he learns of it.
//!
//! Quiescence therefore implies no free man has anywhere left to propose:
//! the matching is the man-optimal stable one, byte-identical to the
//! centralized computation.

use asm_congest::{CongestError, Envelope, NetStats, Network, NodeId, Outbox, Payload, Process};
use asm_instance::{Gender, Instance};
use asm_matching::Matching;

/// Messages of the Gale–Shapley protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GsMsg {
    /// A man proposes.
    Propose,
    /// A woman rejects (now or displacing a tentative partner).
    Reject,
}

impl Payload for GsMsg {
    fn bits(&self) -> usize {
        1
    }
}

/// One player of the message-passing Gale–Shapley protocol.
#[derive(Clone, Debug)]
pub struct GsPlayer {
    gender: Gender,
    /// Ranked preference list (women: used for comparisons; men: proposal
    /// order).
    prefs: Vec<NodeId>,
    /// Men: index of the next woman to try.
    next: usize,
    /// Men: the woman currently holding his proposal; women: tentative
    /// partner.
    engaged_to: Option<NodeId>,
    /// Men: set when a proposal should be sent this round.
    must_propose: bool,
}

impl GsPlayer {
    /// Creates a player from its ranked preference list.
    pub fn new(gender: Gender, prefs: Vec<NodeId>) -> Self {
        GsPlayer {
            gender,
            prefs,
            next: 0,
            engaged_to: None,
            must_propose: true,
        }
    }

    /// The tentative (at quiescence: final) partner.
    pub fn engaged_to(&self) -> Option<NodeId> {
        self.engaged_to
    }

    fn rank_of(&self, m: NodeId) -> usize {
        self.prefs
            .iter()
            .position(|&x| x == m)
            .expect("proposer must be acceptable (symmetric preferences)")
    }
}

impl Process for GsPlayer {
    type Msg = GsMsg;

    fn on_round(&mut self, inbox: &[Envelope<GsMsg>], outbox: &mut Outbox<GsMsg>) {
        match self.gender {
            Gender::Man => {
                for e in inbox {
                    if e.payload == GsMsg::Reject && self.engaged_to == Some(e.src) {
                        self.engaged_to = None;
                        self.next += 1;
                        self.must_propose = true;
                    }
                }
                if self.must_propose {
                    self.must_propose = false;
                    if let Some(&w) = self.prefs.get(self.next) {
                        self.engaged_to = Some(w);
                        outbox.send(w, GsMsg::Propose);
                    }
                }
            }
            Gender::Woman => {
                for e in inbox {
                    if e.payload != GsMsg::Propose {
                        continue;
                    }
                    let better = match self.engaged_to {
                        None => true,
                        Some(current) => self.rank_of(e.src) < self.rank_of(current),
                    };
                    if better {
                        if let Some(old) = self.engaged_to.replace(e.src) {
                            outbox.send(old, GsMsg::Reject);
                        }
                    } else {
                        outbox.send(e.src, GsMsg::Reject);
                    }
                }
            }
        }
    }
}

/// Outcome of a message-passing Gale–Shapley run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CongestGsReport {
    /// The man-optimal stable matching.
    pub matching: Matching,
    /// Measured network statistics.
    pub stats: NetStats,
}

/// Runs the Gale–Shapley protocol to quiescence on the instance's
/// communication graph.
///
/// # Errors
///
/// Propagates network errors; the round cap is `2·|E| + 4` (each of the
/// at most `|E|` proposals takes a 2-round exchange).
///
/// # Examples
///
/// ```
/// use asm_core::baselines::{congest_gs, distributed_gs};
/// use asm_instance::generators;
///
/// let inst = generators::complete(12, 3);
/// let wire = congest_gs(&inst)?;
/// assert_eq!(wire.matching, distributed_gs(&inst).matching);
/// # Ok::<(), asm_congest::CongestError>(())
/// ```
pub fn congest_gs(inst: &Instance) -> Result<CongestGsReport, CongestError> {
    let ids = inst.ids();
    let players: Vec<GsPlayer> = ids
        .players()
        .map(|v| GsPlayer::new(ids.gender(v), inst.prefs(v).ranked().to_vec()))
        .collect();
    let mut net = Network::new(inst.topology(), players)?;
    net.set_bit_budget(8);
    net.run_until_quiescent(2 * inst.num_edges() as u64 + 4)?;

    // Women's tentative partners are final; cross-check the men agree.
    let mut matching = Matching::new(ids.num_players());
    for w in ids.women() {
        if let Some(m) = net.node(w).engaged_to() {
            debug_assert_eq!(net.node(m).engaged_to(), Some(w));
            matching
                .add_pair(m, w)
                .expect("tentative partners are disjoint");
        }
    }
    Ok(CongestGsReport {
        matching,
        stats: net.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::distributed_gs;
    use asm_instance::generators;
    use asm_matching::count_blocking_pairs;

    #[test]
    fn agrees_with_vector_baseline_on_every_family() {
        let instances = vec![
            generators::complete(10, 1),
            generators::erdos_renyi(12, 12, 0.4, 2),
            generators::regular(10, 3, 3),
            generators::zipf(10, 3, 1.2, 4),
            generators::adversarial_chain(10),
            generators::master_list(8, 5),
        ];
        for (i, inst) in instances.into_iter().enumerate() {
            let wire = congest_gs(&inst).unwrap();
            let fast = distributed_gs(&inst);
            assert_eq!(wire.matching, fast.matching, "family #{i}");
            assert_eq!(count_blocking_pairs(&inst, &wire.matching), 0);
        }
    }

    #[test]
    fn measured_rounds_track_cycle_accounting() {
        let inst = generators::adversarial_chain(32);
        let wire = congest_gs(&inst).unwrap();
        let fast = distributed_gs(&inst);
        // Chain serializes: 2 rounds per displacement in both accountings,
        // up to pipeline slack.
        let measured = wire.stats.rounds;
        assert!(
            measured >= fast.rounds && measured <= fast.rounds + 8,
            "measured {measured} vs modeled {}",
            fast.rounds
        );
    }

    #[test]
    fn proposals_on_wire_match_model() {
        let inst = generators::master_list(12, 7);
        let wire = congest_gs(&inst).unwrap();
        let fast = distributed_gs(&inst);
        // Every modeled proposal is one Propose message; Rejects add the
        // rest of the traffic.
        assert!(wire.stats.messages >= fast.proposals);
        assert!(wire.stats.max_message_bits <= 1);
    }

    #[test]
    fn empty_instance_quiesces_immediately() {
        let inst = asm_instance::InstanceBuilder::new(2, 2).build().unwrap();
        let wire = congest_gs(&inst).unwrap();
        assert!(wire.matching.is_empty());
        assert_eq!(wire.stats.rounds, 0);
    }

    #[test]
    fn sparse_instances_leave_unmatched_players() {
        let inst = generators::erdos_renyi(15, 15, 0.1, 9);
        let wire = congest_gs(&inst).unwrap();
        assert_eq!(wire.matching, distributed_gs(&inst).matching);
    }
}
