//! Shared algorithm state for the vector ("fast") engine.

use crate::QuantizedPrefs;
use asm_congest::NodeId;
use asm_instance::Instance;
use asm_matching::Matching;

/// The combined state of all players during an `ASM` run (Section 3.1):
/// quantized preferences `Q`, current partners `p`, the men's active sets
/// `A` (represented implicitly as "surviving members of the active
/// quantile"), and the removed-from-play flags used by
/// `AlmostRegularASM`.
#[derive(Clone, Debug)]
pub struct AsmState {
    /// Quantile count `k`.
    pub k: usize,
    /// Per-player quantized preferences, indexed by node id.
    pub quant: Vec<QuantizedPrefs>,
    /// Per-player current partner.
    pub partner: Vec<Option<NodeId>>,
    /// Men's active quantile: `A = ` surviving members of this quantile.
    /// `None` means `A = ∅`.
    pub active_quantile: Vec<Option<u32>>,
    /// `AlmostRegularASM` only: players permanently removed from play
    /// after violating maximality in an `AMM` call.
    pub removed_from_play: Vec<bool>,
}

impl AsmState {
    /// Initializes the state from an instance: all quantiles full, no
    /// partners, all `A = ∅`.
    pub fn new(inst: &Instance, k: usize) -> Self {
        let n = inst.ids().num_players();
        let quant = inst
            .ids()
            .players()
            .map(|v| QuantizedPrefs::new(inst.prefs(v).ranked(), k))
            .collect();
        AsmState {
            k,
            quant,
            partner: vec![None; n],
            active_quantile: vec![None; n],
            removed_from_play: vec![false; n],
        }
    }

    /// The man's active set `A`: surviving members of his active quantile.
    pub fn active_set(&self, man: NodeId) -> Vec<NodeId> {
        match self.active_quantile[man.index()] {
            Some(q) => self.quant[man.index()].members_of(q),
            None => Vec::new(),
        }
    }

    /// Whether a man is *good* (Section 4): matched, or rejected by every
    /// acceptable partner.
    pub fn is_good(&self, man: NodeId) -> bool {
        self.partner[man.index()].is_some() || self.quant[man.index()].is_exhausted()
    }

    /// Applies a mutual rejection of the edge `(a, b)`: each removes the
    /// other from their `Q`, and a man rejected by his own partner becomes
    /// unmatched (step 5 of `ProposalRound`).
    pub fn reject_edge(&mut self, a: NodeId, b: NodeId) {
        self.quant[a.index()].remove(b);
        self.quant[b.index()].remove(a);
        if self.partner[a.index()] == Some(b) {
            self.partner[a.index()] = None;
            self.partner[b.index()] = None;
        }
    }

    /// Extracts the current matching.
    pub fn matching(&self) -> Matching {
        let mut m = Matching::new(self.partner.len());
        for (i, p) in self.partner.iter().enumerate() {
            if let Some(v) = p {
                let u = NodeId::new(i as u32);
                if u < *v {
                    m.add_pair(u, *v).expect("partner table is symmetric");
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;

    #[test]
    fn initial_state_shape() {
        let inst = generators::complete(4, 1);
        let st = AsmState::new(&inst, 2);
        assert_eq!(st.quant.len(), 8);
        assert!(st.partner.iter().all(Option::is_none));
        for v in inst.ids().players() {
            assert_eq!(st.quant[v.index()].remaining(), 4);
        }
        let m0 = inst.ids().man(0);
        assert!(st.active_set(m0).is_empty());
        assert!(!st.is_good(m0));
    }

    #[test]
    fn active_set_follows_quantile() {
        let inst = generators::complete(4, 1);
        let mut st = AsmState::new(&inst, 2);
        let m0 = inst.ids().man(0);
        st.active_quantile[m0.index()] = Some(1);
        let a = st.active_set(m0);
        assert_eq!(a.len(), 2, "first quantile of a degree-4 list with k=2");
        // Rejections shrink A.
        let first = a[0];
        st.reject_edge(m0, first);
        assert_eq!(st.active_set(m0).len(), 1);
    }

    #[test]
    fn reject_edge_unmatches_partners() {
        let inst = generators::complete(2, 1);
        let mut st = AsmState::new(&inst, 2);
        let (m, w) = (inst.ids().man(0), inst.ids().woman(0));
        st.partner[m.index()] = Some(w);
        st.partner[w.index()] = Some(m);
        st.reject_edge(w, m);
        assert_eq!(st.partner[m.index()], None);
        assert_eq!(st.partner[w.index()], None);
        assert!(!st.quant[m.index()].contains(w));
        assert!(!st.quant[w.index()].contains(m));
    }

    #[test]
    fn good_men_classification() {
        let inst = generators::complete(2, 1);
        let mut st = AsmState::new(&inst, 2);
        let m = inst.ids().man(0);
        assert!(!st.is_good(m));
        st.partner[m.index()] = Some(inst.ids().woman(0));
        assert!(st.is_good(m), "matched men are good");
        st.partner[m.index()] = None;
        st.quant[m.index()].remove(inst.ids().woman(0));
        st.quant[m.index()].remove(inst.ids().woman(1));
        assert!(st.is_good(m), "fully rejected men are good");
    }

    #[test]
    fn matching_extraction_is_symmetric() {
        let inst = generators::complete(3, 1);
        let mut st = AsmState::new(&inst, 2);
        let (m1, w2) = (inst.ids().man(1), inst.ids().woman(2));
        st.partner[m1.index()] = Some(w2);
        st.partner[w2.index()] = Some(m1);
        let m = st.matching();
        assert_eq!(m.len(), 1);
        assert!(m.contains_pair(m1, w2));
    }
}
