//! Algorithm configuration.

use asm_maximal::MatcherBackend;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Configuration for `ASM` and its variants (Algorithm 3).
///
/// The defaults reproduce the paper's parameter choices exactly:
/// `k = ⌈8/ε⌉` quantiles, `δ = ε/8`, and `2δ⁻¹k` inner iterations per
/// outer iteration. The knobs exist for the T6 ablation experiments —
/// production callers only need [`AsmConfig::new`].
///
/// # Examples
///
/// ```
/// use asm_core::AsmConfig;
///
/// let config = AsmConfig::new(0.5);
/// assert_eq!(config.quantile_count(), 16);       // ceil(8 / 0.5)
/// assert_eq!(config.delta(), 0.0625);            // 0.5 / 8
/// assert_eq!(config.inner_iterations(), 512);    // 2 * k / delta
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AsmConfig {
    /// The stability target: the output has at most `ε·|E|` blocking pairs.
    pub epsilon: f64,
    /// Override for the quantile count `k` (default `⌈8/ε⌉`).
    pub quantiles: Option<usize>,
    /// Override for the bad-man budget `δ` (default `ε/8`).
    pub delta_override: Option<f64>,
    /// Multiplier on the inner-loop iteration count `2δ⁻¹k`, for ablations
    /// probing how conservative the paper's constant is (default 1.0).
    pub inner_multiplier: f64,
    /// The maximal-matching subroutine for `ProposalRound` step 3.
    pub backend: MatcherBackend,
    /// Root seed for all randomness (Israeli–Itai backends).
    pub seed: u64,
    /// Skip `QuantileMatch`/`ProposalRound` invocations that provably send
    /// no messages (standard termination detection). Affects measured
    /// rounds only, never the output matching.
    pub early_exit: bool,
}

impl AsmConfig {
    /// Creates the paper-default configuration for stability target `ε`,
    /// using the charged HKP oracle backend (the deterministic `ASM` of
    /// Theorem 1).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 8]` — validation is deferred to
    /// [`AsmConfig::validate`] only for the manual-field path.
    pub fn new(epsilon: f64) -> Self {
        let config = AsmConfig {
            epsilon,
            quantiles: None,
            delta_override: None,
            inner_multiplier: 1.0,
            backend: MatcherBackend::HkpOracle,
            seed: 0,
            early_exit: true,
        };
        config.validate().expect("invalid epsilon");
        config
    }

    /// Sets the maximal-matching backend.
    pub fn with_backend(mut self, backend: MatcherBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when ε, δ, the quantile count, or the inner
    /// multiplier is out of range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(ConfigError::Epsilon(self.epsilon));
        }
        if self.quantile_count() == 0 {
            return Err(ConfigError::Quantiles(self.quantile_count()));
        }
        let d = self.delta();
        if !(d > 0.0 && d <= 0.5) {
            return Err(ConfigError::Delta(d));
        }
        if !(self.inner_multiplier > 0.0 && self.inner_multiplier.is_finite()) {
            return Err(ConfigError::InnerMultiplier(self.inner_multiplier));
        }
        Ok(())
    }

    /// The quantile count `k`: the override, or the paper's `⌈8/ε⌉`.
    pub fn quantile_count(&self) -> usize {
        self.quantiles
            .unwrap_or_else(|| (8.0 / self.epsilon).ceil() as usize)
    }

    /// The bad-man budget `δ`: the override, or the paper's `ε/8` clamped
    /// to `1/2` (Lemma 5 requires `δ ≤ 1/2`; the paper implicitly assumes
    /// `ε ≤ 1`, and for looser targets the clamp keeps the precondition).
    pub fn delta(&self) -> f64 {
        self.delta_override.unwrap_or((self.epsilon / 8.0).min(0.5))
    }

    /// Iterations of the inner loop of Algorithm 3:
    /// `⌈inner_multiplier · 2δ⁻¹k⌉`.
    pub fn inner_iterations(&self) -> u64 {
        (self.inner_multiplier * 2.0 * self.quantile_count() as f64 / self.delta()).ceil() as u64
    }

    /// Iterations of the outer loop: `i = 0 ..= ⌊log₂ n⌋` (the paper's
    /// `for i ← 0 to log n`).
    pub fn outer_iterations(&self, n: usize) -> u64 {
        (usize::BITS - n.max(1).leading_zeros()) as u64
    }
}

/// Invalid [`AsmConfig`] parameters.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// ε out of range.
    Epsilon(f64),
    /// δ out of range (Lemma 5 requires `0 < δ ≤ 1/2`).
    Delta(f64),
    /// Quantile count must be positive.
    Quantiles(usize),
    /// Inner multiplier out of range.
    InnerMultiplier(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Epsilon(e) => write!(f, "epsilon {e} must be positive and finite"),
            ConfigError::Delta(d) => write!(f, "delta {d} must satisfy 0 < delta <= 1/2"),
            ConfigError::Quantiles(k) => write!(f, "quantile count {k} must be positive"),
            ConfigError::InnerMultiplier(m) => {
                write!(f, "inner multiplier {m} must be positive and finite")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AsmConfig::new(1.0);
        assert_eq!(c.quantile_count(), 8);
        assert_eq!(c.delta(), 0.125);
        assert_eq!(c.inner_iterations(), 128);
        assert!(c.early_exit);
        assert_eq!(c.backend, MatcherBackend::HkpOracle);
    }

    #[test]
    fn outer_iterations_is_floor_log_plus_one() {
        let c = AsmConfig::new(1.0);
        assert_eq!(c.outer_iterations(1), 1);
        assert_eq!(c.outer_iterations(2), 2);
        assert_eq!(c.outer_iterations(1024), 11); // i = 0..=10
        assert_eq!(c.outer_iterations(0), 1);
    }

    #[test]
    fn overrides_respected() {
        let mut c = AsmConfig::new(1.0);
        c.quantiles = Some(4);
        c.delta_override = Some(0.25);
        c.inner_multiplier = 0.5;
        c.validate().unwrap();
        assert_eq!(c.quantile_count(), 4);
        assert_eq!(c.inner_iterations(), 16);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let mut c = AsmConfig::new(1.0);
        c.epsilon = 0.0;
        assert!(matches!(c.validate(), Err(ConfigError::Epsilon(_))));
        c.epsilon = f64::INFINITY;
        assert!(c.validate().is_err());
    }

    #[test]
    fn delta_above_half_rejected() {
        let mut c = AsmConfig::new(1.0);
        c.delta_override = Some(0.6);
        assert!(matches!(c.validate(), Err(ConfigError::Delta(_))));
    }

    #[test]
    #[should_panic(expected = "invalid epsilon")]
    fn constructor_panics_on_bad_epsilon() {
        AsmConfig::new(-1.0);
    }

    #[test]
    fn builder_methods_chain() {
        let c = AsmConfig::new(2.0)
            .with_seed(9)
            .with_backend(MatcherBackend::DetGreedy);
        assert_eq!(c.seed, 9);
        assert_eq!(c.backend, MatcherBackend::DetGreedy);
    }
}
