//! Execution reports.

use asm_congest::NodeId;
use asm_instance::Instance;
use asm_matching::{Matching, StabilityReport};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Snapshot taken after each `QuantileMatch` call, for the convergence
/// experiments (F3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QmSnapshot {
    /// Outer-loop iteration `i` of Algorithm 3.
    pub outer: u64,
    /// Index of this `QuantileMatch` within the inner loop.
    pub inner: u64,
    /// Men currently matched.
    pub matched_men: usize,
    /// Men with exhausted preference lists (rejected by everyone).
    pub exhausted_men: usize,
    /// Bad men so far: unmatched with a nonempty `Q`.
    pub bad_men: usize,
    /// Effective rounds consumed so far.
    pub rounds_so_far: u64,
}

/// Full result of running `ASM`, `RandASM`, or `AlmostRegularASM`.
///
/// `rounds` counts *effective* communication rounds (rounds in which a
/// message is in flight); `nominal_rounds` counts the worst-case static
/// schedule the theorems bound — see DESIGN.md §3 ("Round accounting").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AsmReport {
    /// The matching produced.
    pub matching: Matching,
    /// Effective communication rounds.
    pub rounds: u64,
    /// Nominal (worst-case schedule) rounds.
    pub nominal_rounds: u64,
    /// Rounds spent inside maximal-matching subroutines (part of `rounds`).
    pub mm_rounds: u64,
    /// Maximal-matching subroutine invocations.
    pub mm_invocations: u64,
    /// Invocations that returned a non-maximal matching (truncated
    /// Israeli–Itai only; always 0 for deterministic backends).
    pub mm_nonmaximal: u64,
    /// `ProposalRound`s in the nominal schedule.
    pub scheduled_proposal_rounds: u64,
    /// `ProposalRound`s actually executed (the rest were provably silent).
    pub executed_proposal_rounds: u64,
    /// `QuantileMatch` invocations in the nominal schedule.
    pub scheduled_quantile_matches: u64,
    /// PROPOSE messages sent.
    pub proposals: u64,
    /// ACCEPT messages sent.
    pub acceptances: u64,
    /// REJECT messages sent.
    pub rejections: u64,
    /// Men that are *good* at termination (matched or fully rejected).
    pub good_men: usize,
    /// Men that are *bad* at termination (unmatched, nonempty `Q`).
    pub bad_men: Vec<NodeId>,
    /// Men removed from play by `AlmostRegularASM`'s AMM violation rule
    /// (empty for `ASM`/`RandASM`).
    pub removed_men: Vec<NodeId>,
    /// Per-`QuantileMatch` convergence snapshots.
    pub snapshots: Vec<QmSnapshot>,
}

impl AsmReport {
    /// Audits the produced matching against the instance.
    pub fn stability(&self, inst: &Instance) -> StabilityReport {
        StabilityReport::analyze(inst, &self.matching)
    }

    /// Fraction of men that are bad (0 if there are no men).
    pub fn bad_fraction(&self, num_men: usize) -> f64 {
        if num_men == 0 {
            0.0
        } else {
            self.bad_men.len() as f64 / num_men as f64
        }
    }
}

/// The engine-independent view of one algorithm run: the fields both the
/// fast engine ([`crate::asm`] and friends) and the CONGEST engine
/// ([`crate::congest`]) report, in one shape.
///
/// The two engines promise to agree on *all* of these fields given the
/// same instance, configuration, and seed (DESIGN.md §3, "Determinism");
/// the conformance harness (`asm-conformance`) diffs `RunSummary`s to
/// enforce that promise. Engine-specific extras (message statistics,
/// snapshots) stay on the originating report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The matching produced.
    pub matching: Matching,
    /// `ProposalRound`s in the nominal schedule.
    pub scheduled_proposal_rounds: u64,
    /// `ProposalRound`s that actually communicated.
    pub executed_proposal_rounds: u64,
    /// Men that are good (matched or fully rejected) at termination.
    pub good_men: usize,
    /// Men that are bad (unmatched with surviving preferences).
    pub bad_men: Vec<NodeId>,
    /// Men removed by `AlmostRegularASM`'s violator rule.
    pub removed_men: Vec<NodeId>,
}

impl From<&AsmReport> for RunSummary {
    fn from(r: &AsmReport) -> Self {
        RunSummary {
            matching: r.matching.clone(),
            scheduled_proposal_rounds: r.scheduled_proposal_rounds,
            executed_proposal_rounds: r.executed_proposal_rounds,
            good_men: r.good_men,
            bad_men: r.bad_men.clone(),
            removed_men: r.removed_men.clone(),
        }
    }
}

impl From<&crate::congest::CongestReport> for RunSummary {
    fn from(r: &crate::congest::CongestReport) -> Self {
        RunSummary {
            matching: r.matching.clone(),
            scheduled_proposal_rounds: r.scheduled_proposal_rounds,
            executed_proposal_rounds: r.executed_proposal_rounds,
            good_men: r.good_men,
            bad_men: r.bad_men.clone(),
            removed_men: r.removed_men.clone(),
        }
    }
}

impl fmt::Display for AsmReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|M|={}, rounds {} (nominal {}), {} PRs executed of {}, {} bad men",
            self.matching.len(),
            self.rounds,
            self.nominal_rounds,
            self.executed_proposal_rounds,
            self.scheduled_proposal_rounds,
            self.bad_men.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> AsmReport {
        AsmReport {
            matching: Matching::new(4),
            rounds: 10,
            nominal_rounds: 100,
            mm_rounds: 4,
            mm_invocations: 2,
            mm_nonmaximal: 0,
            scheduled_proposal_rounds: 8,
            executed_proposal_rounds: 2,
            scheduled_quantile_matches: 4,
            proposals: 5,
            acceptances: 3,
            rejections: 2,
            good_men: 2,
            bad_men: vec![NodeId::new(3)],
            removed_men: vec![],
            snapshots: vec![],
        }
    }

    #[test]
    fn bad_fraction() {
        let r = dummy();
        assert_eq!(r.bad_fraction(2), 0.5);
        assert_eq!(r.bad_fraction(0), 0.0);
    }

    #[test]
    fn display_mentions_rounds() {
        let s = dummy().to_string();
        assert!(s.contains("rounds 10"));
        assert!(s.contains("nominal 100"));
    }

    #[test]
    fn serde_round_trip() {
        let r = dummy();
        let json = serde_json::to_string(&r).unwrap();
        let back: AsmReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
