//! Quantized preferences (Section 3.1).
//!
//! Each player divides their preference list into `k` quantiles:
//! `Q₁` holds the `⌈deg/k⌉` most favored partners, `Q₂` the next
//! `⌈deg/k⌉`, and so on. Formally, partner `u` with rank `P(u)` lands in
//! quantile `q(u) = ⌈P(u)·k / deg⌉`.
//!
//! > **Paper note.** The paper prints `q(u) = ⌈P(u)/k⌉`, which would make
//! > quantiles of size `k`; the accompanying prose ("Q₁ is the set of v's
//! > deg(v)/k favorite partners") and every use in the analysis imply
//! > quantiles of size `deg/k`, which is what we implement
//! > (see DESIGN.md §3).
//!
//! During the algorithm, partners are only ever **removed** (rejections);
//! `Q` never grows — [`QuantizedPrefs`] enforces this shape with `O(log
//! deg)` removal and `O(1)` membership counting per quantile.

use asm_congest::NodeId;

/// A player's quantized preference state: the surviving portions of
/// `Q₁, …, Q_k`.
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_core::QuantizedPrefs;
///
/// let ids: Vec<NodeId> = (0..6).map(NodeId::new).collect();
/// let mut q = QuantizedPrefs::new(&ids, 3); // quantiles of size 2
/// assert_eq!(q.quantile_of(ids[0]), Some(1));
/// assert_eq!(q.quantile_of(ids[5]), Some(3));
/// assert_eq!(q.min_nonempty_quantile(), Some(1));
///
/// q.remove(ids[0]);
/// q.remove(ids[1]);
/// assert_eq!(q.min_nonempty_quantile(), Some(2));
/// assert_eq!(q.remaining(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantizedPrefs {
    k: usize,
    /// Partners in original rank order.
    entries: Vec<NodeId>,
    /// Quantile index (1-based) per entry.
    quantile: Vec<u32>,
    /// Removal flags per entry.
    removed: Vec<bool>,
    /// `(partner, entry index)` sorted by partner for lookup.
    index: Vec<(NodeId, u32)>,
    remaining_total: usize,
    /// Surviving member count per quantile (index `q-1`).
    remaining_per_quantile: Vec<usize>,
}

impl QuantizedPrefs {
    /// Quantizes a ranked preference list (most favored first) into `k`
    /// quantiles.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(ranked: &[NodeId], k: usize) -> Self {
        assert!(k > 0, "quantile count must be positive");
        let deg = ranked.len();
        let quantile: Vec<u32> = (1..=deg)
            .map(|rank| {
                if deg == 0 {
                    1
                } else {
                    (rank * k).div_ceil(deg) as u32 // ceil(rank*k/deg)
                }
            })
            .collect();
        let mut index: Vec<(NodeId, u32)> = ranked
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, i as u32))
            .collect();
        index.sort_unstable_by_key(|&(u, _)| u);
        let mut remaining_per_quantile = vec![0usize; k];
        for &q in &quantile {
            remaining_per_quantile[q as usize - 1] += 1;
        }
        QuantizedPrefs {
            k,
            entries: ranked.to_vec(),
            quantile,
            removed: vec![false; deg],
            index,
            remaining_total: deg,
            remaining_per_quantile,
        }
    }

    /// The quantile count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The original degree (before any removals).
    pub fn original_degree(&self) -> usize {
        self.entries.len()
    }

    /// `|Q|`: partners not yet removed.
    pub fn remaining(&self) -> usize {
        self.remaining_total
    }

    /// Whether every partner has been removed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining_total == 0
    }

    fn entry_of(&self, u: NodeId) -> Option<usize> {
        self.index
            .binary_search_by_key(&u, |&(id, _)| id)
            .ok()
            .map(|i| self.index[i].1 as usize)
    }

    /// The quantile of `u` (1-based), regardless of removal; `None` if `u`
    /// was never on the list.
    pub fn quantile_of(&self, u: NodeId) -> Option<u32> {
        self.entry_of(u).map(|i| self.quantile[i])
    }

    /// Whether `u` is still present (on the list and not removed).
    pub fn contains(&self, u: NodeId) -> bool {
        self.entry_of(u).is_some_and(|i| !self.removed[i])
    }

    /// Removes `u`; returns `true` if it was present and not yet removed.
    pub fn remove(&mut self, u: NodeId) -> bool {
        let Some(i) = self.entry_of(u) else {
            return false;
        };
        if self.removed[i] {
            return false;
        }
        self.removed[i] = true;
        self.remaining_total -= 1;
        self.remaining_per_quantile[self.quantile[i] as usize - 1] -= 1;
        true
    }

    /// The best (smallest-index) quantile with surviving members.
    pub fn min_nonempty_quantile(&self) -> Option<u32> {
        self.remaining_per_quantile
            .iter()
            .position(|&c| c > 0)
            .map(|i| i as u32 + 1)
    }

    /// Surviving members of quantile `q`, in rank order.
    pub fn members_of(&self, q: u32) -> Vec<NodeId> {
        self.entries
            .iter()
            .zip(&self.quantile)
            .zip(&self.removed)
            .filter(|((_, &qq), &rem)| qq == q && !rem)
            .map(|((&u, _), _)| u)
            .collect()
    }

    /// Surviving members in quantile `q` or worse (index ≥ `q`), in rank
    /// order — the reject set of `ProposalRound` step 4 before excluding
    /// the new partner.
    pub fn members_at_or_worse(&self, q: u32) -> Vec<NodeId> {
        self.entries
            .iter()
            .zip(&self.quantile)
            .zip(&self.removed)
            .filter(|((_, &qq), &rem)| qq >= q && !rem)
            .map(|((&u, _), _)| u)
            .collect()
    }

    /// All surviving members, in rank order.
    pub fn surviving(&self) -> Vec<NodeId> {
        self.entries
            .iter()
            .zip(&self.removed)
            .filter(|(_, &rem)| !rem)
            .map(|(&u, _)| u)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: std::ops::Range<u32>) -> Vec<NodeId> {
        v.map(NodeId::new).collect()
    }

    #[test]
    fn quantile_sizes_are_balanced() {
        // deg 10, k 4: ceil(rank*4/10) => ranks 1-2 -> q1? ceil(4/10)=1,
        // ceil(8/10)=1, ceil(12/10)=2 ... sizes [2,3,2,3].
        let q = QuantizedPrefs::new(&ids(0..10), 4);
        let sizes: Vec<usize> = (1..=4).map(|i| q.members_of(i).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
        assert_eq!(q.quantile_of(NodeId::new(0)), Some(1));
        assert_eq!(q.quantile_of(NodeId::new(9)), Some(4));
    }

    #[test]
    fn k_greater_than_degree_gives_singletons() {
        // Section 3.2: with k = deg, ProposalRound mimics Gale–Shapley —
        // each quantile is one rank. With k > deg some quantiles are empty.
        let q = QuantizedPrefs::new(&ids(0..3), 8);
        assert_eq!(q.quantile_of(NodeId::new(0)), Some(3)); // ceil(1*8/3)
        assert_eq!(q.quantile_of(NodeId::new(1)), Some(6));
        assert_eq!(q.quantile_of(NodeId::new(2)), Some(8));
        for qq in 1..=8u32 {
            assert!(q.members_of(qq).len() <= 1);
        }
    }

    #[test]
    fn k_equal_degree_is_identity() {
        let q = QuantizedPrefs::new(&ids(0..5), 5);
        for (rank, id) in (1..=5u32).zip(0..5u32) {
            assert_eq!(q.quantile_of(NodeId::new(id)), Some(rank));
        }
    }

    #[test]
    fn removal_updates_counts_idempotently() {
        let mut q = QuantizedPrefs::new(&ids(0..6), 3);
        assert!(q.remove(NodeId::new(2)));
        assert!(!q.remove(NodeId::new(2)), "second removal is a no-op");
        assert!(!q.remove(NodeId::new(99)), "absent partner");
        assert_eq!(q.remaining(), 5);
        assert!(!q.contains(NodeId::new(2)));
        assert_eq!(
            q.quantile_of(NodeId::new(2)),
            Some(2),
            "quantile survives removal"
        );
    }

    #[test]
    fn min_nonempty_tracks_removals() {
        let mut q = QuantizedPrefs::new(&ids(0..4), 2);
        assert_eq!(q.min_nonempty_quantile(), Some(1));
        q.remove(NodeId::new(0));
        q.remove(NodeId::new(1));
        assert_eq!(q.min_nonempty_quantile(), Some(2));
        q.remove(NodeId::new(2));
        q.remove(NodeId::new(3));
        assert_eq!(q.min_nonempty_quantile(), None);
        assert!(q.is_exhausted());
    }

    #[test]
    fn members_at_or_worse() {
        let q = QuantizedPrefs::new(&ids(0..6), 3);
        let worse = q.members_at_or_worse(2);
        assert_eq!(worse, ids(2..6));
        assert_eq!(q.members_at_or_worse(1).len(), 6);
        assert!(q.members_at_or_worse(4).is_empty());
    }

    #[test]
    fn empty_list() {
        let q = QuantizedPrefs::new(&[], 4);
        assert!(q.is_exhausted());
        assert_eq!(q.min_nonempty_quantile(), None);
        assert_eq!(q.original_degree(), 0);
        assert!(q.surviving().is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile count")]
    fn zero_k_panics() {
        QuantizedPrefs::new(&[], 0);
    }

    #[test]
    fn surviving_preserves_rank_order() {
        let mut q = QuantizedPrefs::new(&[NodeId::new(9), NodeId::new(1), NodeId::new(5)], 3);
        q.remove(NodeId::new(1));
        assert_eq!(q.surviving(), vec![NodeId::new(9), NodeId::new(5)]);
    }
}
