//! The deterministic `ASM` algorithm (Algorithm 3, Theorems 3–4).

use super::{run_schedule, SchedulePhase};
use crate::{AsmConfig, AsmReport, ConfigError};
use asm_instance::Instance;

/// Runs `ASM(P, ε, n)` — the paper's main deterministic algorithm — and
/// returns the matching with its execution report.
///
/// With the default [`AsmConfig`] this is exactly Algorithm 3: quantile
/// count `k = ⌈8/ε⌉`, bad-man budget `δ = ε/8`, outer loop
/// `i = 0 ..= log n` gating men by `|Qᵐ| ≥ 2^i`, inner loop of `2δ⁻¹k`
/// `QuantileMatch` calls. The output is `(1 − ε)`-stable (Theorem 3): at
/// most `ε·|E|` blocking pairs.
///
/// The maximal-matching subroutine is chosen by [`AsmConfig::backend`];
/// the default charged-HKP oracle reproduces the `O(ε⁻³ log⁵ n)` nominal
/// round bound of Theorem 4.
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration is invalid.
///
/// # Examples
///
/// ```
/// use asm_core::{asm, AsmConfig};
/// use asm_instance::generators;
///
/// let inst = generators::complete(32, 7);
/// let report = asm(&inst, &AsmConfig::new(0.5))?;
/// let stability = report.stability(&inst);
/// assert!(stability.is_one_minus_eps_stable(0.5));
/// # Ok::<(), asm_core::ConfigError>(())
/// ```
pub fn asm(inst: &Instance, config: &AsmConfig) -> Result<AsmReport, ConfigError> {
    config.validate()?;
    let schedule = asm_schedule(config, inst);
    Ok(run_schedule(inst, config, &schedule, false))
}

/// The full Algorithm 3 schedule for an instance: one phase per outer
/// iteration `i` with gate `2^i` and `2δ⁻¹k` inner `QuantileMatch` calls.
/// Shared between the fast and CONGEST engines so both run the identical
/// schedule.
pub(crate) fn asm_schedule(config: &AsmConfig, inst: &Instance) -> Vec<SchedulePhase> {
    let n = inst.ids().num_women().max(inst.ids().num_men());
    let inner = config.inner_iterations();
    (0..config.outer_iterations(n))
        .map(|i| SchedulePhase {
            gate: 1usize << i.min(62),
            iterations: inner,
            label: i,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::{generators, InstanceMetrics};
    use asm_matching::verify_matching;

    #[test]
    fn theorem_3_on_every_family() {
        let eps = 1.0;
        let instances = vec![
            generators::complete(16, 1),
            generators::erdos_renyi(16, 16, 0.5, 2),
            generators::regular(16, 4, 3),
            generators::zipf(16, 4, 1.5, 4),
            generators::almost_regular(16, 2, 2.0, 5),
            generators::adversarial_chain(16),
            generators::master_list(16, 6),
        ];
        for inst in instances {
            let report = asm(&inst, &AsmConfig::new(eps)).unwrap();
            verify_matching(&inst, &report.matching).unwrap();
            let st = report.stability(&inst);
            assert!(
                st.is_one_minus_eps_stable(eps),
                "{}: {} blocking of {} edges",
                InstanceMetrics::measure(&inst),
                st.blocking_pairs,
                st.num_edges
            );
        }
    }

    #[test]
    fn tighter_epsilon_gives_fewer_blocking_pairs() {
        let inst = generators::complete(24, 11);
        let loose = asm(&inst, &AsmConfig::new(2.0)).unwrap();
        let tight = asm(&inst, &AsmConfig::new(0.25)).unwrap();
        let bl = loose.stability(&inst).blocking_pairs;
        let bt = tight.stability(&inst).blocking_pairs;
        assert!(bt <= bl, "eps=0.25 gave {bt} > eps=2.0's {bl}");
        assert!(tight.stability(&inst).is_one_minus_eps_stable(0.25));
    }

    #[test]
    fn deterministic_backend_never_fails_maximality() {
        let inst = generators::erdos_renyi(20, 20, 0.3, 5);
        let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
        assert_eq!(report.mm_nonmaximal, 0);
    }

    #[test]
    fn nominal_rounds_dominate_effective() {
        let inst = generators::complete(16, 3);
        let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
        assert!(report.nominal_rounds >= report.rounds);
        assert!(report.executed_proposal_rounds <= report.scheduled_proposal_rounds);
        assert!(report.rounds > 0);
    }

    #[test]
    fn good_men_accounting_is_total() {
        let inst = generators::erdos_renyi(20, 20, 0.4, 8);
        let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
        assert_eq!(
            report.good_men + report.bad_men.len(),
            inst.ids().num_men(),
            "every man is good or bad (none removed in plain ASM)"
        );
        assert!(report.removed_men.is_empty());
    }

    #[test]
    fn invalid_config_is_an_error() {
        let inst = generators::complete(4, 1);
        let mut config = AsmConfig::new(1.0);
        config.epsilon = -3.0;
        assert!(asm(&inst, &config).is_err());
    }

    #[test]
    fn snapshots_record_progress() {
        let inst = generators::complete(16, 9);
        let report = asm(&inst, &AsmConfig::new(1.0)).unwrap();
        assert!(!report.snapshots.is_empty());
        let last = report.snapshots.last().unwrap();
        assert_eq!(last.matched_men, report.matching.len());
    }
}
