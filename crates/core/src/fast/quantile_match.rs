//! `QuantileMatch` (Algorithm 2).

use super::proposal_round::{proposal_round, PrOutcome};
use super::RunCtx;
use crate::AsmState;
use asm_congest::NodeId;
use asm_instance::Instance;

/// Whether any man could send a proposal right now: unmatched, not removed
/// from play, with a nonempty active set.
pub(crate) fn any_proposer(inst: &Instance, st: &AsmState) -> bool {
    inst.ids().men().any(|m| {
        !st.removed_from_play[m.index()]
            && st.partner[m.index()].is_none()
            && !st.active_set(m).is_empty()
    })
}

/// Whether any man passes the outer-loop activity gate and could still make
/// progress: unmatched, not removed, `|Q| ≥ gate` and `Q ≠ ∅`.
pub(crate) fn any_participant(inst: &Instance, st: &AsmState, gate: usize) -> bool {
    inst.ids().men().any(|m| participates(st, m, gate))
}

fn participates(st: &AsmState, m: NodeId, gate: usize) -> bool {
    !st.removed_from_play[m.index()]
        && st.partner[m.index()].is_none()
        && !st.quant[m.index()].is_exhausted()
        && st.quant[m.index()].remaining() >= gate
}

/// Executes `QuantileMatch(Q, k)` with the outer-loop activity gate
/// `|Qᵐ| ≥ gate` (Algorithm 3's `2^i`): every participating unmatched man
/// arms `A ← ` his best nonempty quantile, then `ProposalRound` is
/// iterated `k` times.
///
/// Returns the number of `ProposalRound`s that actually communicated.
/// Iterations after the network provably falls silent are skipped — they
/// are outcome-identical no-ops (once no man has a nonempty `A`, nothing
/// changes until the next `QuantileMatch` re-arms the active sets).
pub(crate) fn quantile_match(
    inst: &Instance,
    st: &mut AsmState,
    ctx: &mut RunCtx,
    gate: usize,
) -> u64 {
    let ids = inst.ids();
    let k = st.k;
    ctx.scheduled_qms += 1;
    ctx.scheduled_prs += k as u64;

    // Arm active sets: `if p = ∅ then A ← Q_i` for the best nonempty i.
    for m in ids.men() {
        if participates(st, m, gate) {
            st.active_quantile[m.index()] = st.quant[m.index()].min_nonempty_quantile();
        }
    }

    let mut executed = 0;
    for _ in 0..k {
        match proposal_round(inst, st, ctx) {
            PrOutcome::Silent => break,
            PrOutcome::Executed { .. } => executed += 1,
        }
    }
    // Lemma 2: after k ProposalRounds every man has A = ∅ — guaranteed
    // only when every maximal-matching invocation was actually maximal
    // (truncated Israeli–Itai may fall short with small probability).
    debug_assert!(
        ctx.mm_nonmaximal > 0 || !any_proposer(inst, st),
        "Lemma 2 violated with maximal matchings"
    );
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsmConfig;
    use asm_instance::generators;
    use asm_maximal::MatcherBackend;

    fn run_qm(inst: &Instance, k: usize, gate: usize) -> (AsmState, RunCtx, u64) {
        let config = AsmConfig {
            quantiles: Some(k),
            ..AsmConfig::new(1.0)
        };
        let mut st = AsmState::new(inst, k);
        let mut ctx = RunCtx::new(&config, inst.ids().num_players());
        let executed = quantile_match(inst, &mut st, &mut ctx, gate);
        (st, ctx, executed)
    }

    #[test]
    fn lemma_2_all_active_sets_empty_after_k_rounds() {
        for seed in 0..5 {
            let inst = generators::erdos_renyi(12, 12, 0.5, seed);
            let (st, _, _) = run_qm(&inst, 4, 1);
            for m in inst.ids().men() {
                assert!(
                    st.active_set(m).is_empty(),
                    "man {m} still has a nonempty A after QuantileMatch"
                );
            }
        }
    }

    #[test]
    fn each_armed_man_is_matched_or_rejected_by_his_quantile() {
        let inst = generators::complete(10, 3);
        let k = 5;
        // Snapshot each man's initial best quantile.
        let st0 = AsmState::new(&inst, k);
        let initial_best: Vec<Vec<NodeId>> = inst
            .ids()
            .men()
            .map(|m| st0.quant[m.index()].members_of(1))
            .collect();
        let (st, _, _) = run_qm(&inst, k, 1);
        for (j, m) in inst.ids().men().enumerate() {
            match st.partner[m.index()] {
                Some(w) => {
                    // Lemma 2: matched with some woman in his original A.
                    assert!(
                        initial_best[j].contains(&w),
                        "man {m} matched outside his armed quantile"
                    );
                }
                None => {
                    // Rejected by every woman in his original A.
                    for w in &initial_best[j] {
                        assert!(
                            !st.quant[m.index()].contains(*w),
                            "man {m} unmatched but not rejected by {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gate_blocks_small_q_men() {
        let inst = generators::complete(4, 2);
        // Gate of 100 exceeds everyone's |Q| = 4: nothing happens.
        let (st, ctx, executed) = run_qm(&inst, 2, 100);
        assert_eq!(executed, 0);
        assert_eq!(ctx.rounds, 0);
        assert!(st.matching().is_empty());
    }

    #[test]
    fn master_list_converges_within_k() {
        // Identical preferences: heavy contention, the maximal matching
        // does the heavy lifting.
        let inst = generators::master_list(8, 1);
        let (st, _, executed) = run_qm(&inst, 4, 1);
        assert!(executed <= 4);
        assert!(
            st.matching().len() >= 2,
            "contended rounds still match many"
        );
    }

    #[test]
    fn works_with_all_backends() {
        let inst = generators::erdos_renyi(10, 10, 0.4, 7);
        for backend in [
            MatcherBackend::HkpOracle,
            MatcherBackend::DetGreedy,
            MatcherBackend::BipartiteProposal,
            MatcherBackend::IsraeliItai { max_iterations: 64 },
        ] {
            let config = AsmConfig {
                quantiles: Some(4),
                ..AsmConfig::new(1.0)
            }
            .with_backend(backend);
            let mut st = AsmState::new(&inst, 4);
            let mut ctx = RunCtx::new(&config, inst.ids().num_players());
            quantile_match(&inst, &mut st, &mut ctx, 1);
            for m in inst.ids().men() {
                assert!(st.active_set(m).is_empty(), "{backend:?}");
            }
        }
    }
}
