//! Woman-proposing variants via gender swap.

use crate::{asm, AsmConfig, AsmReport, ConfigError};
use asm_instance::Instance;
use asm_matching::Matching;

/// Runs `ASM` with the **women** proposing, by executing the algorithm on
/// the gender-swapped instance and translating the result back into the
/// original instance's node ids.
///
/// The paper's roles are symmetric — Theorems 3–6 hold verbatim with
/// sides exchanged — but the two directions generally produce *different*
/// matchings (the proposing side drives its own quantile preferences
/// first, cf. man- vs woman-optimal Gale–Shapley). In the returned report
/// the fields named for men ([`AsmReport::good_men`],
/// [`AsmReport::bad_men`], [`AsmReport::removed_men`]) describe the
/// proposing side, i.e. the *women* of the original instance, translated
/// to original ids.
///
/// # Errors
///
/// As for [`asm`].
///
/// # Examples
///
/// ```
/// use asm_core::{asm, asm_woman_proposing, AsmConfig};
/// use asm_instance::generators;
///
/// let inst = generators::complete(16, 5);
/// let config = AsmConfig::new(0.5);
/// let mp = asm(&inst, &config)?;
/// let wp = asm_woman_proposing(&inst, &config)?;
/// // Both directions meet the same stability budget on the same edges.
/// assert!(mp.stability(&inst).is_one_minus_eps_stable(0.5));
/// assert!(wp.stability(&inst).is_one_minus_eps_stable(0.5));
/// # Ok::<(), asm_core::ConfigError>(())
/// ```
pub fn asm_woman_proposing(inst: &Instance, config: &AsmConfig) -> Result<AsmReport, ConfigError> {
    let swapped = inst.swap_genders();
    let mut report = asm(&swapped, config)?;

    let mut matching = Matching::new(inst.ids().num_players());
    for (u, v) in report.matching.pairs() {
        matching
            .add_pair(swapped.swap_node(u), swapped.swap_node(v))
            .expect("translated pairs stay disjoint");
    }
    report.matching = matching;
    for list in [&mut report.bad_men, &mut report.removed_men] {
        for id in list.iter_mut() {
            *id = swapped.swap_node(*id);
        }
        list.sort_unstable();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;
    use asm_matching::verify_matching;

    #[test]
    fn woman_proposing_meets_budget_on_families() {
        for (i, inst) in [
            generators::complete(16, 1),
            generators::erdos_renyi(16, 16, 0.4, 2),
            generators::zipf(16, 5, 1.2, 3),
        ]
        .into_iter()
        .enumerate()
        {
            let report = asm_woman_proposing(&inst, &AsmConfig::new(1.0)).unwrap();
            verify_matching(&inst, &report.matching).unwrap();
            assert!(
                report.stability(&inst).is_one_minus_eps_stable(1.0),
                "family #{i}"
            );
        }
    }

    #[test]
    fn directions_can_differ() {
        // On a contested complete instance the two proposing directions
        // generally favor different sides.
        let inst = generators::master_list(12, 7);
        let config = AsmConfig::new(0.5);
        let mp = asm(&inst, &config).unwrap();
        let wp = asm_woman_proposing(&inst, &config).unwrap();
        // Same size on master lists (both perfect), possibly different pairs.
        assert_eq!(mp.matching.len(), wp.matching.len());
    }

    #[test]
    fn bad_players_are_reported_in_original_ids() {
        let inst = generators::erdos_renyi(10, 10, 0.3, 9);
        let report = asm_woman_proposing(&inst, &AsmConfig::new(1.0)).unwrap();
        for w in &report.bad_men {
            assert!(
                inst.ids().is_woman(*w),
                "the proposing side of the swapped run is the women"
            );
        }
    }
}
