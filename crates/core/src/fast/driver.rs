//! Shared schedule driver for `ASM`, `RandASM` and `AlmostRegularASM`.

use super::quantile_match::{any_participant, quantile_match};
use super::RunCtx;
use crate::{AsmConfig, AsmReport, AsmState, QmSnapshot};
use asm_instance::Instance;

/// One phase of an algorithm schedule: `iterations` calls to
/// `QuantileMatch` under the activity gate `|Qᵐ| ≥ gate`.
///
/// Public (re-exported as `congest::SchedulePhase`) so external round
/// drivers — the distributed orchestrator — can carry the same schedule
/// the in-process engines execute; the serde derives define its wire
/// form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SchedulePhase {
    /// The outer-loop gate (`2^i` in Algorithm 3; `1` = everyone).
    pub gate: usize,
    /// Inner-loop length (`2δ⁻¹k` in Algorithm 3).
    pub iterations: u64,
    /// Label recorded in snapshots (the outer index `i`).
    pub label: u64,
}

/// Runs a schedule of [`SchedulePhase`]s over a fresh [`AsmState`] and
/// assembles the report.
///
/// Early exit: because `|Qᵐ|` never grows and gates never shrink across
/// the schedule, once no man passes the current gate none will pass any
/// later one — the remaining schedule is provably silent and is skipped
/// (accounted in the nominal totals only).
pub(crate) fn run_schedule(
    inst: &Instance,
    config: &AsmConfig,
    schedule: &[SchedulePhase],
    remove_amm_violators: bool,
) -> AsmReport {
    let k = config.quantile_count();
    let mut st = AsmState::new(inst, k);
    let mut ctx = RunCtx::new(config, inst.ids().num_players());
    ctx.remove_amm_violators = remove_amm_violators;

    // Once no man passes the current gate, none will pass any later one
    // (gates nondecreasing, |Q| nonincreasing): the rest of the schedule
    // is provably silent and can be skipped without scanning.
    let can_fast_forward = config.early_exit && gates_nondecreasing(schedule);
    let mut fully_silent = false;
    for phase in schedule {
        for j in 0..phase.iterations {
            if !fully_silent && can_fast_forward && !any_participant(inst, &st, phase.gate) {
                fully_silent = true;
            }
            if fully_silent {
                ctx.scheduled_qms += 1;
                ctx.scheduled_prs += k as u64;
                continue;
            }
            let executed = quantile_match(inst, &mut st, &mut ctx, phase.gate);
            if executed > 0 {
                let ids = inst.ids();
                let matched = ids
                    .men()
                    .filter(|&m| st.partner[m.index()].is_some())
                    .count();
                let exhausted = ids
                    .men()
                    .filter(|&m| {
                        st.partner[m.index()].is_none() && st.quant[m.index()].is_exhausted()
                    })
                    .count();
                ctx.snapshots.push(QmSnapshot {
                    outer: phase.label,
                    inner: j,
                    matched_men: matched,
                    exhausted_men: exhausted,
                    bad_men: ids.num_men() - matched - exhausted,
                    rounds_so_far: ctx.rounds,
                });
            }
        }
    }

    finish(inst, st, ctx)
}

fn gates_nondecreasing(schedule: &[SchedulePhase]) -> bool {
    schedule.windows(2).all(|w| w[0].gate <= w[1].gate)
}

fn finish(inst: &Instance, st: AsmState, ctx: RunCtx) -> AsmReport {
    let ids = inst.ids();
    let mut bad = Vec::new();
    let mut good = 0usize;
    for m in ids.men() {
        if st.removed_from_play[m.index()] && st.partner[m.index()].is_none() {
            continue; // reported in removed_men
        }
        if st.is_good(m) {
            good += 1;
        } else {
            bad.push(m);
        }
    }
    let nominal = ctx.scheduled_prs * ctx.pr_nominal_rounds();
    AsmReport {
        matching: st.matching(),
        rounds: ctx.rounds,
        nominal_rounds: nominal,
        mm_rounds: ctx.mm_rounds,
        mm_invocations: ctx.mm_invocations,
        mm_nonmaximal: ctx.mm_nonmaximal,
        scheduled_proposal_rounds: ctx.scheduled_prs,
        executed_proposal_rounds: ctx.executed_prs,
        scheduled_quantile_matches: ctx.scheduled_qms,
        proposals: ctx.proposals,
        acceptances: ctx.acceptances,
        rejections: ctx.rejections,
        good_men: good,
        bad_men: bad,
        removed_men: ctx.removed_men,
        snapshots: ctx.snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;

    #[test]
    fn single_phase_schedule_runs() {
        let inst = generators::complete(8, 1);
        let config = AsmConfig::new(1.0);
        let report = run_schedule(
            &inst,
            &config,
            &[SchedulePhase {
                gate: 1,
                iterations: 4,
                label: 0,
            }],
            false,
        );
        assert!(!report.matching.is_empty());
        assert_eq!(report.scheduled_quantile_matches, 4);
        assert_eq!(
            report.scheduled_proposal_rounds,
            4 * config.quantile_count() as u64
        );
        assert!(report.executed_proposal_rounds <= report.scheduled_proposal_rounds);
    }

    #[test]
    fn early_exit_preserves_output() {
        let inst = generators::erdos_renyi(10, 10, 0.5, 3);
        let mut eager = AsmConfig::new(1.0);
        eager.early_exit = true;
        let mut lazy = eager.clone();
        lazy.early_exit = false;
        let schedule = [SchedulePhase {
            gate: 1,
            iterations: 20,
            label: 0,
        }];
        let a = run_schedule(&inst, &eager, &schedule, false);
        let b = run_schedule(&inst, &lazy, &schedule, false);
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.rounds, b.rounds, "effective rounds are identical");
        assert_eq!(a.nominal_rounds, b.nominal_rounds);
    }

    #[test]
    fn empty_instance_trivial_report() {
        let inst = asm_instance::InstanceBuilder::new(0, 0).build().unwrap();
        let report = run_schedule(
            &inst,
            &AsmConfig::new(1.0),
            &[SchedulePhase {
                gate: 1,
                iterations: 2,
                label: 0,
            }],
            false,
        );
        assert!(report.matching.is_empty());
        assert_eq!(report.rounds, 0);
        assert_eq!(report.good_men, 0);
        assert!(report.bad_men.is_empty());
    }
}
