//! The vector ("fast") engine: a faithful phase-by-phase simulation of the
//! paper's algorithms operating directly on [`crate::AsmState`], with
//! CONGEST round accounting identical to the algorithm's communication
//! schedule (propose + accept + maximal matching + reject per
//! `ProposalRound`).
//!
//! The message-passing engine in [`crate::congest`] executes the same
//! algorithms as real processes exchanging `O(log n)`-bit messages; the
//! two produce identical matchings from identical seeds (see the
//! engine-equivalence integration tests).

mod almost_regular;
mod asm;
mod driver;
mod proposal_round;
mod quantile_match;
mod rand_asm;
mod swapped;

pub use almost_regular::{almost_regular_asm, AlmostRegularParams};
pub use asm::asm;
pub use rand_asm::{rand_asm, rand_asm_config, RandAsmParams};
pub use swapped::asm_woman_proposing;

pub use driver::SchedulePhase;

pub(crate) use almost_regular::almost_regular_plan;
pub(crate) use asm::asm_schedule;
pub(crate) use driver::run_schedule;

use crate::{AsmConfig, QmSnapshot};
use asm_congest::{NodeId, SplitRng};
use asm_maximal::MatcherBackend;

/// Mutable bookkeeping threaded through one algorithm run.
#[derive(Debug)]
pub(crate) struct RunCtx {
    pub backend: MatcherBackend,
    pub rng: SplitRng,
    pub n_players: usize,
    /// Executed `ProposalRound` counter; doubles as the MM tag source
    /// (`tag = counter << 32` so Israeli–Itai iterations never collide).
    pub pr_counter: u64,
    pub executed_prs: u64,
    pub scheduled_prs: u64,
    pub scheduled_qms: u64,
    pub rounds: u64,
    pub mm_rounds: u64,
    pub mm_invocations: u64,
    pub mm_nonmaximal: u64,
    pub proposals: u64,
    pub acceptances: u64,
    pub rejections: u64,
    pub removed_men: Vec<NodeId>,
    pub remove_amm_violators: bool,
    pub snapshots: Vec<QmSnapshot>,
}

impl RunCtx {
    pub(crate) fn new(config: &AsmConfig, n_players: usize) -> Self {
        RunCtx {
            backend: config.backend,
            rng: SplitRng::new(config.seed),
            n_players,
            pr_counter: 0,
            executed_prs: 0,
            scheduled_prs: 0,
            scheduled_qms: 0,
            rounds: 0,
            mm_rounds: 0,
            mm_invocations: 0,
            mm_nonmaximal: 0,
            proposals: 0,
            acceptances: 0,
            rejections: 0,
            removed_men: Vec::new(),
            remove_amm_violators: false,
            snapshots: Vec::new(),
        }
    }

    /// Worst-case rounds of one maximal-matching invocation under the
    /// nominal (no-termination-detection) schedule.
    pub(crate) fn mm_nominal_rounds(&self) -> u64 {
        match self.backend {
            MatcherBackend::HkpOracle => asm_maximal::hkp_charged_rounds(self.n_players),
            // The greedy matcher matches >= 1 edge per 2-round cycle; at
            // most n/2 edges fit in a matching.
            MatcherBackend::DetGreedy => self.n_players as u64 + 2,
            // Proposal cycles are bounded by the max left degree + 1.
            MatcherBackend::BipartiteProposal => self.n_players as u64 + 2,
            // CV coloring (<= log* slack) + 9 reduction rounds + 9 rounds
            // per forest; forests <= max degree <= n.
            MatcherBackend::PanconesiRizzi => 9 * self.n_players as u64 + 32,
            MatcherBackend::IsraeliItai { max_iterations } => {
                max_iterations * asm_maximal::ROUNDS_PER_MATCHING_ROUND
            }
        }
    }

    /// Nominal rounds of one `ProposalRound`: propose + accept + MM +
    /// reject.
    pub(crate) fn pr_nominal_rounds(&self) -> u64 {
        3 + self.mm_nominal_rounds()
    }
}
