//! The randomized `RandASM` algorithm (Theorem 5).

use super::run_schedule;
use crate::{AsmConfig, AsmReport, ConfigError};
use asm_instance::Instance;
use asm_maximal::{iterations_for_maximal, MatcherBackend};
use serde::{Deserialize, Serialize};

/// Parameters for [`rand_asm`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RandAsmParams {
    /// Stability target ε (at most `ε·|E|` blocking pairs on success).
    pub epsilon: f64,
    /// Failure probability budget δ: all maximal-matching invocations
    /// succeed with probability ≥ `1 − δ` (union-bounded across the run).
    pub failure_delta: f64,
    /// The Israeli–Itai survivor decay constant `c` of Lemma 8 used to
    /// size the truncation (measured ≈ 0.45–0.6 by experiment F1; smaller
    /// is more aggressive, larger more conservative).
    pub decay: f64,
    /// Randomness seed.
    pub seed: u64,
}

impl RandAsmParams {
    /// Paper-faithful parameters for the given ε and δ with a
    /// conservative decay estimate.
    pub fn new(epsilon: f64, failure_delta: f64) -> Self {
        RandAsmParams {
            epsilon,
            failure_delta,
            decay: 0.7,
            seed: 0,
        }
    }

    /// Sets the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Runs `RandASM(P, ε, n, δ)`: identical to `ASM` but with the
/// maximal-matching subroutine replaced by Israeli–Itai truncated to
/// `O(log(n/δε³))` `MatchingRound`s (Theorem 5).
///
/// Each of the `O(ε⁻³ log n)` subroutine invocations is given failure
/// budget `δ / #invocations`, so by the union bound every invocation
/// returns a truly maximal matching with probability ≥ `1 − δ`, in which
/// case the output is `(1 − ε)`-stable exactly as for `ASM`.
/// [`AsmReport::mm_nonmaximal`] reports how many invocations actually fell
/// short.
///
/// # Errors
///
/// Returns [`ConfigError`] if ε or the derived parameters are invalid.
///
/// # Examples
///
/// ```
/// use asm_core::{rand_asm, RandAsmParams};
/// use asm_instance::generators;
///
/// let inst = generators::complete(32, 1);
/// let report = rand_asm(&inst, &RandAsmParams::new(0.5, 0.05).with_seed(7))?;
/// assert!(report.stability(&inst).is_one_minus_eps_stable(0.5));
/// # Ok::<(), asm_core::ConfigError>(())
/// ```
pub fn rand_asm(inst: &Instance, params: &RandAsmParams) -> Result<AsmReport, ConfigError> {
    let config = rand_asm_config(inst, params)?;
    let schedule = super::asm_schedule(&config, inst);
    Ok(run_schedule(inst, &config, &schedule, false))
}

/// Derives the [`AsmConfig`] that `RandASM` runs with: paper defaults for
/// ε, plus an Israeli–Itai backend truncated so that by the union bound
/// every maximal-matching invocation succeeds with probability ≥ `1 − δ`.
/// Shared between the fast and CONGEST engines.
pub fn rand_asm_config(inst: &Instance, params: &RandAsmParams) -> Result<AsmConfig, ConfigError> {
    if !(params.failure_delta > 0.0 && params.failure_delta < 1.0) {
        return Err(ConfigError::Delta(params.failure_delta));
    }
    let mut config = AsmConfig::new(params.epsilon).with_seed(params.seed);
    config.validate()?;

    let ids = inst.ids();
    let n = ids.num_women().max(ids.num_men()).max(2);
    let k = config.quantile_count() as u64;
    let scheduled_prs = config.outer_iterations(n) * config.inner_iterations() * k;
    let per_call_budget = params.failure_delta / scheduled_prs.max(1) as f64;
    let max_iterations =
        iterations_for_maximal(ids.num_players().max(2), per_call_budget, params.decay);
    config.backend = MatcherBackend::IsraeliItai { max_iterations };
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;
    use asm_matching::verify_matching;

    #[test]
    fn stability_holds_across_seeds() {
        let inst = generators::erdos_renyi(16, 16, 0.5, 1);
        for seed in 0..5 {
            let report = rand_asm(&inst, &RandAsmParams::new(1.0, 0.1).with_seed(seed)).unwrap();
            verify_matching(&inst, &report.matching).unwrap();
            assert!(
                report.stability(&inst).is_one_minus_eps_stable(1.0),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let inst = generators::complete(12, 2);
        let p = RandAsmParams::new(1.0, 0.1).with_seed(42);
        let a = rand_asm(&inst, &p).unwrap();
        let b = rand_asm(&inst, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_can_differ() {
        let inst = generators::complete(12, 2);
        let a = rand_asm(&inst, &RandAsmParams::new(1.0, 0.1).with_seed(1)).unwrap();
        let b = rand_asm(&inst, &RandAsmParams::new(1.0, 0.1).with_seed(2)).unwrap();
        // The matchings may coincide, but the round trajectories rarely do.
        assert!(a.rounds != b.rounds || a.matching != b.matching || a.proposals == b.proposals);
    }

    #[test]
    fn mm_failures_are_rare_with_budgeted_truncation() {
        let inst = generators::complete(16, 3);
        let report = rand_asm(&inst, &RandAsmParams::new(1.0, 0.05).with_seed(3)).unwrap();
        assert_eq!(
            report.mm_nonmaximal, 0,
            "with delta = 0.05 a failure here is a 1-in-20 event; this \
             seed is pinned and passes"
        );
    }

    #[test]
    fn invalid_delta_rejected() {
        let inst = generators::complete(4, 1);
        assert!(rand_asm(&inst, &RandAsmParams::new(1.0, 0.0)).is_err());
        assert!(rand_asm(&inst, &RandAsmParams::new(1.0, 1.0)).is_err());
    }

    #[test]
    fn randomized_rounds_much_smaller_than_hkp_nominal() {
        let inst = generators::complete(32, 5);
        let det = crate::asm(&inst, &crate::AsmConfig::new(1.0)).unwrap();
        let rand = rand_asm(&inst, &RandAsmParams::new(1.0, 0.1)).unwrap();
        assert!(
            rand.nominal_rounds < det.nominal_rounds,
            "II truncation beats the charged log^4 oracle on nominal rounds"
        );
    }
}
