//! `AlmostRegularASM` (Section 5.2, Theorem 6).

use super::{run_schedule, SchedulePhase};
use crate::{AsmConfig, AsmReport, ConfigError};
use asm_instance::Instance;
use asm_maximal::{iterations_for_amm, MatcherBackend};
use serde::{Deserialize, Serialize};

/// Parameters for [`almost_regular_asm`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlmostRegularParams {
    /// Stability target ε.
    pub epsilon: f64,
    /// Failure probability budget δ.
    pub failure_delta: f64,
    /// Israeli–Itai decay constant `c` used to size the AMM truncation.
    pub decay: f64,
    /// Randomness seed.
    pub seed: u64,
    /// Override for the men-side regularity α (default: measured from the
    /// instance over men with nonempty lists).
    pub alpha_override: Option<f64>,
}

impl AlmostRegularParams {
    /// Defaults for the given ε and δ.
    pub fn new(epsilon: f64, failure_delta: f64) -> Self {
        AlmostRegularParams {
            epsilon,
            failure_delta,
            decay: 0.7,
            seed: 0,
            alpha_override: None,
        }
    }

    /// Sets the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Measures α over men with nonempty preference lists (isolated men are
/// trivially good and never participate, so they do not constrain α).
fn effective_alpha(inst: &Instance) -> f64 {
    let degrees: Vec<usize> = inst
        .ids()
        .men()
        .map(|m| inst.degree(m))
        .filter(|&d| d > 0)
        .collect();
    match (degrees.iter().min(), degrees.iter().max()) {
        (Some(&lo), Some(&hi)) if lo > 0 => hi as f64 / lo as f64,
        _ => 1.0,
    }
}

/// Runs `AlmostRegularASM(P, ε, δ, α)` (Theorem 6): for α-almost-regular
/// preferences, a `(1 − ε)`-stable matching with probability ≥ `1 − δ` in
/// a number of rounds **independent of n** — `O(α ε⁻³ log(α/δε))`.
///
/// Differences from `ASM`:
///
/// * no outer `log n` loop — `QuantileMatch` is iterated `⌈8αk/ε⌉` times
///   with every man participating (the α-regular accounting of Lemma 6
///   bounds the bad *fraction* directly);
/// * the maximal-matching subroutine is relaxed to `AMM(η, δ′)`
///   (Corollary 2) with `η = ε/(8α)` and `δ′ = δ / #invocations`; players
///   violating maximality in an AMM call are **removed from play**
///   (reported in [`AsmReport::removed_men`]).
///
/// # Errors
///
/// Returns [`ConfigError`] for invalid ε/δ, or when the instance's men
/// have unbounded α (only possible via `alpha_override` misuse — measured
/// α over nonempty lists is always finite).
///
/// # Examples
///
/// ```
/// use asm_core::{almost_regular_asm, AlmostRegularParams};
/// use asm_instance::generators;
///
/// // Complete preferences are 1-almost-regular: O(1) rounds.
/// let inst = generators::complete(32, 3);
/// let report = almost_regular_asm(&inst, &AlmostRegularParams::new(1.0, 0.1))?;
/// assert!(report.stability(&inst).is_one_minus_eps_stable(1.0));
/// # Ok::<(), asm_core::ConfigError>(())
/// ```
pub fn almost_regular_asm(
    inst: &Instance,
    params: &AlmostRegularParams,
) -> Result<AsmReport, ConfigError> {
    let (config, ell) = almost_regular_plan(inst, params)?;
    let schedule = [SchedulePhase {
        gate: 1,
        iterations: ell,
        label: 0,
    }];
    Ok(run_schedule(inst, &config, &schedule, true))
}

/// Derives the configuration and inner-loop length `ℓ` that
/// `AlmostRegularASM` runs with. Shared between the fast and CONGEST
/// engines so both execute the identical plan.
pub(crate) fn almost_regular_plan(
    inst: &Instance,
    params: &AlmostRegularParams,
) -> Result<(AsmConfig, u64), ConfigError> {
    if !(params.failure_delta > 0.0 && params.failure_delta < 1.0) {
        return Err(ConfigError::Delta(params.failure_delta));
    }
    let alpha = params
        .alpha_override
        .unwrap_or_else(|| effective_alpha(inst));
    if !(alpha >= 1.0 && alpha.is_finite()) {
        return Err(ConfigError::InnerMultiplier(alpha));
    }
    let mut config = AsmConfig::new(params.epsilon).with_seed(params.seed);
    config.validate()?;

    let k = config.quantile_count();
    // ℓ = 2 δ_bad⁻¹ k with δ_bad = ε/(4α)  (Theorem 6 proof sketch).
    let ell = (8.0 * alpha * k as f64 / params.epsilon).ceil() as u64;
    let amm_calls = ell.saturating_mul(k as u64).max(1);
    let eta = (params.epsilon / (8.0 * alpha)).min(1.0);
    let delta_per_call = params.failure_delta / amm_calls as f64;
    let max_iterations = iterations_for_amm(eta, delta_per_call, params.decay);
    config.backend = MatcherBackend::IsraeliItai { max_iterations };
    Ok((config, ell))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;
    use asm_matching::verify_matching;

    #[test]
    fn stability_on_complete_preferences() {
        let inst = generators::complete(24, 1);
        let report =
            almost_regular_asm(&inst, &AlmostRegularParams::new(1.0, 0.1).with_seed(4)).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        assert!(report.stability(&inst).is_one_minus_eps_stable(1.0));
    }

    #[test]
    fn stability_on_regular_bounded_preferences() {
        let inst = generators::regular(24, 5, 2);
        let report =
            almost_regular_asm(&inst, &AlmostRegularParams::new(1.0, 0.1).with_seed(1)).unwrap();
        assert!(report.stability(&inst).is_one_minus_eps_stable(1.0));
    }

    #[test]
    fn nominal_rounds_independent_of_n() {
        let p = AlmostRegularParams::new(1.0, 0.1);
        let small = almost_regular_asm(&generators::complete(16, 1), &p).unwrap();
        let large = almost_regular_asm(&generators::complete(128, 1), &p).unwrap();
        assert_eq!(
            small.nominal_rounds, large.nominal_rounds,
            "Theorem 6: the schedule does not depend on n"
        );
    }

    #[test]
    fn alpha_scales_schedule() {
        let p1 = AlmostRegularParams {
            alpha_override: Some(1.0),
            ..AlmostRegularParams::new(1.0, 0.1)
        };
        let p4 = AlmostRegularParams {
            alpha_override: Some(4.0),
            ..AlmostRegularParams::new(1.0, 0.1)
        };
        let inst = generators::complete(16, 1);
        let r1 = almost_regular_asm(&inst, &p1).unwrap();
        let r4 = almost_regular_asm(&inst, &p4).unwrap();
        assert!(r4.scheduled_quantile_matches > r1.scheduled_quantile_matches);
    }

    #[test]
    fn effective_alpha_ignores_isolated_men() {
        let inst = generators::erdos_renyi(20, 20, 0.15, 3);
        let a = effective_alpha(&inst);
        assert!(a.is_finite() && a >= 1.0);
    }

    #[test]
    fn removed_men_are_tracked_separately() {
        // With an aggressive (tiny) budget, AMM violations may remove men;
        // they must never be double-counted as bad.
        let inst = generators::complete(20, 9);
        let p = AlmostRegularParams {
            decay: 0.9, // conservative sizing => more iterations, fewer removals
            ..AlmostRegularParams::new(0.5, 0.2)
        };
        let report = almost_regular_asm(&inst, &p).unwrap();
        let n_men = inst.ids().num_men();
        let unmatched_removed = report
            .removed_men
            .iter()
            .filter(|m| report.matching.partner(**m).is_none())
            .count();
        assert_eq!(
            report.good_men + report.bad_men.len() + unmatched_removed,
            n_men
        );
    }

    #[test]
    fn invalid_delta_rejected() {
        let inst = generators::complete(4, 1);
        assert!(almost_regular_asm(&inst, &AlmostRegularParams::new(1.0, 0.0)).is_err());
    }
}
