//! `ProposalRound` (Algorithm 1).

use super::RunCtx;
use crate::AsmState;
use asm_congest::NodeId;
use asm_instance::Instance;

/// What a `ProposalRound` did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PrOutcome {
    /// No man had a nonempty active set: no message would have been sent.
    Silent,
    /// The round ran; carries the number of pairs matched by step 3.
    Executed {
        /// Pairs matched in `M₀` this round.
        matched: usize,
    },
}

/// Executes one `ProposalRound(Q, k, A)` on the shared state.
///
/// Steps (Algorithm 1):
/// 1. every man proposes to all women in his active set `A`;
/// 2. every proposed-to woman accepts her best proposing quantile;
/// 3. a maximal matching `M₀` is computed in the accepted-proposal graph
///    `G₀` (via the configured backend);
/// 4. women matched in `M₀` take their new partner and reject every
///    surviving suitor in an equal-or-worse quantile; matched men clear
///    their active sets;
/// 5. rejections are applied symmetrically, unmatching any man whose
///    partner upgraded away from him.
pub(crate) fn proposal_round(inst: &Instance, st: &mut AsmState, ctx: &mut RunCtx) -> PrOutcome {
    let ids = inst.ids();

    // Step 1: proposals, grouped by woman (in man-id order, matching the
    // CONGEST inbox order of the message-passing engine).
    let mut proposals: Vec<Vec<NodeId>> = vec![Vec::new(); ids.num_women()];
    let mut any = false;
    for m in ids.men() {
        if st.removed_from_play[m.index()] {
            continue;
        }
        for w in st.active_set(m) {
            proposals[w.index()].push(m);
            ctx.proposals += 1;
            any = true;
        }
    }
    if !any {
        return PrOutcome::Silent;
    }
    ctx.pr_counter += 1;
    ctx.executed_prs += 1;

    // Step 2: each woman accepts her best quantile among the proposers.
    let mut g0_edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (i, props) in proposals.iter().enumerate() {
        if props.is_empty() {
            continue;
        }
        let w = ids.woman(i);
        let wq = &st.quant[w.index()];
        let best = props
            .iter()
            .map(|&m| {
                debug_assert!(
                    wq.contains(m),
                    "a proposer must still be on the woman's list"
                );
                wq.quantile_of(m)
                    .expect("proposer is an acceptable partner")
            })
            .min()
            .expect("nonempty proposer list");
        for &m in props {
            if wq.quantile_of(m) == Some(best) {
                g0_edges.push((m, w));
                ctx.acceptances += 1;
            }
        }
    }

    // Step 3: maximal matching M0 in G0.
    ctx.mm_invocations += 1;
    let tag = ctx.pr_counter << 32;
    let mm = ctx.backend.run(ctx.n_players, &g0_edges, &ctx.rng, tag);
    ctx.mm_rounds += mm.rounds;
    if !mm.maximal {
        ctx.mm_nonmaximal += 1;
    }
    ctx.rounds += 3 + mm.rounds; // propose + accept + MM + reject

    // AlmostRegularASM: men violating maximality in G0 leave the game
    // (Theorem 6). Checked before rejections mutate anything.
    if ctx.remove_amm_violators {
        for v in asm_maximal::maximality_violators(&g0_edges, &mm.pairs) {
            if ids.is_man(v) && !st.removed_from_play[v.index()] {
                st.removed_from_play[v.index()] = true;
                ctx.removed_men.push(v);
            }
        }
    }

    // Steps 4–5: adopt M0 and apply quantile rejections.
    let matched = mm.pairs.len();
    for &(a, b) in &mm.pairs {
        let (m, w) = if ids.is_man(a) { (a, b) } else { (b, a) };
        debug_assert!(ids.is_man(m) && ids.is_woman(w));
        let q_new = st.quant[w.index()]
            .quantile_of(m)
            .expect("matched partner is acceptable");
        // Reject every surviving suitor in an equal-or-worse quantile
        // (this always includes the woman's previous partner, who sits in
        // a strictly worse quantile by Lemma 1).
        for reject in st.quant[w.index()].members_at_or_worse(q_new) {
            if reject != m {
                st.reject_edge(w, reject);
                ctx.rejections += 1;
            }
        }
        st.partner[w.index()] = Some(m);
        st.partner[m.index()] = Some(w);
        st.active_quantile[m.index()] = None;
    }

    PrOutcome::Executed { matched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsmConfig;
    use asm_instance::{generators, InstanceBuilder};

    fn ctx_for(inst: &Instance) -> RunCtx {
        RunCtx::new(&AsmConfig::new(1.0), inst.ids().num_players())
    }

    /// Arms every unmatched man's active quantile like QuantileMatch does.
    fn arm_all(inst: &Instance, st: &mut AsmState) {
        for m in inst.ids().men() {
            if st.partner[m.index()].is_none() {
                st.active_quantile[m.index()] = st.quant[m.index()].min_nonempty_quantile();
            }
        }
    }

    #[test]
    fn silent_when_no_active_sets() {
        let inst = generators::complete(4, 1);
        let mut st = AsmState::new(&inst, 8);
        let mut ctx = ctx_for(&inst);
        assert_eq!(proposal_round(&inst, &mut st, &mut ctx), PrOutcome::Silent);
        assert_eq!(ctx.rounds, 0);
        assert_eq!(ctx.executed_prs, 0);
    }

    #[test]
    fn single_couple_matches_in_one_round() {
        let inst = InstanceBuilder::new(1, 1)
            .woman(0, [0])
            .man(0, [0])
            .build()
            .unwrap();
        let mut st = AsmState::new(&inst, 4);
        let mut ctx = ctx_for(&inst);
        arm_all(&inst, &mut st);
        let out = proposal_round(&inst, &mut st, &mut ctx);
        assert_eq!(out, PrOutcome::Executed { matched: 1 });
        let (m, w) = (inst.ids().man(0), inst.ids().woman(0));
        assert_eq!(st.partner[m.index()], Some(w));
        assert_eq!(st.partner[w.index()], Some(m));
        assert_eq!(st.active_quantile[m.index()], None);
        assert_eq!(ctx.proposals, 1);
        assert_eq!(ctx.acceptances, 1);
        assert!(ctx.rounds >= 3);
    }

    #[test]
    fn woman_accepts_only_best_quantile() {
        // Woman 0 ranks m0 > m1 with k=2 => m0 in Q1, m1 in Q2. Both
        // propose; she must accept only m0.
        let inst = InstanceBuilder::new(1, 2)
            .woman(0, [0, 1])
            .man(0, [0])
            .man(1, [0])
            .build()
            .unwrap();
        let mut st = AsmState::new(&inst, 2);
        let mut ctx = ctx_for(&inst);
        arm_all(&inst, &mut st);
        proposal_round(&inst, &mut st, &mut ctx);
        let ids = inst.ids();
        assert_eq!(st.partner[ids.woman(0).index()], Some(ids.man(0)));
        assert_eq!(ctx.acceptances, 1, "only the Q1 proposal is accepted");
        // m1 was in an equal-or-worse quantile than the new partner: rejected.
        assert!(st.quant[ids.man(1).index()].is_exhausted());
        assert!(st.is_good(ids.man(1)), "rejected by all => good");
    }

    #[test]
    fn upgrade_displaces_previous_partner() {
        // Woman 0: m1 (Q1) > m0 (Q2) with k=2. First m0 proposes & matches;
        // then m1 proposes; she upgrades and m0 is rejected/unmatched.
        let inst = InstanceBuilder::new(1, 2)
            .woman(0, [1, 0])
            .man(0, [0])
            .man(1, [0])
            .build()
            .unwrap();
        let ids = inst.ids();
        let mut st = AsmState::new(&inst, 2);
        let mut ctx = ctx_for(&inst);
        // Round 1: only m0 active (his single woman lands in his last
        // nonempty quantile).
        st.active_quantile[ids.man(0).index()] =
            st.quant[ids.man(0).index()].min_nonempty_quantile();
        proposal_round(&inst, &mut st, &mut ctx);
        assert_eq!(st.partner[ids.woman(0).index()], Some(ids.man(0)));
        // Round 2: m1 wakes up.
        st.active_quantile[ids.man(1).index()] =
            st.quant[ids.man(1).index()].min_nonempty_quantile();
        proposal_round(&inst, &mut st, &mut ctx);
        assert_eq!(st.partner[ids.woman(0).index()], Some(ids.man(1)));
        assert_eq!(st.partner[ids.man(0).index()], None, "displaced");
        assert!(st.quant[ids.man(0).index()].is_exhausted());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn monotonicity_lemma_1_on_random_instance() {
        // Once a woman is matched she never becomes unmatched, and her
        // partner's quantile never worsens.
        let inst = generators::complete(12, 5);
        let k = 4;
        let mut st = AsmState::new(&inst, k);
        let mut ctx = ctx_for(&inst);
        let ids = inst.ids();
        let mut last: Vec<Option<u32>> = vec![None; ids.num_women()];
        for _ in 0..20 {
            arm_all(&inst, &mut st);
            for _ in 0..k {
                proposal_round(&inst, &mut st, &mut ctx);
                for i in 0..ids.num_women() {
                    let w = ids.woman(i);
                    let now =
                        st.partner[w.index()].map(|m| st.quant[w.index()].quantile_of(m).unwrap());
                    match (last[i], now) {
                        (Some(_), None) => panic!("woman {w} lost her partner"),
                        (Some(old), Some(new)) => {
                            assert!(new <= old, "woman {w} got a worse quantile")
                        }
                        _ => {}
                    }
                    last[i] = now;
                }
            }
        }
    }

    #[test]
    fn removed_men_do_not_propose() {
        let inst = generators::complete(3, 2);
        let mut st = AsmState::new(&inst, 2);
        let mut ctx = ctx_for(&inst);
        for m in inst.ids().men() {
            st.removed_from_play[m.index()] = true;
        }
        arm_all(&inst, &mut st);
        assert_eq!(proposal_round(&inst, &mut st, &mut ctx), PrOutcome::Silent);
    }
}
