//! # asm-core: fast distributed almost stable matchings
//!
//! The primary contribution of Ostrovsky & Rosenbaum, *Fast Distributed
//! Almost Stable Matchings* (PODC 2015): distributed algorithms that find
//! `(1 − ε)`-stable matchings — at most `ε·|E|` blocking pairs — in
//! sub-polynomial CONGEST rounds, for arbitrary (unbounded, incomplete)
//! preference lists.
//!
//! | Algorithm | Entry point | Rounds (paper) |
//! |---|---|---|
//! | `ASM` (deterministic, Theorems 3–4) | [`asm`] | `O(ε⁻³ log⁵ n)` |
//! | `RandASM` (Theorem 5) | [`rand_asm`] | `O(ε⁻³ log²(n/δε³))` |
//! | `AlmostRegularASM` (Theorem 6) | [`almost_regular_asm`] | `O(α ε⁻³ log(α/δε))` — constant in `n` |
//! | distributed Gale–Shapley (baseline) | [`baselines::distributed_gs`] | `O(n²)` worst case |
//! | truncated Gale–Shapley (\[3\], baseline) | [`baselines::truncated_gs`] | caller-chosen |
//!
//! Two engines execute the same algorithms:
//!
//! * the **fast engine** (these entry points) simulates the protocol
//!   phase-by-phase on vectors, with round accounting matching the
//!   communication schedule;
//! * the **CONGEST engine** ([`congest`]) runs real per-player processes
//!   exchanging `O(log n)`-bit messages on an [`asm_congest::Network`],
//!   and produces identical matchings from identical seeds.
//!
//! # Examples
//!
//! ```
//! use asm_core::{asm, AsmConfig};
//! use asm_instance::generators;
//!
//! // A 64-player market; ask for at most 0.5|E| blocking pairs.
//! let inst = generators::erdos_renyi(32, 32, 0.4, 1);
//! let report = asm(&inst, &AsmConfig::new(0.5))?;
//!
//! let stability = report.stability(&inst);
//! assert!(stability.is_one_minus_eps_stable(0.5));
//! println!(
//!     "matched {} pairs in {} effective rounds ({} blocking pairs / {} edges)",
//!     report.matching.len(),
//!     report.rounds,
//!     stability.blocking_pairs,
//!     stability.num_edges,
//! );
//! # Ok::<(), asm_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod config;
pub mod congest;
mod fast;
mod quantile;
mod report;
mod state;

pub use config::{AsmConfig, ConfigError};
pub use fast::{
    almost_regular_asm, asm, asm_woman_proposing, rand_asm, rand_asm_config, AlmostRegularParams,
    RandAsmParams,
};
pub use quantile::QuantizedPrefs;
pub use report::{AsmReport, QmSnapshot, RunSummary};
pub use state::AsmState;
