//! Protocol messages of the CONGEST engine.

use asm_congest::Payload;
use asm_maximal::protocols::{MmMsg, PrMsg};
use serde::{Deserialize, Serialize};

/// Messages exchanged by ASM players (Section 3.2's PROPOSE / ACCEPT /
/// REJECT, plus the embedded maximal-matching traffic).
///
/// Every variant fits comfortably in the `O(log n)` CONGEST budget: the
/// payload is a constant-size tag (addressing is carried by the network).
/// The serde derives define the message's wire form for the distributed
/// runtime (`asm-distributed`), which ships envelopes between node
/// processes as JSON frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsmMsg {
    /// Step 1: a man proposes.
    Propose,
    /// Step 2: a woman accepts a proposal into `G₀`.
    Accept,
    /// Step 4: a woman rejects a suitor (who removes her from `Q`).
    Reject,
    /// `AlmostRegularASM` only: "I was in G0 but AMM left me unmatched"
    /// (maximality-violation detection, Theorem 6).
    Unmatched,
    /// Step 3: maximal-matching subroutine traffic.
    Mm(MmMsg),
    /// Step 3 with the Panconesi–Rizzi backend (colors carry a payload).
    Pr(PrMsg),
}

impl Payload for AsmMsg {
    fn bits(&self) -> usize {
        match self {
            AsmMsg::Propose | AsmMsg::Accept | AsmMsg::Reject | AsmMsg::Unmatched => 3,
            AsmMsg::Mm(inner) => 3 + inner.bits(),
            AsmMsg::Pr(inner) => 3 + inner.bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_are_constant_size() {
        for m in [
            AsmMsg::Propose,
            AsmMsg::Accept,
            AsmMsg::Reject,
            AsmMsg::Unmatched,
            AsmMsg::Mm(MmMsg::Pick),
            AsmMsg::Mm(MmMsg::Matched),
        ] {
            assert!(m.bits() <= 8, "{m:?}");
        }
    }

    #[test]
    fn pr_messages_carry_log_n_payloads() {
        // Colors are O(log n) bits; still comfortably CONGEST-legal.
        let m = AsmMsg::Pr(PrMsg::Color {
            forest: 3,
            color: 100,
        });
        assert!(m.bits() <= 3 + 3 + 16 + 7);
    }
}
