//! The per-player CONGEST process.

use super::messages::AsmMsg;
use crate::QuantizedPrefs;
use asm_congest::{Envelope, NodeId, Outbox, Process, SplitRng};
use asm_instance::Gender;
use asm_maximal::protocols::{GreedyNode, IiNode, MmMsg, PrMsg, PrNode, ProposalNode};

/// Which maximal-matching protocol the players embed for step 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestBackend {
    /// Deterministic greedy (the HKP stand-in that actually passes
    /// messages).
    DetGreedy,
    /// Deterministic bipartite proposal matcher (men propose).
    BipartiteProposal,
    /// Panconesi–Rizzi forest-decomposition matcher (fixed schedule; the
    /// driver supplies the G₀ forest count before each invocation).
    PanconesiRizzi,
    /// Truncated Israeli–Itai with the given `MatchingRound` budget.
    IsraeliItai {
        /// Maximum `MatchingRound`s per invocation.
        max_iterations: u64,
    },
}

/// Phase of the `ProposalRound` schedule, set by the driver between
/// rounds (simulating the globally known round clock).
///
/// Public so external round drivers (the distributed orchestrator) can
/// ship phase flips to node processes as [`super::AsmCtl`] operations;
/// the serde derives define the wire form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Phase {
    /// Between `ProposalRound`s: every player is silent.
    Idle,
    /// Step 1: men propose to their active quantile.
    Propose,
    /// Step 2: women accept the best proposing quantile.
    Respond,
    /// Step 3: the embedded maximal-matching subroutine runs.
    Mm,
    /// `AlmostRegularASM` only: G0 members unmatched by AMM announce it.
    UnmatchedAnnounce,
    /// `AlmostRegularASM` only: unmatched G0 members receiving an
    /// announcement are maximality violators and leave the game.
    UnmatchedRecv,
    /// Step 4: women send the rejections queued by adopting `M₀`.
    RejectSend,
    /// Step 4: men apply the rejections they received.
    RejectRecv,
}

#[derive(Debug)]
enum MmState {
    None,
    Greedy(GreedyNode),
    Ii(IiNode),
    Proposal(ProposalNode),
    Pr(PrNode),
}

impl MmState {
    fn matched(&self) -> Option<NodeId> {
        match self {
            MmState::None => None,
            MmState::Greedy(g) => g.matched(),
            MmState::Ii(i) => i.matched(),
            MmState::Proposal(p) => p.matched(),
            MmState::Pr(p) => p.matched(),
        }
    }

    fn is_active(&self) -> bool {
        match self {
            MmState::None => false,
            MmState::Greedy(g) => g.is_active(),
            MmState::Ii(i) => i.is_active(),
            MmState::Proposal(p) => p.is_active(),
            MmState::Pr(p) => p.is_active(),
        }
    }
}

/// One player of the message-passing ASM engine: holds the quantized
/// preferences, current partner, active quantile, and (during step 3) an
/// embedded maximal-matching node.
#[derive(Debug)]
pub struct Player {
    id: NodeId,
    gender: Gender,
    quant: QuantizedPrefs,
    partner: Option<NodeId>,
    active_quantile: Option<u32>,
    removed_from_play: bool,
    pub(crate) phase: Phase,
    backend: CongestBackend,
    rng_base: SplitRng,
    mm_tag: u64,
    mm: MmState,
    /// Panconesi–Rizzi only: the G₀ forest count for the current
    /// invocation (driver-supplied global knowledge of Δ(G₀)).
    pr_forests: u16,
    /// Accepted-proposal neighbors for the current `ProposalRound`.
    g0: Vec<NodeId>,
    /// Queued rejections to send in the RejectSend phase.
    pending_rejects: Vec<NodeId>,
}

impl Player {
    /// Creates a player with full quantized preferences.
    pub fn new(
        id: NodeId,
        gender: Gender,
        ranked: &[NodeId],
        k: usize,
        backend: CongestBackend,
        rng_base: SplitRng,
    ) -> Self {
        Player {
            id,
            gender,
            quant: QuantizedPrefs::new(ranked, k),
            partner: None,
            active_quantile: None,
            removed_from_play: false,
            phase: Phase::Idle,
            backend,
            rng_base,
            mm_tag: 0,
            mm: MmState::None,
            pr_forests: 0,
            g0: Vec::new(),
            pending_rejects: Vec::new(),
        }
    }

    /// This player's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This player's gender.
    pub fn gender(&self) -> Gender {
        self.gender
    }

    /// Current partner.
    pub fn partner(&self) -> Option<NodeId> {
        self.partner
    }

    /// Surviving preference count `|Q|`.
    pub fn remaining(&self) -> usize {
        self.quant.remaining()
    }

    /// Whether this man is good (matched or fully rejected). Women are
    /// vacuously good.
    pub fn is_good(&self) -> bool {
        self.gender == Gender::Woman || self.partner.is_some() || self.quant.is_exhausted()
    }

    /// The man's current active set `A`.
    fn active_set(&self) -> Vec<NodeId> {
        match self.active_quantile {
            Some(q) => self.quant.members_of(q),
            None => Vec::new(),
        }
    }

    /// Driver hook: `QuantileMatch` start — arm `A ← Q_i` if unmatched,
    /// participating (`|Q| ≥ gate`), and not removed from play.
    pub(crate) fn begin_quantile_match(&mut self, gate: usize) {
        if self.gender == Gender::Man
            && !self.removed_from_play
            && self.partner.is_none()
            && !self.quant.is_exhausted()
            && self.quant.remaining() >= gate
        {
            self.active_quantile = self.quant.min_nonempty_quantile();
        }
    }

    /// Driver query: would this man send a proposal in the next
    /// `ProposalRound`?
    pub(crate) fn would_propose(&self) -> bool {
        self.gender == Gender::Man
            && !self.removed_from_play
            && self.partner.is_none()
            && !self.active_set().is_empty()
    }

    /// Driver hook: `ProposalRound` start. `tag` seeds the embedded
    /// matcher's randomness for this invocation.
    pub(crate) fn begin_proposal_round(&mut self, tag: u64) {
        self.mm_tag = tag;
        self.mm = MmState::None;
        self.g0.clear();
        self.pending_rejects.clear();
        self.phase = Phase::Propose;
    }

    /// Driver query: is the embedded matcher still working?
    pub(crate) fn mm_active(&self) -> bool {
        self.mm.is_active()
    }

    /// Driver query (women, post-Respond): the accepted proposals of the
    /// current `ProposalRound` — the woman's `G₀` adjacency.
    pub(crate) fn g0_accepts(&self) -> &[NodeId] {
        &self.g0
    }

    /// Driver hook (Panconesi–Rizzi backend): announce the globally
    /// computed forest count of the current `G₀`.
    pub(crate) fn set_pr_forests(&mut self, forests: u16) {
        self.pr_forests = forests;
    }

    fn build_mm(&mut self, neighbors: Vec<NodeId>) {
        self.mm = match self.backend {
            CongestBackend::DetGreedy => MmState::Greedy(GreedyNode::new(self.id, neighbors)),
            CongestBackend::BipartiteProposal => MmState::Proposal(ProposalNode::new(
                self.id,
                neighbors,
                self.gender == Gender::Man,
            )),
            CongestBackend::PanconesiRizzi => {
                MmState::Pr(PrNode::new(self.id, neighbors, self.pr_forests))
            }
            CongestBackend::IsraeliItai { max_iterations } => MmState::Ii(IiNode::new(
                self.id,
                neighbors,
                self.rng_base.clone(),
                self.mm_tag,
                max_iterations,
            )),
        };
    }

    /// Driver hook: adopt the `M₀` outcome and queue rejections
    /// (`ProposalRound` step 4).
    pub(crate) fn begin_reject(&mut self) {
        self.phase = Phase::RejectSend;
        let Some(p0) = self.mm.matched() else {
            return;
        };
        match self.gender {
            Gender::Man => {
                self.partner = Some(p0);
                self.active_quantile = None;
            }
            Gender::Woman => {
                let q_new = self
                    .quant
                    .quantile_of(p0)
                    .expect("matched partner is acceptable");
                for m in self.quant.members_at_or_worse(q_new) {
                    if m != p0 {
                        self.quant.remove(m);
                        self.pending_rejects.push(m);
                    }
                }
                self.partner = Some(p0);
            }
        }
    }

    /// Whether `AlmostRegularASM` removed this player from play.
    pub fn removed_from_play(&self) -> bool {
        self.removed_from_play
    }
}

impl Process for Player {
    type Msg = AsmMsg;

    fn on_round(&mut self, inbox: &[Envelope<AsmMsg>], outbox: &mut Outbox<AsmMsg>) {
        match self.phase {
            Phase::Idle => {}
            Phase::Propose => {
                if self.would_propose() {
                    for w in self.active_set() {
                        outbox.send(w, AsmMsg::Propose);
                    }
                }
            }
            Phase::Respond => {
                if self.gender == Gender::Woman {
                    // Accept the best proposing quantile (step 2).
                    let proposers: Vec<NodeId> = inbox
                        .iter()
                        .filter(|e| e.payload == AsmMsg::Propose)
                        .map(|e| e.src)
                        .collect();
                    if !proposers.is_empty() {
                        let best = proposers
                            .iter()
                            .map(|&m| {
                                debug_assert!(self.quant.contains(m));
                                self.quant.quantile_of(m).expect("proposer acceptable")
                            })
                            .min()
                            .expect("nonempty");
                        for &m in &proposers {
                            if self.quant.quantile_of(m) == Some(best) {
                                self.g0.push(m);
                                outbox.send(m, AsmMsg::Accept);
                            }
                        }
                    }
                }
            }
            Phase::Mm => {
                // Men learn their G0 adjacency from the arriving accepts
                // and join the matcher immediately; women built theirs in
                // the Respond phase and start on the same round.
                if self.gender == Gender::Man && matches!(self.mm, MmState::None) {
                    let accepted: Vec<NodeId> = inbox
                        .iter()
                        .filter(|e| e.payload == AsmMsg::Accept)
                        .map(|e| e.src)
                        .collect();
                    if !accepted.is_empty() {
                        self.g0 = accepted;
                        self.build_mm(self.g0.clone());
                    }
                }
                if self.gender == Gender::Woman
                    && matches!(self.mm, MmState::None)
                    && !self.g0.is_empty()
                {
                    self.build_mm(self.g0.clone());
                }
                let mm_inbox: Vec<(NodeId, MmMsg)> = inbox
                    .iter()
                    .filter_map(|e| match e.payload {
                        AsmMsg::Mm(m) => Some((e.src, m)),
                        _ => None,
                    })
                    .collect();
                let pr_inbox: Vec<(NodeId, PrMsg)> = inbox
                    .iter()
                    .filter_map(|e| match e.payload {
                        AsmMsg::Pr(m) => Some((e.src, m)),
                        _ => None,
                    })
                    .collect();
                match &mut self.mm {
                    MmState::None => {}
                    MmState::Greedy(g) => {
                        g.on_round(&mm_inbox, |dst, m| outbox.send(dst, AsmMsg::Mm(m)))
                    }
                    MmState::Ii(i) => {
                        i.on_round(&mm_inbox, |dst, m| outbox.send(dst, AsmMsg::Mm(m)))
                    }
                    MmState::Proposal(p) => {
                        p.on_round(&mm_inbox, |dst, m| outbox.send(dst, AsmMsg::Mm(m)))
                    }
                    MmState::Pr(p) => {
                        p.on_round(&pr_inbox, |dst, m| outbox.send(dst, AsmMsg::Pr(m)))
                    }
                }
            }
            Phase::UnmatchedAnnounce => {
                // A G0 member left unmatched by the (almost-)maximal
                // matching tells its G0 neighbors.
                if !self.g0.is_empty() && self.mm.matched().is_none() {
                    for &nb in &self.g0.clone() {
                        outbox.send(nb, AsmMsg::Unmatched);
                    }
                }
            }
            Phase::UnmatchedRecv => {
                // An unmatched G0 member with an unmatched G0 neighbor
                // violates maximality (Definition 4) and — if a man —
                // removes himself from play (Theorem 6).
                if self.gender == Gender::Man
                    && !self.g0.is_empty()
                    && self.mm.matched().is_none()
                    && inbox.iter().any(|e| e.payload == AsmMsg::Unmatched)
                {
                    self.removed_from_play = true;
                }
            }
            Phase::RejectSend => {
                for &m in &self.pending_rejects {
                    outbox.send(m, AsmMsg::Reject);
                }
                self.pending_rejects.clear();
            }
            Phase::RejectRecv => {
                for e in inbox {
                    if e.payload == AsmMsg::Reject {
                        self.quant.remove(e.src);
                        if self.partner == Some(e.src) {
                            self.partner = None;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn woman(ranked: &[u32]) -> Player {
        Player::new(
            NodeId::new(0),
            Gender::Woman,
            &ranked.iter().map(|&r| NodeId::new(r)).collect::<Vec<_>>(),
            2,
            CongestBackend::DetGreedy,
            SplitRng::new(1),
        )
    }

    #[test]
    fn arming_respects_gate() {
        let mut m = Player::new(
            NodeId::new(5),
            Gender::Man,
            &[NodeId::new(0), NodeId::new(1)],
            2,
            CongestBackend::DetGreedy,
            SplitRng::new(1),
        );
        m.begin_quantile_match(10);
        assert!(!m.would_propose(), "gate 10 > |Q| = 2");
        m.begin_quantile_match(2);
        assert!(m.would_propose());
    }

    #[test]
    fn women_never_propose() {
        let mut w = woman(&[5, 6]);
        w.begin_quantile_match(1);
        assert!(!w.would_propose());
    }

    #[test]
    fn reject_recv_unmatches_partner() {
        let mut m = Player::new(
            NodeId::new(5),
            Gender::Man,
            &[NodeId::new(0)],
            2,
            CongestBackend::DetGreedy,
            SplitRng::new(1),
        );
        m.partner = Some(NodeId::new(0));
        m.phase = Phase::RejectRecv;
        let inbox = vec![Envelope::new(
            NodeId::new(0),
            NodeId::new(5),
            AsmMsg::Reject,
        )];
        let mut ob = Outbox::new(NodeId::new(5));
        m.on_round(&inbox, &mut ob);
        assert!(ob.is_empty());
        assert_eq!(m.partner(), None);
        assert!(m.quant.is_exhausted());
        assert!(m.is_good());
    }

    #[test]
    fn woman_accepts_best_quantile_only() {
        // Woman ranks men 10 > 11 with k = 2: quantiles {10} and {11}.
        let mut w = woman(&[10, 11]);
        w.phase = Phase::Respond;
        let me = NodeId::new(0);
        let inbox = vec![
            Envelope::new(NodeId::new(10), me, AsmMsg::Propose),
            Envelope::new(NodeId::new(11), me, AsmMsg::Propose),
        ];
        let mut ob = Outbox::new(me);
        w.on_round(&inbox, &mut ob);
        let sent = ob.drain();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].dst, NodeId::new(10));
        assert_eq!(sent[0].payload, AsmMsg::Accept);
        assert_eq!(w.g0, vec![NodeId::new(10)]);
    }

    #[test]
    fn idle_phase_is_silent() {
        let mut w = woman(&[10]);
        let mut ob = Outbox::new(NodeId::new(0));
        w.on_round(&[], &mut ob);
        assert!(ob.is_empty());
    }
}
