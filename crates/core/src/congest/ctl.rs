//! Driver-to-player control operations and aggregate summaries.
//!
//! The ASM driver loop never touches player state directly: between
//! rounds it broadcasts [`AsmCtl`] operations to every player and reads
//! back an [`AsmSummary`]. Keeping that boundary explicit (and
//! serializable) is what lets the identical driver loop run against the
//! in-process [`asm_congest::Network`] and against remote node
//! processes hosting disjoint player ranges: a transport only has to
//! ship `AsmCtl` batches one way and merged `AsmSummary`s the other.

use super::player::{Phase, Player};
use asm_congest::NodeId;
use asm_instance::Gender;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One control operation the driver applies to every player between
/// rounds (the simulated globally-known round clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsmCtl {
    /// `QuantileMatch` start: arm `A ← Q_i` on men passing `gate`.
    BeginQuantileMatch {
        /// The outer-loop activity gate (`|Q| ≥ gate`).
        gate: usize,
    },
    /// `ProposalRound` start; `tag` seeds the embedded matcher.
    BeginProposalRound {
        /// Matcher randomness tag for this invocation.
        tag: u64,
    },
    /// Flip every player to `phase`.
    SetPhase(Phase),
    /// Panconesi–Rizzi only: announce the globally computed `G₀` forest
    /// count.
    SetPrForests {
        /// The forest count (an upper bound on Δ(G₀)).
        forests: u16,
    },
    /// `ProposalRound` step 4 start: adopt `M₀`, queue rejections.
    BeginReject,
}

/// Aggregate of player state the driver reads between rounds, merged
/// across all players (and, distributed, across all node processes).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsmSummary {
    /// Whether any man would send a proposal (OR-merged).
    pub would_propose: bool,
    /// Whether every player is good or gated out at the last announced
    /// gate (AND-merged) — the driver's early-exit condition.
    pub all_blocked: bool,
    /// Whether any embedded matcher is still working (OR-merged).
    pub mm_active: bool,
    /// Per-edge-low-endpoint accept counts of the women's current `G₀`
    /// adjacency (Panconesi–Rizzi backend only; empty otherwise).
    /// Partial counts: merging sums entries with equal keys.
    pub g0_out_degrees: Vec<(NodeId, u16)>,
}

impl AsmSummary {
    /// The identity element of [`AsmSummary::absorb`]: merging it into a
    /// summary leaves the summary unchanged.
    pub fn empty() -> Self {
        AsmSummary {
            would_propose: false,
            all_blocked: true,
            mm_active: false,
            g0_out_degrees: Vec::new(),
        }
    }

    /// Merges another partition's summary into this one.
    pub fn absorb(&mut self, other: &AsmSummary) {
        self.would_propose |= other.would_propose;
        self.all_blocked &= other.all_blocked;
        self.mm_active |= other.mm_active;
        self.g0_out_degrees.extend(other.g0_out_degrees.iter());
    }

    /// The `G₀` forest count Panconesi–Rizzi needs: the maximum
    /// out-degree after summing partial counts with equal keys.
    pub fn pr_forests(&self) -> u16 {
        let mut totals: HashMap<NodeId, u16> = HashMap::new();
        for &(low, count) in &self.g0_out_degrees {
            *totals.entry(low).or_default() += count;
        }
        totals.values().copied().max().unwrap_or(0)
    }
}

/// Final state of one player, collected when a run ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlayerFinal {
    /// The player's node id.
    pub id: NodeId,
    /// Final partner, if matched.
    pub partner: Option<NodeId>,
    /// Whether the player ended good (matched, fully rejected, or a
    /// woman).
    pub good: bool,
    /// Whether `AlmostRegularASM`'s violator rule removed the player.
    pub removed: bool,
}

/// Applies a batch of control operations, in order, to every player.
///
/// Exposed so remote executors (`asm-node`) apply exactly the operations
/// the in-process [`super::LocalDriver`] applies.
pub fn apply_ctl(players: &mut [Player], ops: &[AsmCtl]) {
    for op in ops {
        for p in players.iter_mut() {
            match *op {
                AsmCtl::BeginQuantileMatch { gate } => p.begin_quantile_match(gate),
                AsmCtl::BeginProposalRound { tag } => p.begin_proposal_round(tag),
                AsmCtl::SetPhase(phase) => p.phase = phase,
                AsmCtl::SetPrForests { forests } => p.set_pr_forests(forests),
                AsmCtl::BeginReject => p.begin_reject(),
            }
        }
    }
}

/// Summarizes a slice of players under the most recently announced
/// `gate`; partitions merge their summaries with [`AsmSummary::absorb`].
pub fn summarize_players(players: &[Player], gate: usize) -> AsmSummary {
    let mut g0_out_degrees: Vec<(NodeId, u16)> = Vec::new();
    let mut counts: HashMap<NodeId, u16> = HashMap::new();
    for p in players {
        if p.gender() == Gender::Woman {
            for &m in p.g0_accepts() {
                let low = m.min(p.id());
                *counts.entry(low).or_default() += 1;
            }
        }
    }
    if !counts.is_empty() {
        let mut entries: Vec<(NodeId, u16)> = counts.into_iter().collect();
        entries.sort_unstable_by_key(|&(low, _)| low);
        g0_out_degrees = entries;
    }
    AsmSummary {
        would_propose: players.iter().any(Player::would_propose),
        all_blocked: players.iter().all(|p| p.is_good() || p.remaining() < gate),
        mm_active: players.iter().any(Player::mm_active),
        g0_out_degrees,
    }
}

/// Collects the final state of a slice of players, in slice order.
pub fn collect_finals(players: &[Player]) -> Vec<PlayerFinal> {
    players
        .iter()
        .map(|p| PlayerFinal {
            id: p.id(),
            partner: p.partner(),
            good: p.is_good(),
            removed: p.removed_from_play(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::player::CongestBackend;
    use super::*;
    use asm_congest::SplitRng;

    fn man(id: u32, ranked: &[u32]) -> Player {
        Player::new(
            NodeId::new(id),
            Gender::Man,
            &ranked.iter().map(|&r| NodeId::new(r)).collect::<Vec<_>>(),
            2,
            CongestBackend::DetGreedy,
            SplitRng::new(1),
        )
    }

    #[test]
    fn ctl_round_trips_through_json() {
        let ops = vec![
            AsmCtl::BeginQuantileMatch { gate: 4 },
            AsmCtl::BeginProposalRound { tag: 1 << 32 },
            AsmCtl::SetPhase(Phase::Respond),
            AsmCtl::SetPrForests { forests: 3 },
            AsmCtl::BeginReject,
        ];
        let json = serde_json::to_string(&ops).unwrap();
        let back: Vec<AsmCtl> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn summary_merge_is_sum_and_or() {
        let mut a = AsmSummary {
            would_propose: false,
            all_blocked: true,
            mm_active: true,
            g0_out_degrees: vec![(NodeId::new(1), 2)],
        };
        let b = AsmSummary {
            would_propose: true,
            all_blocked: false,
            mm_active: false,
            g0_out_degrees: vec![(NodeId::new(1), 1), (NodeId::new(2), 1)],
        };
        a.absorb(&b);
        assert!(a.would_propose && !a.all_blocked && a.mm_active);
        assert_eq!(a.pr_forests(), 3, "partial counts for node 1 sum to 3");
    }

    #[test]
    fn empty_is_merge_identity() {
        let s = AsmSummary {
            would_propose: true,
            all_blocked: false,
            mm_active: true,
            g0_out_degrees: vec![(NodeId::new(7), 5)],
        };
        let mut acc = AsmSummary::empty();
        acc.absorb(&s);
        assert_eq!(acc, s);
    }

    #[test]
    fn apply_ctl_drives_player_hooks() {
        let mut players = vec![man(0, &[2, 3]), man(1, &[3])];
        apply_ctl(&mut players, &[AsmCtl::BeginQuantileMatch { gate: 1 }]);
        let s = summarize_players(&players, 1);
        assert!(s.would_propose);
        assert!(!s.all_blocked);
        apply_ctl(&mut players, &[AsmCtl::SetPhase(Phase::Idle)]);
        let finals = collect_finals(&players);
        assert_eq!(finals.len(), 2);
        assert_eq!(finals[0].id, NodeId::new(0));
        assert!(!finals[0].good);
    }
}
