//! The message-passing CONGEST engine.
//!
//! Runs `ASM`/`RandASM` as real per-player processes on an
//! [`asm_congest::Network`]: every PROPOSE/ACCEPT/REJECT and every
//! maximal-matching message is an `O(log n)`-bit message delivered along
//! an edge of the communication graph, with the network enforcing both
//! constraints.
//!
//! The driver sequences the globally-known phase schedule (in the CONGEST
//! model every player can compute the current phase from the synchronized
//! round number; the driver simulates that shared clock, skipping rounds
//! that are provably silent). Given the same seed, this engine produces a
//! matching **identical** to the fast engine's — the engine-equivalence
//! tests in `tests/` check this across instance families and backends.
//!
//! # Examples
//!
//! ```
//! use asm_core::congest::asm_congest;
//! use asm_core::{asm, AsmConfig};
//! use asm_instance::generators;
//! use asm_maximal::MatcherBackend;
//!
//! let inst = generators::complete(8, 3);
//! let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
//! let message_passing = asm_congest(&inst, &config)?;
//! let fast = asm(&inst, &config).unwrap();
//! assert_eq!(message_passing.matching, fast.matching);
//! # Ok::<(), asm_core::congest::CongestRunError>(())
//! ```

mod messages;
mod player;

pub use messages::AsmMsg;
pub use player::{CongestBackend, Player};

use crate::fast::{almost_regular_plan, asm_schedule, SchedulePhase};
use crate::{rand_asm_config, AlmostRegularParams, AsmConfig, ConfigError, RandAsmParams};
use asm_congest::{CongestError, NetStats, Network, NodeId, SplitRng};
use asm_instance::Instance;
use asm_matching::Matching;
use asm_maximal::MatcherBackend;
use player::Phase;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Result of a CONGEST-engine run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CongestReport {
    /// The matching produced.
    pub matching: Matching,
    /// Network statistics: measured rounds, messages, and bits.
    pub stats: NetStats,
    /// `ProposalRound`s in the nominal schedule.
    pub scheduled_proposal_rounds: u64,
    /// `ProposalRound`s that actually communicated.
    pub executed_proposal_rounds: u64,
    /// Men that are good (matched or fully rejected) at termination.
    pub good_men: usize,
    /// Men that are bad (unmatched with surviving preferences).
    pub bad_men: Vec<NodeId>,
    /// Men removed from play by `AlmostRegularASM`'s violator rule
    /// (always empty for `ASM`/`RandASM`).
    pub removed_men: Vec<NodeId>,
}

/// Errors from the CONGEST engine.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CongestRunError {
    /// The charged HKP oracle has no message-passing form; use
    /// `DetGreedy` or `IsraeliItai`.
    UnsupportedBackend(MatcherBackend),
    /// Invalid algorithm configuration.
    Config(ConfigError),
    /// Network-level failure (a protocol bug: non-neighbor send, budget
    /// overrun, livelock cap).
    Network(CongestError),
}

impl fmt::Display for CongestRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestRunError::UnsupportedBackend(b) => write!(
                f,
                "backend {b:?} has no message-passing implementation (use DetGreedy or IsraeliItai)"
            ),
            CongestRunError::Config(e) => write!(f, "invalid configuration: {e}"),
            CongestRunError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for CongestRunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CongestRunError::Config(e) => Some(e),
            CongestRunError::Network(e) => Some(e),
            CongestRunError::UnsupportedBackend(_) => None,
        }
    }
}

impl From<ConfigError> for CongestRunError {
    fn from(e: ConfigError) -> Self {
        CongestRunError::Config(e)
    }
}

impl From<CongestError> for CongestRunError {
    fn from(e: CongestError) -> Self {
        CongestRunError::Network(e)
    }
}

/// Execution knobs for the CONGEST engine that do not affect the
/// simulated protocol.
///
/// `workers > 1` steps all nodes of each synchronous round concurrently
/// via [`asm_congest::Network::step_par`]; the message-merge order is
/// deterministic (node-id order), so the resulting [`CongestReport`] is
/// identical for every worker count — the conformance harness asserts
/// this across 1/2/8 workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for the round stepper (clamped to ≥ 1).
    pub workers: usize,
}

impl ExecOptions {
    /// Serial execution (the default).
    pub fn serial() -> Self {
        ExecOptions { workers: 1 }
    }

    /// Parallel execution with the given worker count.
    pub fn with_workers(workers: usize) -> Self {
        ExecOptions {
            workers: workers.max(1),
        }
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::serial()
    }
}

/// The per-message payload allowance (in bits) the CONGEST engine
/// enforces for a network of `num_players` nodes: a constant tag budget
/// plus one node-id width — `O(log n)`, as the model requires.
///
/// Exposed so external checkers (the conformance oracle layer) can assert
/// that a run's measured `max_message_bits` stayed within the same budget
/// the engine enforced.
///
/// # Examples
///
/// ```
/// use asm_core::congest::payload_bit_budget;
/// assert_eq!(payload_bit_budget(1024), 24 + 10);
/// assert!(payload_bit_budget(0) >= 25); // tiny networks get the floor
/// ```
pub fn payload_bit_budget(num_players: usize) -> usize {
    24 + asm_congest::NodeId::bits_for(num_players.max(2))
}

/// Runs the deterministic `ASM` (or, with an Israeli–Itai backend, a
/// `RandASM`-shaped run) on the message-passing engine.
///
/// # Errors
///
/// Fails on invalid configuration, on the `HkpOracle` backend (which is a
/// charged sequential oracle, not a protocol), or on network-level
/// protocol violations.
pub fn asm_congest(inst: &Instance, config: &AsmConfig) -> Result<CongestReport, CongestRunError> {
    asm_congest_with(inst, config, ExecOptions::serial())
}

/// [`asm_congest()`] with explicit [`ExecOptions`] (parallel stepping).
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn asm_congest_with(
    inst: &Instance,
    config: &AsmConfig,
    exec: ExecOptions,
) -> Result<CongestReport, CongestRunError> {
    config.validate()?;
    let schedule = asm_schedule(config, inst);
    run(inst, config, &schedule, false, exec)
}

/// Runs `RandASM` (Theorem 5) on the message-passing engine: the same
/// truncated-Israeli–Itai configuration as [`crate::rand_asm`], executed
/// as real message exchange.
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn rand_asm_congest(
    inst: &Instance,
    params: &RandAsmParams,
) -> Result<CongestReport, CongestRunError> {
    rand_asm_congest_with(inst, params, ExecOptions::serial())
}

/// [`rand_asm_congest()`] with explicit [`ExecOptions`].
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn rand_asm_congest_with(
    inst: &Instance,
    params: &RandAsmParams,
    exec: ExecOptions,
) -> Result<CongestReport, CongestRunError> {
    let config = rand_asm_config(inst, params)?;
    let schedule = asm_schedule(&config, inst);
    run(inst, &config, &schedule, false, exec)
}

/// Runs `AlmostRegularASM` (Theorem 6) on the message-passing engine: the
/// same plan as [`crate::almost_regular_asm`], with the
/// maximality-violation detection implemented as two extra protocol
/// rounds per `ProposalRound` (UNMATCHED announcements over `G₀`).
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn almost_regular_asm_congest(
    inst: &Instance,
    params: &AlmostRegularParams,
) -> Result<CongestReport, CongestRunError> {
    almost_regular_asm_congest_with(inst, params, ExecOptions::serial())
}

/// [`almost_regular_asm_congest()`] with explicit [`ExecOptions`].
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn almost_regular_asm_congest_with(
    inst: &Instance,
    params: &AlmostRegularParams,
    exec: ExecOptions,
) -> Result<CongestReport, CongestRunError> {
    let (config, ell) = almost_regular_plan(inst, params)?;
    let schedule = [SchedulePhase {
        gate: 1,
        iterations: ell,
        label: 0,
    }];
    run(inst, &config, &schedule, true, exec)
}

fn run(
    inst: &Instance,
    config: &AsmConfig,
    schedule: &[SchedulePhase],
    amm_removal: bool,
    exec: ExecOptions,
) -> Result<CongestReport, CongestRunError> {
    let (backend, mm_cap) = match config.backend {
        MatcherBackend::DetGreedy => (
            CongestBackend::DetGreedy,
            2 * inst.ids().num_players() as u64 + 16,
        ),
        MatcherBackend::BipartiteProposal => (
            CongestBackend::BipartiteProposal,
            2 * inst.ids().num_players() as u64 + 16,
        ),
        MatcherBackend::PanconesiRizzi => (
            CongestBackend::PanconesiRizzi,
            // Worst-case fixed schedule: F <= n forests; recomputed
            // per invocation by the driver from the actual G0.
            9 * inst.ids().num_players() as u64 + 64,
        ),
        MatcherBackend::IsraeliItai { max_iterations } => (
            CongestBackend::IsraeliItai { max_iterations },
            4 * max_iterations + 16,
        ),
        other => return Err(CongestRunError::UnsupportedBackend(other)),
    };

    let ids = inst.ids();
    let k = config.quantile_count();
    let rng_base = SplitRng::new(config.seed);
    let players: Vec<Player> = ids
        .players()
        .map(|v| {
            Player::new(
                v,
                ids.gender(v),
                inst.prefs(v).ranked(),
                k,
                backend,
                rng_base.clone(),
            )
        })
        .collect();
    let mut net = Network::new(inst.topology(), players)?;
    // The CONGEST allowance: most payloads are constant-size tags, but the
    // Panconesi–Rizzi colors legitimately carry O(log n) bits.
    net.set_bit_budget(payload_bit_budget(ids.num_players()));
    net.set_parallelism(exec.workers);

    let mut pr_counter: u64 = 0;
    let mut executed: u64 = 0;
    let mut scheduled: u64 = 0;

    'outer: for phase in schedule {
        for it in 0..phase.iterations {
            scheduled += k as u64;
            // Global termination detection: if no man passes this gate,
            // none will pass any later (larger) gate.
            for p in net.nodes_mut() {
                p.begin_quantile_match(phase.gate);
            }
            if !net.nodes().iter().any(Player::would_propose) {
                let blocked = net
                    .nodes()
                    .iter()
                    .all(|p| p.is_good() || p.remaining() < phase.gate);
                if blocked && config.early_exit {
                    // Account the rest of the schedule as scheduled-only:
                    // the remaining iterations of this phase, then every
                    // later phase — matching the fast engine's nominal
                    // bookkeeping exactly (the conformance harness diffs
                    // the two).
                    let mut rest: u64 = (phase.iterations - 1 - it) * k as u64;
                    let mut seen_current = false;
                    for ph in schedule {
                        if std::ptr::eq(ph, phase) {
                            seen_current = true;
                            continue;
                        }
                        if seen_current {
                            rest += ph.iterations * k as u64;
                        }
                    }
                    scheduled += rest;
                    break 'outer;
                }
                continue;
            }
            for _ in 0..k {
                if !net.nodes().iter().any(Player::would_propose) {
                    break;
                }
                pr_counter += 1;
                executed += 1;
                run_proposal_round(
                    &mut net,
                    inst,
                    backend,
                    pr_counter << 32,
                    mm_cap,
                    amm_removal,
                )?;
            }
        }
    }

    // Collect the matching from the women's partner fields; assert the
    // men agree.
    let mut matching = Matching::new(ids.num_players());
    for w in ids.women() {
        if let Some(m) = net.node(w).partner() {
            debug_assert_eq!(net.node(m).partner(), Some(w), "partner tables agree");
            matching
                .add_pair(m, w)
                .expect("players hold disjoint pairs");
        }
    }
    let mut bad = Vec::new();
    let mut removed = Vec::new();
    let mut good = 0;
    for m in ids.men() {
        let p = net.node(m);
        if p.removed_from_play() {
            removed.push(m);
            if p.partner().is_some() {
                good += 1; // matched before removal; counted as in the fast engine
            }
            continue;
        }
        if p.is_good() {
            good += 1;
        } else {
            bad.push(m);
        }
    }
    Ok(CongestReport {
        matching,
        stats: net.stats().clone(),
        scheduled_proposal_rounds: scheduled,
        executed_proposal_rounds: executed,
        good_men: good,
        bad_men: bad,
        removed_men: removed,
    })
}

/// Executes one `ProposalRound` worth of synchronous rounds.
fn run_proposal_round(
    net: &mut Network<Player>,
    inst: &Instance,
    backend: CongestBackend,
    tag: u64,
    mm_cap: u64,
    amm_removal: bool,
) -> Result<(), CongestError> {
    for p in net.nodes_mut() {
        p.begin_proposal_round(tag); // phase = Propose
    }
    net.step_par()?; // men send PROPOSE
    set_phase(net, Phase::Respond);
    net.step_par()?; // women receive, send ACCEPT, learn G0
    if backend == CongestBackend::PanconesiRizzi {
        // Panconesi–Rizzi assumes Δ(G0) is globally known; the driver
        // plays that oracle by reading the women's accept lists.
        let mut out_degree: std::collections::HashMap<NodeId, u16> =
            std::collections::HashMap::new();
        for w in inst.ids().women() {
            for &m in net.node(w).g0_accepts() {
                let low = m.min(w);
                *out_degree.entry(low).or_default() += 1;
            }
        }
        let forests = out_degree.values().copied().max().unwrap_or(0);
        for p in net.nodes_mut() {
            p.set_pr_forests(forests);
        }
    }
    set_phase(net, Phase::Mm);
    let mut steps = 0;
    loop {
        let outcome = net.step_par()?; // matcher subrounds
        steps += 1;
        if outcome.sent == 0 && !net.nodes().iter().any(Player::mm_active) {
            break;
        }
        if steps > mm_cap {
            return Err(CongestError::PhaseBudgetExhausted { budget: mm_cap });
        }
    }
    if amm_removal {
        // Theorem 6's violator detection: unmatched G0 members announce,
        // and unmatched men hearing an announcement leave the game.
        set_phase(net, Phase::UnmatchedAnnounce);
        net.step_par()?;
        set_phase(net, Phase::UnmatchedRecv);
        net.step_par()?;
    }
    for p in net.nodes_mut() {
        p.begin_reject(); // adopt M0, queue rejects; phase = RejectSend
    }
    net.step_par()?; // women send REJECT
    set_phase(net, Phase::RejectRecv);
    net.step_par()?; // men apply rejections
    set_phase(net, Phase::Idle);
    Ok(())
}

fn set_phase(net: &mut Network<Player>, phase: Phase) {
    for p in net.nodes_mut() {
        p.phase = phase;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;
    use asm_matching::verify_matching;

    #[test]
    fn det_greedy_congest_matches_fast_engine() {
        for seed in 0..4 {
            let inst = generators::erdos_renyi(10, 10, 0.5, seed);
            let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
            let congest = asm_congest(&inst, &config).unwrap();
            let fast = crate::asm(&inst, &config).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
            assert_eq!(
                congest.executed_proposal_rounds,
                fast.executed_proposal_rounds
            );
            assert_eq!(congest.bad_men, fast.bad_men);
        }
    }

    #[test]
    fn bipartite_proposal_congest_matches_fast_engine() {
        for seed in 0..4 {
            let inst = generators::zipf(10, 4, 1.0, seed + 30);
            let config = AsmConfig::new(1.0).with_backend(MatcherBackend::BipartiteProposal);
            let congest = asm_congest(&inst, &config).unwrap();
            let fast = crate::asm(&inst, &config).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
            assert_eq!(congest.bad_men, fast.bad_men, "seed {seed}");
        }
    }

    #[test]
    fn panconesi_rizzi_congest_matches_fast_engine() {
        for seed in 0..4 {
            let inst = generators::erdos_renyi(9, 9, 0.5, seed + 90);
            let config = AsmConfig::new(1.0).with_backend(MatcherBackend::PanconesiRizzi);
            let congest = asm_congest(&inst, &config).unwrap();
            let fast = crate::asm(&inst, &config).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
            assert_eq!(congest.bad_men, fast.bad_men, "seed {seed}");
        }
    }

    #[test]
    fn israeli_itai_congest_matches_fast_engine() {
        for seed in 0..4 {
            let inst = generators::erdos_renyi(9, 9, 0.6, seed + 50);
            let config = AsmConfig::new(1.0)
                .with_seed(seed)
                .with_backend(MatcherBackend::IsraeliItai { max_iterations: 40 });
            let congest = asm_congest(&inst, &config).unwrap();
            let fast = crate::asm(&inst, &config).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
        }
    }

    #[test]
    fn rand_asm_congest_is_stable_enough() {
        let inst = generators::complete(12, 8);
        let params = RandAsmParams::new(1.0, 0.1).with_seed(5);
        let report = rand_asm_congest(&inst, &params).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        let fast = crate::rand_asm(&inst, &params).unwrap();
        assert_eq!(report.matching, fast.matching);
    }

    #[test]
    fn almost_regular_congest_matches_fast_engine() {
        for seed in 0..3 {
            let inst = generators::regular(12, 4, seed + 70);
            let params = AlmostRegularParams::new(1.0, 0.1).with_seed(seed);
            let congest = almost_regular_asm_congest(&inst, &params).unwrap();
            let fast = crate::almost_regular_asm(&inst, &params).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
            assert_eq!(congest.removed_men, fast.removed_men, "seed {seed}");
        }
    }

    #[test]
    fn almost_regular_congest_is_stable_enough() {
        let inst = generators::complete(12, 2);
        let report =
            almost_regular_asm_congest(&inst, &AlmostRegularParams::new(1.0, 0.1)).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        let st = asm_matching::StabilityReport::analyze(&inst, &report.matching);
        assert!(st.is_one_minus_eps_stable(1.0));
    }

    #[test]
    fn hkp_oracle_backend_is_rejected() {
        let inst = generators::complete(4, 1);
        let err = asm_congest(&inst, &AsmConfig::new(1.0)).unwrap_err();
        assert!(matches!(err, CongestRunError::UnsupportedBackend(_)));
        assert!(err.to_string().contains("DetGreedy"));
    }

    #[test]
    fn stats_measure_real_traffic() {
        let inst = generators::complete(8, 2);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm_congest(&inst, &config).unwrap();
        assert!(report.stats.messages > 0);
        assert!(report.stats.rounds > 0);
        assert!(report.stats.max_message_bits <= 8);
        assert!(!report.matching.is_empty());
    }

    #[test]
    fn empty_instance() {
        let inst = asm_instance::InstanceBuilder::new(2, 2).build().unwrap();
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm_congest(&inst, &config).unwrap();
        assert!(report.matching.is_empty());
        assert_eq!(report.stats.rounds, 0);
        assert_eq!(report.good_men, 2, "isolated men are vacuously good");
    }
}
