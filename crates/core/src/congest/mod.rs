//! The message-passing CONGEST engine.
//!
//! Runs `ASM`/`RandASM` as real per-player processes on an
//! [`asm_congest::Network`]: every PROPOSE/ACCEPT/REJECT and every
//! maximal-matching message is an `O(log n)`-bit message delivered along
//! an edge of the communication graph, with the network enforcing both
//! constraints.
//!
//! The driver sequences the globally-known phase schedule (in the CONGEST
//! model every player can compute the current phase from the synchronized
//! round number; the driver simulates that shared clock, skipping rounds
//! that are provably silent). Given the same seed, this engine produces a
//! matching **identical** to the fast engine's — the engine-equivalence
//! tests in `tests/` check this across instance families and backends.
//!
//! # Examples
//!
//! ```
//! use asm_core::congest::asm_congest;
//! use asm_core::{asm, AsmConfig};
//! use asm_instance::generators;
//! use asm_maximal::MatcherBackend;
//!
//! let inst = generators::complete(8, 3);
//! let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
//! let message_passing = asm_congest(&inst, &config)?;
//! let fast = asm(&inst, &config).unwrap();
//! assert_eq!(message_passing.matching, fast.matching);
//! # Ok::<(), asm_core::congest::CongestRunError>(())
//! ```

mod ctl;
mod messages;
mod player;

pub use crate::fast::SchedulePhase;
pub use ctl::{apply_ctl, collect_finals, summarize_players, AsmCtl, AsmSummary, PlayerFinal};
pub use messages::AsmMsg;
pub use player::{CongestBackend, Phase, Player};

use crate::fast::{almost_regular_plan, asm_schedule};
use crate::{rand_asm_config, AlmostRegularParams, AsmConfig, ConfigError, RandAsmParams};
use asm_congest::{CongestError, NetStats, Network, NodeId, RoundDriver, RoundOutcome, SplitRng};
use asm_instance::Instance;
use asm_matching::Matching;
use asm_maximal::MatcherBackend;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Result of a CONGEST-engine run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CongestReport {
    /// The matching produced.
    pub matching: Matching,
    /// Network statistics: measured rounds, messages, and bits.
    pub stats: NetStats,
    /// `ProposalRound`s in the nominal schedule.
    pub scheduled_proposal_rounds: u64,
    /// `ProposalRound`s that actually communicated.
    pub executed_proposal_rounds: u64,
    /// Men that are good (matched or fully rejected) at termination.
    pub good_men: usize,
    /// Men that are bad (unmatched with surviving preferences).
    pub bad_men: Vec<NodeId>,
    /// Men removed from play by `AlmostRegularASM`'s violator rule
    /// (always empty for `ASM`/`RandASM`).
    pub removed_men: Vec<NodeId>,
}

/// Errors from the CONGEST engine.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CongestRunError {
    /// The charged HKP oracle has no message-passing form; use
    /// `DetGreedy` or `IsraeliItai`.
    UnsupportedBackend(MatcherBackend),
    /// Invalid algorithm configuration.
    Config(ConfigError),
    /// Network-level failure (a protocol bug: non-neighbor send, budget
    /// overrun, livelock cap).
    Network(CongestError),
}

impl fmt::Display for CongestRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestRunError::UnsupportedBackend(b) => write!(
                f,
                "backend {b:?} has no message-passing implementation (use DetGreedy or IsraeliItai)"
            ),
            CongestRunError::Config(e) => write!(f, "invalid configuration: {e}"),
            CongestRunError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for CongestRunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CongestRunError::Config(e) => Some(e),
            CongestRunError::Network(e) => Some(e),
            CongestRunError::UnsupportedBackend(_) => None,
        }
    }
}

impl From<ConfigError> for CongestRunError {
    fn from(e: ConfigError) -> Self {
        CongestRunError::Config(e)
    }
}

impl From<CongestError> for CongestRunError {
    fn from(e: CongestError) -> Self {
        CongestRunError::Network(e)
    }
}

/// Execution knobs for the CONGEST engine that do not affect the
/// simulated protocol.
///
/// `workers > 1` steps all nodes of each synchronous round concurrently
/// via [`asm_congest::Network::step_par`]; the message-merge order is
/// deterministic (node-id order), so the resulting [`CongestReport`] is
/// identical for every worker count — the conformance harness asserts
/// this across 1/2/8 workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for the round stepper (clamped to ≥ 1).
    pub workers: usize,
}

impl ExecOptions {
    /// Serial execution (the default).
    pub fn serial() -> Self {
        ExecOptions { workers: 1 }
    }

    /// Parallel execution with the given worker count.
    pub fn with_workers(workers: usize) -> Self {
        ExecOptions {
            workers: workers.max(1),
        }
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::serial()
    }
}

/// The per-message payload allowance (in bits) the CONGEST engine
/// enforces for a network of `num_players` nodes: a constant tag budget
/// plus one node-id width — `O(log n)`, as the model requires.
///
/// Exposed so external checkers (the conformance oracle layer) can assert
/// that a run's measured `max_message_bits` stayed within the same budget
/// the engine enforced.
///
/// # Examples
///
/// ```
/// use asm_core::congest::payload_bit_budget;
/// assert_eq!(payload_bit_budget(1024), 24 + 10);
/// assert!(payload_bit_budget(0) >= 25); // tiny networks get the floor
/// ```
pub fn payload_bit_budget(num_players: usize) -> usize {
    24 + asm_congest::NodeId::bits_for(num_players.max(2))
}

/// Runs the deterministic `ASM` (or, with an Israeli–Itai backend, a
/// `RandASM`-shaped run) on the message-passing engine.
///
/// # Errors
///
/// Fails on invalid configuration, on the `HkpOracle` backend (which is a
/// charged sequential oracle, not a protocol), or on network-level
/// protocol violations.
pub fn asm_congest(inst: &Instance, config: &AsmConfig) -> Result<CongestReport, CongestRunError> {
    asm_congest_with(inst, config, ExecOptions::serial())
}

/// [`asm_congest()`] with explicit [`ExecOptions`] (parallel stepping).
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn asm_congest_with(
    inst: &Instance,
    config: &AsmConfig,
    exec: ExecOptions,
) -> Result<CongestReport, CongestRunError> {
    let plan = RunPlan::asm(inst, config)?;
    run_local(inst, &plan, exec)
}

/// Runs `RandASM` (Theorem 5) on the message-passing engine: the same
/// truncated-Israeli–Itai configuration as [`crate::rand_asm`], executed
/// as real message exchange.
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn rand_asm_congest(
    inst: &Instance,
    params: &RandAsmParams,
) -> Result<CongestReport, CongestRunError> {
    rand_asm_congest_with(inst, params, ExecOptions::serial())
}

/// [`rand_asm_congest()`] with explicit [`ExecOptions`].
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn rand_asm_congest_with(
    inst: &Instance,
    params: &RandAsmParams,
    exec: ExecOptions,
) -> Result<CongestReport, CongestRunError> {
    let plan = RunPlan::rand_asm(inst, params)?;
    run_local(inst, &plan, exec)
}

/// Runs `AlmostRegularASM` (Theorem 6) on the message-passing engine: the
/// same plan as [`crate::almost_regular_asm`], with the
/// maximality-violation detection implemented as two extra protocol
/// rounds per `ProposalRound` (UNMATCHED announcements over `G₀`).
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn almost_regular_asm_congest(
    inst: &Instance,
    params: &AlmostRegularParams,
) -> Result<CongestReport, CongestRunError> {
    almost_regular_asm_congest_with(inst, params, ExecOptions::serial())
}

/// [`almost_regular_asm_congest()`] with explicit [`ExecOptions`].
///
/// # Errors
///
/// As for [`asm_congest()`].
pub fn almost_regular_asm_congest_with(
    inst: &Instance,
    params: &AlmostRegularParams,
    exec: ExecOptions,
) -> Result<CongestReport, CongestRunError> {
    let plan = RunPlan::almost_regular(inst, params)?;
    run_local(inst, &plan, exec)
}

/// A fully resolved execution plan for the CONGEST engine: the validated
/// configuration, the phase schedule, and whether `AlmostRegularASM`'s
/// violator-removal rounds run.
///
/// Serializable so the distributed runtime can ship the same plan the
/// in-process engine executes to node processes; equal plans plus equal
/// instances yield byte-identical runs on any [`RoundDriver`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunPlan {
    /// The validated algorithm configuration.
    pub config: AsmConfig,
    /// The `QuantileMatch` schedule the driver sequences.
    pub schedule: Vec<SchedulePhase>,
    /// Whether the `AlmostRegularASM` violator-removal rounds run.
    pub amm_removal: bool,
}

impl RunPlan {
    /// The plan [`asm_congest()`] executes.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration.
    pub fn asm(inst: &Instance, config: &AsmConfig) -> Result<Self, CongestRunError> {
        config.validate()?;
        Ok(RunPlan {
            config: config.clone(),
            schedule: asm_schedule(config, inst),
            amm_removal: false,
        })
    }

    /// The plan [`rand_asm_congest()`] executes.
    ///
    /// # Errors
    ///
    /// Fails on invalid parameters.
    pub fn rand_asm(inst: &Instance, params: &RandAsmParams) -> Result<Self, CongestRunError> {
        let config = rand_asm_config(inst, params)?;
        let schedule = asm_schedule(&config, inst);
        Ok(RunPlan {
            config,
            schedule,
            amm_removal: false,
        })
    }

    /// The plan [`almost_regular_asm_congest()`] executes.
    ///
    /// # Errors
    ///
    /// Fails on invalid parameters.
    pub fn almost_regular(
        inst: &Instance,
        params: &AlmostRegularParams,
    ) -> Result<Self, CongestRunError> {
        let (config, ell) = almost_regular_plan(inst, params)?;
        Ok(RunPlan {
            config,
            schedule: vec![SchedulePhase {
                gate: 1,
                iterations: ell,
                label: 0,
            }],
            amm_removal: true,
        })
    }
}

/// Resolves the message-passing backend and its per-invocation matcher
/// round cap for `config` on `inst`.
///
/// # Errors
///
/// Fails on invalid configuration or a backend with no message-passing
/// form (the charged HKP oracle).
pub fn congest_backend(
    inst: &Instance,
    config: &AsmConfig,
) -> Result<(CongestBackend, u64), CongestRunError> {
    config.validate()?;
    Ok(match config.backend {
        MatcherBackend::DetGreedy => (
            CongestBackend::DetGreedy,
            2 * inst.ids().num_players() as u64 + 16,
        ),
        MatcherBackend::BipartiteProposal => (
            CongestBackend::BipartiteProposal,
            2 * inst.ids().num_players() as u64 + 16,
        ),
        MatcherBackend::PanconesiRizzi => (
            CongestBackend::PanconesiRizzi,
            // Worst-case fixed schedule: F <= n forests; recomputed
            // per invocation by the driver from the actual G0.
            9 * inst.ids().num_players() as u64 + 64,
        ),
        MatcherBackend::IsraeliItai { max_iterations } => (
            CongestBackend::IsraeliItai { max_iterations },
            4 * max_iterations + 16,
        ),
        other => return Err(CongestRunError::UnsupportedBackend(other)),
    })
}

/// Builds the players whose node ids fall in `range` (raw-id order), with
/// state identical to the corresponding slice of an in-process run.
///
/// The full network is `build_players(inst, config, 0..n)`; a distributed
/// node process hosts a contiguous sub-range.
///
/// # Errors
///
/// As for [`congest_backend`].
pub fn build_players(
    inst: &Instance,
    config: &AsmConfig,
    range: std::ops::Range<u32>,
) -> Result<Vec<Player>, CongestRunError> {
    let (backend, _) = congest_backend(inst, config)?;
    let ids = inst.ids();
    let k = config.quantile_count();
    let rng_base = SplitRng::new(config.seed);
    Ok(ids
        .players()
        .filter(|v| range.contains(&v.raw()))
        .map(|v| {
            Player::new(
                v,
                ids.gender(v),
                inst.prefs(v).ranked(),
                k,
                backend,
                rng_base.clone(),
            )
        })
        .collect())
}

/// Everything a [`RoundDriver`] hands back when a run finishes: the final
/// per-player state (in node-id order) and the network statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunArtifacts {
    /// Final per-player state, indexed by node id.
    pub finals: Vec<PlayerFinal>,
    /// The executor's network statistics.
    pub stats: NetStats,
}

/// Errors from driving an ASM run over an arbitrary [`RoundDriver`].
#[derive(Clone, Debug, PartialEq)]
pub enum DriveError<E> {
    /// Setup failure before any round ran (invalid config or backend).
    Setup(CongestRunError),
    /// The embedded matcher exceeded its round cap (livelock guard).
    MmBudgetExhausted {
        /// The exhausted cap.
        budget: u64,
    },
    /// Transport or engine failure from the driver itself.
    Driver(E),
}

impl<E: fmt::Display> fmt::Display for DriveError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Setup(e) => write!(f, "setup failed: {e}"),
            DriveError::MmBudgetExhausted { budget } => {
                write!(f, "matcher exceeded its {budget}-round budget")
            }
            DriveError::Driver(e) => write!(f, "round driver failed: {e}"),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> Error for DriveError<E> {}

/// The in-process [`RoundDriver`]: wraps an [`asm_congest::Network`] of
/// [`Player`]s — the reference executor every other transport is
/// differential-tested against.
#[derive(Debug)]
pub struct LocalDriver {
    net: Network<Player>,
    last_gate: usize,
}

impl LocalDriver {
    /// Builds the full-network executor for `inst` under `config`.
    ///
    /// # Errors
    ///
    /// As for [`congest_backend`], plus network construction failures.
    pub fn new(
        inst: &Instance,
        config: &AsmConfig,
        exec: ExecOptions,
    ) -> Result<Self, CongestRunError> {
        let n = inst.ids().num_players();
        let players = build_players(inst, config, 0..n as u32)?;
        let mut net = Network::new(inst.topology(), players)?;
        // The CONGEST allowance: most payloads are constant-size tags,
        // but the Panconesi–Rizzi colors legitimately carry O(log n) bits.
        net.set_bit_budget(payload_bit_budget(n));
        net.set_parallelism(exec.workers);
        Ok(LocalDriver { net, last_gate: 0 })
    }
}

impl RoundDriver for LocalDriver {
    type Ctl = AsmCtl;
    type Summary = AsmSummary;
    type Final = RunArtifacts;
    type Error = CongestError;

    fn control(&mut self, ops: &[AsmCtl]) -> Result<AsmSummary, CongestError> {
        for op in ops {
            if let AsmCtl::BeginQuantileMatch { gate } = *op {
                self.last_gate = gate;
            }
        }
        apply_ctl(self.net.nodes_mut(), ops);
        Ok(summarize_players(self.net.nodes(), self.last_gate))
    }

    fn step(&mut self) -> Result<(RoundOutcome, AsmSummary), CongestError> {
        let outcome = self.net.step_par()?;
        Ok((outcome, summarize_players(self.net.nodes(), self.last_gate)))
    }

    fn finish(self) -> Result<RunArtifacts, CongestError> {
        Ok(RunArtifacts {
            finals: collect_finals(self.net.nodes()),
            stats: self.net.stats().clone(),
        })
    }
}

/// Runs `plan` against the local in-process executor.
fn run_local(
    inst: &Instance,
    plan: &RunPlan,
    exec: ExecOptions,
) -> Result<CongestReport, CongestRunError> {
    let driver = LocalDriver::new(inst, &plan.config, exec)?;
    run_plan_with_driver(inst, plan, driver).map_err(|e| match e {
        DriveError::Setup(e) => e,
        DriveError::MmBudgetExhausted { budget } => {
            CongestRunError::Network(CongestError::PhaseBudgetExhausted { budget })
        }
        DriveError::Driver(e) => CongestRunError::Network(e),
    })
}

/// Executes `plan` on an arbitrary [`RoundDriver`] and assembles the
/// report.
///
/// This is **the** driver loop: both the in-process engine
/// ([`asm_congest()`] and friends, via [`LocalDriver`]) and the
/// distributed orchestrator run this exact function, so the sequence of
/// control batches and round steps — and therefore the round and message
/// tallies — is identical across transports by construction.
///
/// # Errors
///
/// Setup failures, matcher budget exhaustion, and driver (transport or
/// engine) failures.
pub fn run_plan_with_driver<D>(
    inst: &Instance,
    plan: &RunPlan,
    mut driver: D,
) -> Result<CongestReport, DriveError<D::Error>>
where
    D: RoundDriver<Ctl = AsmCtl, Summary = AsmSummary, Final = RunArtifacts>,
{
    let (backend, mm_cap) = congest_backend(inst, &plan.config).map_err(DriveError::Setup)?;
    let ids = inst.ids();
    let k = plan.config.quantile_count();

    let mut pr_counter: u64 = 0;
    let mut executed: u64 = 0;
    let mut scheduled: u64 = 0;

    'outer: for (pi, phase) in plan.schedule.iter().enumerate() {
        for it in 0..phase.iterations {
            scheduled += k as u64;
            // Global termination detection: if no man passes this gate,
            // none will pass any later (larger) gate.
            let mut summary = driver
                .control(&[AsmCtl::BeginQuantileMatch { gate: phase.gate }])
                .map_err(DriveError::Driver)?;
            if !summary.would_propose {
                if summary.all_blocked && plan.config.early_exit {
                    // Account the rest of the schedule as scheduled-only:
                    // the remaining iterations of this phase, then every
                    // later phase — matching the fast engine's nominal
                    // bookkeeping exactly (the conformance harness diffs
                    // the two).
                    let mut rest: u64 = (phase.iterations - 1 - it) * k as u64;
                    for ph in &plan.schedule[pi + 1..] {
                        rest += ph.iterations * k as u64;
                    }
                    scheduled += rest;
                    break 'outer;
                }
                continue;
            }
            for _ in 0..k {
                if !summary.would_propose {
                    break;
                }
                pr_counter += 1;
                executed += 1;
                summary = run_proposal_round(
                    &mut driver,
                    backend,
                    pr_counter << 32,
                    mm_cap,
                    plan.amm_removal,
                )?;
            }
        }
    }

    let arts = driver.finish().map_err(DriveError::Driver)?;
    debug_assert_eq!(arts.finals.len(), ids.num_players());

    // Collect the matching from the women's partner fields; assert the
    // men agree.
    let mut matching = Matching::new(ids.num_players());
    for w in ids.women() {
        if let Some(m) = arts.finals[w.index()].partner {
            debug_assert_eq!(
                arts.finals[m.index()].partner,
                Some(w),
                "partner tables agree"
            );
            matching
                .add_pair(m, w)
                .expect("players hold disjoint pairs");
        }
    }
    let mut bad = Vec::new();
    let mut removed = Vec::new();
    let mut good = 0;
    for m in ids.men() {
        let f = &arts.finals[m.index()];
        if f.removed {
            removed.push(m);
            if f.partner.is_some() {
                good += 1; // matched before removal; counted as in the fast engine
            }
            continue;
        }
        if f.good {
            good += 1;
        } else {
            bad.push(m);
        }
    }
    Ok(CongestReport {
        matching,
        stats: arts.stats,
        scheduled_proposal_rounds: scheduled,
        executed_proposal_rounds: executed,
        good_men: good,
        bad_men: bad,
        removed_men: removed,
    })
}

/// Executes one `ProposalRound` worth of synchronous rounds on `driver`,
/// returning the summary after the closing `Idle` flip.
fn run_proposal_round<D>(
    driver: &mut D,
    backend: CongestBackend,
    tag: u64,
    mm_cap: u64,
    amm_removal: bool,
) -> Result<AsmSummary, DriveError<D::Error>>
where
    D: RoundDriver<Ctl = AsmCtl, Summary = AsmSummary, Final = RunArtifacts>,
{
    driver
        .control(&[AsmCtl::BeginProposalRound { tag }]) // phase = Propose
        .map_err(DriveError::Driver)?;
    driver.step().map_err(DriveError::Driver)?; // men send PROPOSE
    driver
        .control(&[AsmCtl::SetPhase(Phase::Respond)])
        .map_err(DriveError::Driver)?;
    // Women receive, send ACCEPT, learn G0.
    let (_, summary) = driver.step().map_err(DriveError::Driver)?;
    if backend == CongestBackend::PanconesiRizzi {
        // Panconesi–Rizzi assumes Δ(G0) is globally known; the driver
        // plays that oracle from the women's merged accept counts.
        let forests = summary.pr_forests();
        driver
            .control(&[
                AsmCtl::SetPrForests { forests },
                AsmCtl::SetPhase(Phase::Mm),
            ])
            .map_err(DriveError::Driver)?;
    } else {
        driver
            .control(&[AsmCtl::SetPhase(Phase::Mm)])
            .map_err(DriveError::Driver)?;
    }
    let mut steps = 0;
    loop {
        let (outcome, summary) = driver.step().map_err(DriveError::Driver)?; // matcher subrounds
        steps += 1;
        if outcome.sent == 0 && !summary.mm_active {
            break;
        }
        if steps > mm_cap {
            return Err(DriveError::MmBudgetExhausted { budget: mm_cap });
        }
    }
    if amm_removal {
        // Theorem 6's violator detection: unmatched G0 members announce,
        // and unmatched men hearing an announcement leave the game.
        driver
            .control(&[AsmCtl::SetPhase(Phase::UnmatchedAnnounce)])
            .map_err(DriveError::Driver)?;
        driver.step().map_err(DriveError::Driver)?;
        driver
            .control(&[AsmCtl::SetPhase(Phase::UnmatchedRecv)])
            .map_err(DriveError::Driver)?;
        driver.step().map_err(DriveError::Driver)?;
    }
    driver
        .control(&[AsmCtl::BeginReject]) // adopt M0, queue rejects; phase = RejectSend
        .map_err(DriveError::Driver)?;
    driver.step().map_err(DriveError::Driver)?; // women send REJECT
    driver
        .control(&[AsmCtl::SetPhase(Phase::RejectRecv)])
        .map_err(DriveError::Driver)?;
    driver.step().map_err(DriveError::Driver)?; // men apply rejections
    driver
        .control(&[AsmCtl::SetPhase(Phase::Idle)])
        .map_err(DriveError::Driver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators;
    use asm_matching::verify_matching;

    #[test]
    fn det_greedy_congest_matches_fast_engine() {
        for seed in 0..4 {
            let inst = generators::erdos_renyi(10, 10, 0.5, seed);
            let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
            let congest = asm_congest(&inst, &config).unwrap();
            let fast = crate::asm(&inst, &config).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
            assert_eq!(
                congest.executed_proposal_rounds,
                fast.executed_proposal_rounds
            );
            assert_eq!(congest.bad_men, fast.bad_men);
        }
    }

    #[test]
    fn bipartite_proposal_congest_matches_fast_engine() {
        for seed in 0..4 {
            let inst = generators::zipf(10, 4, 1.0, seed + 30);
            let config = AsmConfig::new(1.0).with_backend(MatcherBackend::BipartiteProposal);
            let congest = asm_congest(&inst, &config).unwrap();
            let fast = crate::asm(&inst, &config).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
            assert_eq!(congest.bad_men, fast.bad_men, "seed {seed}");
        }
    }

    #[test]
    fn panconesi_rizzi_congest_matches_fast_engine() {
        for seed in 0..4 {
            let inst = generators::erdos_renyi(9, 9, 0.5, seed + 90);
            let config = AsmConfig::new(1.0).with_backend(MatcherBackend::PanconesiRizzi);
            let congest = asm_congest(&inst, &config).unwrap();
            let fast = crate::asm(&inst, &config).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
            assert_eq!(congest.bad_men, fast.bad_men, "seed {seed}");
        }
    }

    #[test]
    fn israeli_itai_congest_matches_fast_engine() {
        for seed in 0..4 {
            let inst = generators::erdos_renyi(9, 9, 0.6, seed + 50);
            let config = AsmConfig::new(1.0)
                .with_seed(seed)
                .with_backend(MatcherBackend::IsraeliItai { max_iterations: 40 });
            let congest = asm_congest(&inst, &config).unwrap();
            let fast = crate::asm(&inst, &config).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
        }
    }

    #[test]
    fn rand_asm_congest_is_stable_enough() {
        let inst = generators::complete(12, 8);
        let params = RandAsmParams::new(1.0, 0.1).with_seed(5);
        let report = rand_asm_congest(&inst, &params).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        let fast = crate::rand_asm(&inst, &params).unwrap();
        assert_eq!(report.matching, fast.matching);
    }

    #[test]
    fn almost_regular_congest_matches_fast_engine() {
        for seed in 0..3 {
            let inst = generators::regular(12, 4, seed + 70);
            let params = AlmostRegularParams::new(1.0, 0.1).with_seed(seed);
            let congest = almost_regular_asm_congest(&inst, &params).unwrap();
            let fast = crate::almost_regular_asm(&inst, &params).unwrap();
            assert_eq!(congest.matching, fast.matching, "seed {seed}");
            assert_eq!(congest.removed_men, fast.removed_men, "seed {seed}");
        }
    }

    #[test]
    fn almost_regular_congest_is_stable_enough() {
        let inst = generators::complete(12, 2);
        let report =
            almost_regular_asm_congest(&inst, &AlmostRegularParams::new(1.0, 0.1)).unwrap();
        verify_matching(&inst, &report.matching).unwrap();
        let st = asm_matching::StabilityReport::analyze(&inst, &report.matching);
        assert!(st.is_one_minus_eps_stable(1.0));
    }

    #[test]
    fn hkp_oracle_backend_is_rejected() {
        let inst = generators::complete(4, 1);
        let err = asm_congest(&inst, &AsmConfig::new(1.0)).unwrap_err();
        assert!(matches!(err, CongestRunError::UnsupportedBackend(_)));
        assert!(err.to_string().contains("DetGreedy"));
    }

    #[test]
    fn stats_measure_real_traffic() {
        let inst = generators::complete(8, 2);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm_congest(&inst, &config).unwrap();
        assert!(report.stats.messages > 0);
        assert!(report.stats.rounds > 0);
        assert!(report.stats.max_message_bits <= 8);
        assert!(!report.matching.is_empty());
    }

    #[test]
    fn empty_instance() {
        let inst = asm_instance::InstanceBuilder::new(2, 2).build().unwrap();
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm_congest(&inst, &config).unwrap();
        assert!(report.matching.is_empty());
        assert_eq!(report.stats.rounds, 0);
        assert_eq!(report.good_men, 2, "isolated men are vacuously good");
    }
}
