//! # asm-runtime: deterministic parallel execution
//!
//! The workspace's algorithms are seeded and bit-reproducible; this crate
//! keeps them that way while fanning work out across cores. It is built
//! on `std` scoped threads only — the workspace is offline/vendored, so
//! no rayon, no crossbeam.
//!
//! Three pieces:
//!
//! * [`Executor`] — a work-sharded map over an *indexed* input slice.
//!   Workers steal indices from a shared counter, but results are
//!   collected back **in input order**, so the output of
//!   [`Executor::map`] is a pure function of the inputs: byte-identical
//!   for 1, 2, or N workers.
//! * [`derive_seed`] / [`label_hash`] — the per-cell seed-derivation
//!   scheme. A sweep cell's seed depends only on the cell's *coordinates*
//!   (experiment, family, n, ε-index, trial), never on which worker ran
//!   it or in what order — the other half of thread-count invariance.
//! * [`sweep`] — machine-readable sweep output (`BENCH_sweep.json`):
//!   per-cell wall-clock, rounds, messages, and blocking fraction, plus
//!   the baseline-comparison logic behind the CI perf-regression gate.
//! * [`pool`] — the streaming counterpart to [`Executor`]: a bounded
//!   [`JobQueue`] whose non-blocking `try_push` is an admission-control
//!   decision, and a [`WorkerPool`] of long-lived threads that drain it,
//!   with close-then-join graceful shutdown. This is what `asm-service`
//!   serves requests on.
//!
//! # Examples
//!
//! ```
//! use asm_runtime::{derive_seed, label_hash, Executor};
//!
//! let cells: Vec<u64> = (0..64).collect();
//! let f = |_i: usize, &c: &u64| {
//!     let seed = derive_seed(0xA5, &[label_hash("t1"), c]);
//!     seed.wrapping_mul(c + 1)
//! };
//! let serial = Executor::serial().map(&cells, f);
//! let parallel = Executor::new(8).map(&cells, f);
//! assert_eq!(serial, parallel);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cli;
mod executor;
pub mod pool;
mod seed;
pub mod sweep;

pub use cli::RunFlags;
pub use executor::Executor;
pub use pool::{JobQueue, PushError, WorkerPool};
pub use seed::{derive_seed, label_hash};
pub use sweep::{SweepCell, SweepReport};
