//! The scoped-thread work-sharded executor.

use std::sync::atomic::{AtomicUsize, Ordering};

/// One worker's output: `(input index, result)` pairs, or the panic
/// payload if the worker's closure panicked.
type Shard<R> = Result<Vec<(usize, R)>, Box<dyn std::any::Any + Send>>;

/// A deterministic parallel mapper.
///
/// [`Executor::map`] applies a function to every element of a slice,
/// using up to `workers` OS threads. Scheduling is dynamic (workers pull
/// the next unclaimed index from a shared atomic counter, so uneven cell
/// costs balance out), but results are returned **in input order** — the
/// output is identical to a serial `iter().map()` run as long as the
/// function itself is a pure function of `(index, item)`.
///
/// With `workers <= 1` (or a single-element input) no threads are
/// spawned at all; the map runs inline on the caller's thread.
#[derive(Clone, Debug)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Creates an executor with the given worker count (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
        }
    }

    /// The single-threaded executor: `map` runs inline, no threads.
    pub fn serial() -> Self {
        Executor { workers: 1 }
    }

    /// An executor sized to the machine (`available_parallelism`).
    pub fn machine_sized() -> Self {
        Executor::new(Self::available())
    }

    /// The number of hardware threads the OS reports (≥ 1).
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether this executor runs everything inline.
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// # Panics
    ///
    /// If `f` panics on any item, the panic is resumed on the calling
    /// thread once all workers have stopped (same observable behavior as
    /// a serial map, modulo which item's panic wins).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.workers <= 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let workers = self.workers.min(n);
        let next = AtomicUsize::new(0);
        let shards: Vec<Shard<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i, &items[i])));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for shard in shards {
            match shard {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|o| o.expect("every index is claimed exactly once"))
            .collect()
    }

    /// Maps `f` over `items` and flattens the per-item result vectors,
    /// preserving input order. Convenience for sweep grids where each
    /// cell contributes several rows.
    pub fn flat_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> Vec<R> + Sync,
    {
        self.map(items, f).into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 2, 3, 8] {
            let out = Executor::new(workers).map(&items, |i, &x| (i as u32, x * 2));
            assert_eq!(out.len(), 100);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u32);
                assert_eq!(*doubled, 2 * i as u32);
            }
        }
    }

    #[test]
    fn parallel_equals_serial_under_uneven_load() {
        let items: Vec<u64> = (0..64).collect();
        let f = |_i: usize, &x: &u64| {
            // Uneven busy-work so workers finish out of order.
            let mut acc = x;
            for _ in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let serial = Executor::serial().map(&items, f);
        let par = Executor::new(4).map(&items, f);
        assert_eq!(serial, par);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<u8> = vec![0; 257];
        Executor::new(5).map(&items, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(Executor::new(0).workers(), 1);
        assert!(Executor::new(0).is_serial());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let exec = Executor::new(4);
        let empty: Vec<u8> = vec![];
        assert!(exec.map(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.map(&[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn flat_map_flattens_in_order() {
        let out = Executor::new(3).flat_map(&[1u32, 2, 3], |_, &x| vec![x; x as usize]);
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn machine_sized_reports_at_least_one() {
        assert!(Executor::available() >= 1);
        assert!(Executor::machine_sized().workers() >= 1);
    }

    #[test]
    #[should_panic(expected = "cell 13")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        Executor::new(4).map(&items, |i, _| {
            if i == 13 {
                panic!("cell 13");
            }
            i
        });
    }
}
