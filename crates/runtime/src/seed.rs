//! Per-cell seed derivation.
//!
//! A parallel sweep must not thread one mutable RNG through its cells —
//! the draw order would then depend on scheduling. Instead every cell
//! derives its seed *positionally* from the sweep's base seed and the
//! cell's coordinates. The scheme is documented in EXPERIMENTS.md
//! ("Reproducing in parallel") and must stay stable: recorded results
//! depend on it.

/// FNV-1a hash of a label, for mixing string coordinates (experiment
/// ids, family names) into [`derive_seed`].
///
/// # Examples
///
/// ```
/// use asm_runtime::label_hash;
/// assert_eq!(label_hash("t1_stability"), label_hash("t1_stability"));
/// assert_ne!(label_hash("complete"), label_hash("chain"));
/// ```
pub fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The splitmix64 output function (also used by `asm_congest::SplitRng`;
/// duplicated here so the runtime stays dependency-free).
#[inline]
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a cell seed from a base seed and the cell's coordinate path.
///
/// Pure and order-sensitive: `derive_seed(b, &[x, y])` differs from
/// `derive_seed(b, &[y, x])`, and each coordinate is absorbed through a
/// full splitmix64 round, so adjacent cells get statistically unrelated
/// seeds. Identical inputs always give the identical seed, regardless of
/// worker count or scheduling.
///
/// # Examples
///
/// ```
/// use asm_runtime::{derive_seed, label_hash};
///
/// let a = derive_seed(0xA5, &[label_hash("t1"), label_hash("complete"), 64]);
/// let b = derive_seed(0xA5, &[label_hash("t1"), label_hash("complete"), 64]);
/// assert_eq!(a, b);
/// assert_ne!(a, derive_seed(0xA5, &[label_hash("t1"), label_hash("chain"), 64]));
/// ```
pub fn derive_seed(base: u64, path: &[u64]) -> u64 {
    let mut state = base ^ 0xD6E8_FEB8_6659_FD93;
    let mut out = mix(&mut state);
    for &coord in path {
        state ^= coord.wrapping_mul(0xA076_1D64_78BD_642F);
        out = mix(&mut state);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure() {
        assert_eq!(derive_seed(1, &[2, 3]), derive_seed(1, &[2, 3]));
    }

    #[test]
    fn path_order_matters() {
        assert_ne!(derive_seed(1, &[2, 3]), derive_seed(1, &[3, 2]));
    }

    #[test]
    fn base_seed_matters() {
        assert_ne!(derive_seed(1, &[7]), derive_seed(2, &[7]));
    }

    #[test]
    fn empty_path_differs_from_base() {
        assert_ne!(derive_seed(42, &[]), 42);
    }

    #[test]
    fn adjacent_cells_diverge() {
        // Consecutive trial indices must give well-separated seeds.
        let seeds: Vec<u64> = (0..100).map(|t| derive_seed(0, &[1, t])).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "collision among 100 derived seeds");
    }

    #[test]
    fn label_hash_is_fnv1a() {
        // Pinned: the scheme is part of the recorded-results contract.
        assert_eq!(label_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(label_hash("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
