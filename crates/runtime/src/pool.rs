//! Long-lived bounded job queues and worker pools.
//!
//! [`Executor`](crate::Executor) covers the *batch* shape — map a pure
//! function over a slice and return. A request-serving workload needs the
//! complementary *streaming* shape: jobs arrive continuously, capacity is
//! bounded, and producers must learn about overload instead of buffering
//! without limit. That is [`JobQueue`] (a bounded MPMC queue whose
//! `try_push` is the admission-control decision point) plus
//! [`WorkerPool`] (OS threads that drain the queue until it is closed
//! *and* empty, giving graceful drain-then-exit shutdown for free).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a [`JobQueue::try_push`] was refused. The job is handed back so the
/// caller can respond to its originator.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — the admission-control signal.
    Full(T),
    /// The queue has been closed; no new jobs are accepted.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer job queue.
///
/// * [`try_push`](JobQueue::try_push) never blocks: a full queue is an
///   immediate [`PushError::Full`], which callers surface as an explicit
///   overload response.
/// * [`pop`](JobQueue::pop) blocks until a job is available, and returns
///   `None` only once the queue is closed **and** drained — so workers
///   looping on `pop` finish every accepted job before exiting.
/// * Capacity `0` is legal and refuses every push (useful for testing
///   overload paths deterministically).
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        })
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of pending jobs.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether no jobs are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](JobQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Admits `job` if there is room, without blocking. Returns the queue
    /// depth *including the job just pushed* — the caller's deterministic
    /// high-water observation (reading `len()` afterwards races with
    /// consumers, which made queue-peak metrics nondeterministic).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](JobQueue::close); both return the job to the caller.
    pub fn try_push(&self, job: T) -> Result<usize, PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(job));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        state.items.push_back(job);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Takes the next job, blocking while the queue is open but empty.
    ///
    /// Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.items.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: pending jobs still drain through `pop`, new
    /// pushes are refused, and blocked consumers wake up. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }
}

/// A fixed set of OS threads draining one [`JobQueue`].
///
/// Each worker loops `queue.pop()` and hands every job to the shared
/// handler (called as `handler(worker_index, job)`). Workers exit when
/// `pop` returns `None` — i.e. after [`JobQueue::close`] once the queue is
/// drained — so [`join`](WorkerPool::join) *is* graceful shutdown.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to ≥ 1) draining `queue`.
    pub fn spawn<T, F>(workers: usize, queue: &Arc<JobQueue<T>>, handler: F) -> Self
    where
        T: Send + 'static,
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        let handles = (0..workers.max(1))
            .map(|index| {
                let queue = Arc::clone(queue);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("asm-worker-{index}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            handler(index, job);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Spawns workers partitioned across `queues`, one shard per queue.
    ///
    /// `workers` is the *total* thread budget; every shard is guaranteed
    /// at least one dedicated worker (so no shard's queue can starve),
    /// and any surplus is dealt round-robin from shard 0 — the effective
    /// thread count is `max(workers, queues.len())`. The handler is
    /// called as `handler(shard_index, worker_index, job)` with
    /// `worker_index` global across shards.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is empty.
    pub fn spawn_sharded<T, F>(workers: usize, queues: &[Arc<JobQueue<T>>], handler: F) -> Self
    where
        T: Send + 'static,
        F: Fn(usize, usize, T) + Send + Sync + 'static,
    {
        assert!(!queues.is_empty(), "spawn_sharded needs at least one queue");
        let shards = queues.len();
        let total = workers.max(shards);
        let handler = Arc::new(handler);
        let mut handles = Vec::with_capacity(total);
        for index in 0..total {
            let shard = index % shards;
            let queue = Arc::clone(&queues[shard]);
            let handler = Arc::clone(&handler);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("asm-worker-{shard}.{index}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            handler(shard, index, job);
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }
        WorkerPool { handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every worker to exit (close the queue first, or this
    /// blocks forever).
    ///
    /// # Panics
    ///
    /// Re-raises a worker thread's panic.
    pub fn join(self) {
        for h in self.handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn jobs_flow_through_in_fifo_order_serially() {
        let q = JobQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(job)) => assert_eq!(job, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let q = JobQueue::new(0);
        assert!(matches!(q.try_push(9), Err(PushError::Full(9))));
    }

    #[test]
    fn closed_queue_refuses_and_drains() {
        let q = JobQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn workers_drain_every_accepted_job() {
        let q = JobQueue::new(128);
        let done = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let pool = {
            let (done, sum) = (Arc::clone(&done), Arc::clone(&sum));
            WorkerPool::spawn(4, &q, move |_, job: u64| {
                sum.fetch_add(job, Ordering::Relaxed);
                done.fetch_add(1, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.workers(), 4);
        for i in 0..100u64 {
            q.try_push(i).unwrap();
        }
        q.close();
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn try_push_reports_the_depth_including_itself() {
        let q = JobQueue::new(4);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        q.pop().unwrap();
        assert_eq!(q.try_push(3).unwrap(), 2);
    }

    #[test]
    fn sharded_pool_gives_every_shard_a_worker_and_drains_all() {
        let queues: Vec<_> = (0..3).map(|_| JobQueue::new(64)).collect();
        let per_shard: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
        let pool = {
            let per_shard = Arc::clone(&per_shard);
            // Thread budget below the shard count: still one per shard.
            WorkerPool::spawn_sharded(1, &queues, move |shard, _worker, job: u64| {
                per_shard[shard].fetch_add(job, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.workers(), 3);
        for (s, q) in queues.iter().enumerate() {
            for j in 0..10u64 {
                q.try_push(100 * s as u64 + j).unwrap();
            }
        }
        for q in &queues {
            q.close();
        }
        pool.join();
        for (s, total) in per_shard.iter().enumerate() {
            let expect: u64 = (0..10u64).map(|j| 100 * s as u64 + j).sum();
            assert_eq!(total.load(Ordering::Relaxed), expect, "shard {s}");
        }
    }

    #[test]
    fn sharded_pool_distributes_surplus_workers() {
        let queues: Vec<_> = (0..2).map(|_| JobQueue::<u8>::new(1)).collect();
        let pool = WorkerPool::spawn_sharded(5, &queues, |_, _, _| {});
        assert_eq!(pool.workers(), 5);
        for q in &queues {
            q.close();
        }
        pool.join();
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q: Arc<JobQueue<u8>> = JobQueue::new(4);
        let pool = WorkerPool::spawn(2, &q, |_, _| {});
        q.close();
        pool.join(); // must return, not hang
    }

    #[test]
    fn worker_count_clamps_to_one() {
        let q: Arc<JobQueue<u8>> = JobQueue::new(1);
        let pool = WorkerPool::spawn(0, &q, |_, _| {});
        assert_eq!(pool.workers(), 1);
        q.close();
        pool.join();
    }
}
