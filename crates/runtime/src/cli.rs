//! Shared flag parsing for the bench binaries.

/// The flags every experiment binary understands.
///
/// * `--quick` / `-q` — smoke-test sweep sizes;
/// * `--par N` — worker count (`0` = all hardware threads; default 1);
/// * `--csv` / `--markdown` — output format (plain tables otherwise);
/// * `--stable-output` — replace wall-clock table cells with `-` so two
///   runs can be byte-diffed (the sweep JSON keeps real timings);
/// * `--sweep-out PATH` — where to write `BENCH_sweep.json`;
/// * `--no-sweep` — skip writing the sweep artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunFlags {
    /// Quick (smoke) sweep sizes.
    pub quick: bool,
    /// Worker count (already resolved; ≥ 1).
    pub par: usize,
    /// Emit CSV instead of aligned tables.
    pub csv: bool,
    /// Emit Markdown instead of aligned tables.
    pub markdown: bool,
    /// Deterministic table output (timings rendered as `-`).
    pub stable_output: bool,
    /// Sweep artifact path, or `None` with `--no-sweep`.
    pub sweep_out: Option<String>,
}

impl Default for RunFlags {
    fn default() -> Self {
        RunFlags {
            quick: false,
            par: 1,
            csv: false,
            markdown: false,
            stable_output: false,
            sweep_out: Some("BENCH_sweep.json".to_string()),
        }
    }
}

impl RunFlags {
    /// Parses the process arguments ([`std::env::args`], program name
    /// included).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (no program name).
    ///
    /// Unknown flags are ignored (individual binaries may add their
    /// own), and a malformed `--par` value falls back to 1.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut flags = RunFlags::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" | "-q" => flags.quick = true,
                "--csv" => flags.csv = true,
                "--markdown" => flags.markdown = true,
                "--stable-output" => flags.stable_output = true,
                "--no-sweep" => flags.sweep_out = None,
                "--par" => {
                    let requested = args.next().and_then(|v| v.parse::<usize>().ok());
                    flags.par = match requested {
                        Some(0) => crate::Executor::available(),
                        Some(n) => n,
                        None => 1,
                    };
                }
                "--sweep-out" => {
                    if let Some(path) = args.next() {
                        flags.sweep_out = Some(path);
                    }
                }
                _ => {}
            }
        }
        flags
    }

    /// Builds the executor this run asked for.
    pub fn executor(&self) -> crate::Executor {
        crate::Executor::new(self.par)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunFlags {
        RunFlags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_serial_full_sweep() {
        let f = parse(&[]);
        assert!(!f.quick);
        assert_eq!(f.par, 1);
        assert_eq!(f.sweep_out.as_deref(), Some("BENCH_sweep.json"));
    }

    #[test]
    fn parses_the_full_set() {
        let f = parse(&[
            "--quick",
            "--par",
            "8",
            "--csv",
            "--stable-output",
            "--sweep-out",
            "out/sweep.json",
        ]);
        assert!(f.quick && f.csv && f.stable_output);
        assert_eq!(f.par, 8);
        assert_eq!(f.sweep_out.as_deref(), Some("out/sweep.json"));
    }

    #[test]
    fn par_zero_means_machine_sized() {
        assert!(parse(&["--par", "0"]).par >= 1);
    }

    #[test]
    fn malformed_par_falls_back_to_serial() {
        assert_eq!(parse(&["--par", "lots"]).par, 1);
        assert_eq!(parse(&["--par"]).par, 1);
    }

    #[test]
    fn no_sweep_disables_artifact() {
        assert_eq!(parse(&["--no-sweep"]).sweep_out, None);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        assert!(parse(&["--frobnicate", "-q"]).quick);
    }
}
