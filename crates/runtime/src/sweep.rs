//! Machine-readable sweep output and the perf-regression gate.
//!
//! Every bench run emits a `BENCH_sweep.json`: one [`SweepCell`] per
//! sweep-grid cell with its wall-clock and the deterministic counters
//! (rounds, messages, blocking fraction). CI's `bench-smoke` job feeds
//! the file to [`compare`] against a committed baseline and fails the
//! build on wall-clock regressions beyond a tolerance.
//!
//! Cells are sorted by coordinates before serialization, so the JSON is
//! structurally identical across worker counts (only the wall-clock
//! values vary run to run — the counters must not).

use serde::{content_get, Content, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The current `BENCH_sweep.json` schema version.
pub const SWEEP_SCHEMA: u64 = 1;

/// One sweep-grid cell: coordinates plus measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// Experiment id (`t1_stability`, `f5_eps_blocking`, ...).
    pub experiment: String,
    /// Instance family (`complete`, `chain`, ...; `-` when the cell
    /// isn't family-specific).
    pub family: String,
    /// Instance size.
    pub n: u64,
    /// Blocking-pair budget ε (0.0 when not applicable).
    pub eps: f64,
    /// The derived cell seed actually used.
    pub seed: u64,
    /// Service shard count the cell was measured against (`0` when the
    /// experiment has no serving-layer dimension). A coordinate, not a
    /// measurement: cells at different shard counts are distinct.
    ///
    /// Omitted from the JSON when `0`, so pre-sharding sweep artifacts
    /// (and the committed perf-gate baseline) parse and regenerate
    /// byte-identically.
    pub shards: u64,
    /// Wall-clock spent computing the cell, in milliseconds. The only
    /// non-deterministic field.
    pub wall_ms: f64,
    /// Effective rounds the run measured (0 when not applicable).
    pub rounds: u64,
    /// Messages delivered (CONGEST cells; 0 otherwise).
    pub messages: u64,
    /// Blocking-pair fraction of the output matching (0.0 when not
    /// applicable).
    pub blocking_fraction: f64,
}

// Hand-written (not derived) so `shards` can be omitted when 0: the
// vendored serde derive has no `default`/`skip_serializing_if`, and the
// column must not perturb existing sweep artifacts.
impl Serialize for SweepCell {
    fn to_content(&self) -> Content {
        let mut m: Vec<(String, Content)> = vec![
            ("experiment".to_string(), self.experiment.to_content()),
            ("family".to_string(), self.family.to_content()),
            ("n".to_string(), self.n.to_content()),
            ("eps".to_string(), self.eps.to_content()),
            ("seed".to_string(), self.seed.to_content()),
        ];
        if self.shards > 0 {
            m.push(("shards".to_string(), self.shards.to_content()));
        }
        m.push(("wall_ms".to_string(), self.wall_ms.to_content()));
        m.push(("rounds".to_string(), self.rounds.to_content()));
        m.push(("messages".to_string(), self.messages.to_content()));
        m.push((
            "blocking_fraction".to_string(),
            self.blocking_fraction.to_content(),
        ));
        Content::Map(m)
    }
}

impl Deserialize for SweepCell {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for SweepCell"))?;
        let field = |name: &str| {
            content_get(map, name)
                .ok_or_else(|| serde::Error::custom(format!("missing field `{name}` in SweepCell")))
        };
        Ok(SweepCell {
            experiment: String::from_content(field("experiment")?)?,
            family: String::from_content(field("family")?)?,
            n: u64::from_content(field("n")?)?,
            eps: f64::from_content(field("eps")?)?,
            seed: u64::from_content(field("seed")?)?,
            shards: match content_get(map, "shards") {
                Some(c) => u64::from_content(c)?,
                None => 0,
            },
            wall_ms: f64::from_content(field("wall_ms")?)?,
            rounds: u64::from_content(field("rounds")?)?,
            messages: u64::from_content(field("messages")?)?,
            blocking_fraction: f64::from_content(field("blocking_fraction")?)?,
        })
    }
}

impl SweepCell {
    /// Creates a cell with all measurements zeroed; callers fill in what
    /// their experiment actually measures.
    pub fn new(experiment: &str, family: &str, n: usize, eps: f64, seed: u64) -> Self {
        SweepCell {
            experiment: experiment.to_string(),
            family: family.to_string(),
            n: n as u64,
            eps,
            seed,
            shards: 0,
            wall_ms: 0.0,
            rounds: 0,
            messages: 0,
            blocking_fraction: 0.0,
        }
    }

    /// The cell's sort/merge key (everything but the measurements).
    fn key(&self) -> (String, String, u64, u64, u64, u64) {
        (
            self.experiment.clone(),
            self.family.clone(),
            self.n,
            self.eps.to_bits(),
            self.seed,
            self.shards,
        )
    }
}

/// A full sweep run: metadata plus its cells.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Schema version ([`SWEEP_SCHEMA`]).
    pub schema: u64,
    /// Worker count the sweep ran with.
    pub par: u64,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Total wall-clock of the whole sweep, in milliseconds.
    pub total_wall_ms: f64,
    /// Per-cell records, sorted by coordinates.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Creates an empty report.
    pub fn new(par: usize, quick: bool) -> Self {
        SweepReport {
            schema: SWEEP_SCHEMA,
            par: par as u64,
            quick,
            total_wall_ms: 0.0,
            cells: Vec::new(),
        }
    }

    /// Appends cells and re-sorts by coordinates (worker scheduling must
    /// not leak into the artifact).
    pub fn extend(&mut self, cells: Vec<SweepCell>) {
        self.cells.extend(cells);
        self.cells.sort_by_key(SweepCell::key);
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep report serializes")
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message on malformed input or
    /// an unknown schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let report: SweepReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if report.schema != SWEEP_SCHEMA {
            return Err(format!(
                "unsupported sweep schema {} (expected {})",
                report.schema, SWEEP_SCHEMA
            ));
        }
        Ok(report)
    }

    /// Total wall-clock per experiment, in milliseconds.
    pub fn per_experiment_ms(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for c in &self.cells {
            *out.entry(c.experiment.clone()).or_insert(0.0) += c.wall_ms;
        }
        out
    }
}

/// One gate finding: an experiment whose wall-clock regressed, or whose
/// cells disappeared relative to the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Experiment id.
    pub experiment: String,
    /// Baseline wall-clock (ms).
    pub baseline_ms: f64,
    /// Current wall-clock (ms); 0.0 for a missing experiment.
    pub current_ms: f64,
    /// `current/baseline - 1`; `f64::INFINITY` for a missing experiment.
    pub ratio: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.current_ms == 0.0 {
            write!(
                f,
                "{}: missing from current run (baseline {:.1} ms)",
                self.experiment, self.baseline_ms
            )
        } else {
            write!(
                f,
                "{}: {:.1} ms -> {:.1} ms (+{:.0}%)",
                self.experiment,
                self.baseline_ms,
                self.current_ms,
                self.ratio * 100.0
            )
        }
    }
}

/// Minimum per-experiment baseline wall-clock (ms) for the gate to judge
/// it: sub-millisecond experiments are all timer noise.
pub const GATE_FLOOR_MS: f64 = 5.0;

/// Compares a run against a baseline: any experiment whose total
/// wall-clock exceeds `baseline * (1 + tolerance)` — or which vanished —
/// is reported. Experiments faster than [`GATE_FLOOR_MS`] in the
/// baseline are skipped, as is any experiment new in `current`.
pub fn compare(baseline: &SweepReport, current: &SweepReport, tolerance: f64) -> Vec<Regression> {
    let base = baseline.per_experiment_ms();
    let cur = current.per_experiment_ms();
    let mut out = Vec::new();
    for (exp, &base_ms) in &base {
        if base_ms < GATE_FLOOR_MS {
            continue;
        }
        match cur.get(exp) {
            None => out.push(Regression {
                experiment: exp.clone(),
                baseline_ms: base_ms,
                current_ms: 0.0,
                ratio: f64::INFINITY,
            }),
            Some(&cur_ms) if cur_ms > base_ms * (1.0 + tolerance) => out.push(Regression {
                experiment: exp.clone(),
                baseline_ms: base_ms,
                current_ms: cur_ms,
                ratio: cur_ms / base_ms - 1.0,
            }),
            Some(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(exp: &str, family: &str, n: usize, ms: f64) -> SweepCell {
        let mut c = SweepCell::new(exp, family, n, 1.0, 7);
        c.wall_ms = ms;
        c
    }

    #[test]
    fn json_round_trip() {
        let mut r = SweepReport::new(4, true);
        r.extend(vec![
            cell("t1", "complete", 32, 1.5),
            cell("t1", "chain", 32, 0.5),
        ]);
        r.total_wall_ms = 2.0;
        let back = SweepReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn cells_sort_by_coordinates_not_arrival() {
        let mut a = SweepReport::new(1, true);
        a.extend(vec![cell("t2", "z", 64, 1.0), cell("t1", "a", 32, 1.0)]);
        let mut b = SweepReport::new(8, true);
        b.extend(vec![cell("t1", "a", 32, 9.0), cell("t2", "z", 64, 9.0)]);
        let keys_a: Vec<_> = a.cells.iter().map(|c| c.experiment.clone()).collect();
        let keys_b: Vec<_> = b.cells.iter().map(|c| c.experiment.clone()).collect();
        assert_eq!(keys_a, keys_b);
        assert_eq!(keys_a, vec!["t1", "t2"]);
    }

    #[test]
    fn shards_column_is_omitted_at_zero_and_round_trips_otherwise() {
        let plain = cell("t1", "complete", 32, 1.0);
        let json = serde_json::to_string(&plain).unwrap();
        assert!(!json.contains("shards"), "{json}");
        let back: SweepCell = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plain);

        let mut sharded = plain.clone();
        sharded.shards = 4;
        let json = serde_json::to_string(&sharded).unwrap();
        assert!(json.contains("\"shards\":4"), "{json}");
        let back: SweepCell = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sharded);
    }

    #[test]
    fn cells_differing_only_in_shards_sort_deterministically() {
        let mut r = SweepReport::new(1, false);
        let mut s4 = cell("loadgen", "regular", 32, 2.0);
        s4.shards = 4;
        let mut s1 = cell("loadgen", "regular", 32, 1.0);
        s1.shards = 1;
        r.extend(vec![s4, s1]);
        let shards: Vec<u64> = r.cells.iter().map(|c| c.shards).collect();
        assert_eq!(shards, vec![1, 4]);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut r = SweepReport::new(1, false);
        r.schema = 99;
        assert!(SweepReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("schema 99"));
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let mut base = SweepReport::new(1, true);
        base.extend(vec![cell("t1", "-", 32, 100.0)]);
        let mut cur = SweepReport::new(4, true);
        cur.extend(vec![cell("t1", "-", 32, 120.0)]);
        assert!(compare(&base, &cur, 0.25).is_empty());
    }

    #[test]
    fn gate_flags_regression_and_missing() {
        let mut base = SweepReport::new(1, true);
        base.extend(vec![cell("t1", "-", 32, 100.0), cell("t2", "-", 32, 50.0)]);
        let mut cur = SweepReport::new(1, true);
        cur.extend(vec![cell("t1", "-", 32, 140.0)]);
        let regs = compare(&base, &cur, 0.25);
        assert_eq!(regs.len(), 2);
        assert!(regs[0].to_string().contains("+40%"), "{}", regs[0]);
        assert!(regs[1].to_string().contains("missing"), "{}", regs[1]);
    }

    #[test]
    fn gate_ignores_noise_floor_and_new_experiments() {
        let mut base = SweepReport::new(1, true);
        base.extend(vec![cell("tiny", "-", 8, 0.2)]);
        let mut cur = SweepReport::new(1, true);
        cur.extend(vec![cell("tiny", "-", 8, 4.0), cell("new", "-", 8, 900.0)]);
        assert!(compare(&base, &cur, 0.25).is_empty());
    }

    #[test]
    fn per_experiment_totals_aggregate_cells() {
        let mut r = SweepReport::new(1, false);
        r.extend(vec![
            cell("t1", "a", 32, 1.0),
            cell("t1", "b", 32, 2.0),
            cell("t2", "a", 32, 4.0),
        ]);
        let totals = r.per_experiment_ms();
        assert_eq!(totals["t1"], 3.0);
        assert_eq!(totals["t2"], 4.0);
    }
}
