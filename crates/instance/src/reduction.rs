//! Many-to-one (hospitals/residents) reduction to one-to-one.
//!
//! The stable marriage machinery extends to capacitated markets by the
//! classical *cloning* reduction (Gusfield & Irving): a hospital with
//! capacity `c` becomes `c` identical slots; every resident's ranking
//! expands each hospital into its consecutive slots. Stable matchings of
//! the cloned one-to-one instance correspond exactly to stable
//! assignments of the original hospitals/residents instance — so `ASM`
//! produces *almost stable* capacitated assignments too.

use crate::{Instance, InstanceBuilder, InstanceError};
use serde::{Deserialize, Serialize};

/// A hospitals/residents problem: residents rank hospitals, hospitals rank
/// residents and have capacities.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HospitalResidents {
    /// `resident_prefs[r]` ranks hospital indices, most preferred first.
    pub resident_prefs: Vec<Vec<usize>>,
    /// `hospital_prefs[h]` ranks resident indices, most preferred first.
    pub hospital_prefs: Vec<Vec<usize>>,
    /// `capacities[h]` is the number of residents hospital `h` can take.
    pub capacities: Vec<usize>,
}

/// Mapping between the cloned instance's women (slots) and the original
/// hospitals.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotMap {
    slot_to_hospital: Vec<usize>,
    hospital_first_slot: Vec<usize>,
}

impl SlotMap {
    /// The hospital owning slot (woman side-index) `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn hospital_of(&self, slot: usize) -> usize {
        self.slot_to_hospital[slot]
    }

    /// The woman side-indices of `hospital`'s slots.
    ///
    /// # Panics
    ///
    /// Panics if `hospital` is out of range.
    pub fn slots_of(&self, hospital: usize) -> std::ops::Range<usize> {
        let start = self.hospital_first_slot[hospital];
        let end = self
            .hospital_first_slot
            .get(hospital + 1)
            .copied()
            .unwrap_or(self.slot_to_hospital.len());
        start..end
    }

    /// Total number of slots.
    pub fn num_slots(&self) -> usize {
        self.slot_to_hospital.len()
    }
}

impl HospitalResidents {
    /// Produces the cloned one-to-one [`Instance`] (women = slots, men =
    /// residents) plus the slot↔hospital mapping.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if preferences are asymmetric, contain
    /// duplicates, or reference out-of-range indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use asm_instance::HospitalResidents;
    ///
    /// // Two residents, one hospital with two beds.
    /// let hr = HospitalResidents {
    ///     resident_prefs: vec![vec![0], vec![0]],
    ///     hospital_prefs: vec![vec![1, 0]],
    ///     capacities: vec![2],
    /// };
    /// let (inst, slots) = hr.to_instance()?;
    /// assert_eq!(inst.ids().num_women(), 2); // two slots
    /// assert_eq!(inst.ids().num_men(), 2);
    /// assert_eq!(slots.hospital_of(1), 0);
    /// # Ok::<(), asm_instance::InstanceError>(())
    /// ```
    pub fn to_instance(&self) -> Result<(Instance, SlotMap), InstanceError> {
        let num_residents = self.resident_prefs.len();
        let num_hospitals = self.hospital_prefs.len();
        assert_eq!(
            self.capacities.len(),
            num_hospitals,
            "one capacity per hospital"
        );

        let mut slot_to_hospital = Vec::new();
        let mut hospital_first_slot = Vec::with_capacity(num_hospitals);
        for (h, &c) in self.capacities.iter().enumerate() {
            hospital_first_slot.push(slot_to_hospital.len());
            slot_to_hospital.extend(std::iter::repeat_n(h, c));
        }
        let map = SlotMap {
            slot_to_hospital,
            hospital_first_slot,
        };

        let mut b = InstanceBuilder::new(map.num_slots(), num_residents);
        // Each slot inherits its hospital's resident ranking.
        for slot in 0..map.num_slots() {
            let h = map.hospital_of(slot);
            b = b.woman(slot, self.hospital_prefs[h].iter().copied());
        }
        // Each resident expands hospitals into their slots, best slot
        // first (slot order within a hospital is arbitrary but fixed).
        for (r, prefs) in self.resident_prefs.iter().enumerate() {
            let expanded: Vec<usize> = prefs
                .iter()
                .flat_map(|&h| {
                    assert!(h < num_hospitals, "hospital index {h} out of range");
                    map.slots_of(h)
                })
                .collect();
            b = b.man(r, expanded);
        }
        let inst = b.build()?;
        Ok((inst, map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HospitalResidents {
        // 4 residents, 2 hospitals (capacities 2 and 1).
        HospitalResidents {
            resident_prefs: vec![vec![0, 1], vec![0], vec![1, 0], vec![0, 1]],
            hospital_prefs: vec![vec![0, 1, 2, 3], vec![2, 0, 3]],
            capacities: vec![2, 1],
        }
    }

    #[test]
    fn clone_counts() {
        let (inst, map) = sample().to_instance().unwrap();
        assert_eq!(map.num_slots(), 3);
        assert_eq!(inst.ids().num_women(), 3);
        assert_eq!(inst.ids().num_men(), 4);
        assert_eq!(map.slots_of(0), 0..2);
        assert_eq!(map.slots_of(1), 2..3);
        assert_eq!(map.hospital_of(2), 1);
    }

    #[test]
    fn slots_share_hospital_rankings() {
        let (inst, map) = sample().to_instance().unwrap();
        let s0 = inst.prefs(inst.ids().woman(0)).ranked().to_vec();
        let s1 = inst.prefs(inst.ids().woman(1)).ranked().to_vec();
        assert_eq!(s0, s1, "both slots of hospital 0 rank identically");
        assert_eq!(map.hospital_of(0), map.hospital_of(1));
    }

    #[test]
    fn residents_expand_in_slot_order() {
        let (inst, _) = sample().to_instance().unwrap();
        let r0 = inst.prefs(inst.ids().man(0)).ranked();
        let ids = inst.ids();
        assert_eq!(r0, &[ids.woman(0), ids.woman(1), ids.woman(2)]);
    }

    #[test]
    fn every_slot_is_rankable() {
        // Gale–Shapley on the cloned instance lives in asm-matching (see
        // the residency_match example); structurally, every slot of a
        // ranked hospital must carry that hospital's nonempty list.
        let (inst, map) = sample().to_instance().unwrap();
        for s in 0..map.num_slots() {
            assert!(inst.degree(inst.ids().woman(s)) > 0);
        }
    }

    #[test]
    fn asymmetric_hr_rejected() {
        let hr = HospitalResidents {
            resident_prefs: vec![vec![0]],
            hospital_prefs: vec![vec![]], // hospital doesn't rank resident 0
            capacities: vec![1],
        };
        assert!(hr.to_instance().is_err());
    }

    #[test]
    #[should_panic(expected = "one capacity per hospital")]
    fn capacity_count_mismatch_panics() {
        let hr = HospitalResidents {
            resident_prefs: vec![],
            hospital_prefs: vec![vec![]],
            capacities: vec![],
        };
        let _ = hr.to_instance();
    }

    #[test]
    fn zero_capacity_hospital_has_no_slots() {
        let hr = HospitalResidents {
            resident_prefs: vec![vec![1]],
            hospital_prefs: vec![vec![], vec![0]],
            capacities: vec![0, 1],
        };
        let (inst, map) = hr.to_instance().unwrap();
        assert_eq!(map.num_slots(), 1);
        assert_eq!(map.slots_of(0), 0..0);
        assert_eq!(inst.ids().num_women(), 1);
    }
}
