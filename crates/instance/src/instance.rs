//! The stable-marriage problem instance.

use crate::{IdSpace, InstanceError, PreferenceList, Rank};
use asm_congest::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// A complete problem instance: two sides of players and their symmetric,
/// possibly incomplete preference lists (Section 2.1 of the paper).
///
/// Invariants, enforced at construction and deserialization:
///
/// * every entry of a preference list is a valid node of the opposite
///   gender, listed at most once;
/// * preferences are **symmetric**: `m` appears on `P_w` iff `w` appears on
///   `P_m` (so the preference structure *is* the communication graph `G`).
///
/// Use [`crate::InstanceBuilder`] or a generator from [`crate::generators`]
/// to construct instances.
///
/// # Examples
///
/// ```
/// use asm_instance::{generators, Instance};
///
/// let inst = generators::complete(4, 42);
/// assert_eq!(inst.ids().num_players(), 8);
/// assert_eq!(inst.num_edges(), 16); // complete bipartite
/// assert!(inst.is_complete());
/// let m0 = inst.ids().man(0);
/// assert_eq!(inst.prefs(m0).degree(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawInstance", into = "RawInstance")]
pub struct Instance {
    ids: IdSpace,
    prefs: Vec<PreferenceList>,
    num_edges: usize,
}

impl Instance {
    /// Builds an instance from per-player preference lists, indexed by node
    /// id (women `0..num_women`, then men).
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] describing the first violated invariant.
    pub fn from_prefs(ids: IdSpace, prefs: Vec<PreferenceList>) -> Result<Self, InstanceError> {
        if prefs.len() != ids.num_players() {
            return Err(InstanceError::WrongListCount {
                got: prefs.len(),
                expected: ids.num_players(),
            });
        }
        // Range and gender checks. Duplicates are structurally impossible in
        // a `PreferenceList` (its constructor rejects them).
        for v in ids.players() {
            for &u in prefs[v.index()].ranked() {
                if u.index() >= ids.num_players() {
                    return Err(InstanceError::PartnerOutOfRange {
                        player: v,
                        partner: u,
                    });
                }
                if ids.gender(u) == ids.gender(v) {
                    return Err(InstanceError::SameGenderPartner {
                        player: v,
                        partner: u,
                    });
                }
            }
        }
        // Symmetry.
        for v in ids.players() {
            for &u in prefs[v.index()].ranked() {
                if !prefs[u.index()].contains(v) {
                    return Err(InstanceError::AsymmetricPreference {
                        player: v,
                        partner: u,
                    });
                }
            }
        }
        let num_edges = ids.men().map(|m| prefs[m.index()].degree()).sum::<usize>();
        Ok(Instance {
            ids,
            prefs,
            num_edges,
        })
    }

    /// The id space mapping `(gender, index)` pairs to node ids.
    pub fn ids(&self) -> &IdSpace {
        &self.ids
    }

    /// The preference list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn prefs(&self, v: NodeId) -> &PreferenceList {
        &self.prefs[v.index()]
    }

    /// Degree of `v` in the communication graph (= length of its list).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.prefs[v.index()].degree()
    }

    /// Rank of `u` on `v`'s list (`P_v(u)`), or `None` if unacceptable.
    pub fn rank(&self, v: NodeId, u: NodeId) -> Option<Rank> {
        self.prefs[v.index()].rank_of(u)
    }

    /// Number of edges `|E|` of the communication graph — the denominator
    /// of Definition 1's instability measure.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether every player ranks every member of the opposite sex.
    pub fn is_complete(&self) -> bool {
        self.ids
            .women()
            .all(|w| self.degree(w) == self.ids.num_men())
            && self
                .ids
                .men()
                .all(|m| self.degree(m) == self.ids.num_women())
    }

    /// Builds the CONGEST communication graph `G = (V, E)` of Section 2.1.
    pub fn topology(&self) -> Topology {
        let edges = self.ids.men().flat_map(|m| {
            self.prefs[m.index()]
                .ranked()
                .iter()
                .map(move |&w| (m.raw(), w.raw()))
        });
        Topology::from_edges(self.ids.num_players(), edges)
            .expect("validated instance produces a valid topology")
    }

    /// Minimum and maximum degree over the men, or `None` if there are no
    /// men. Used for the α-almost-regularity measure of Section 5.2.
    pub fn men_degree_bounds(&self) -> Option<(usize, usize)> {
        let mut it = self.ids.men().map(|m| self.degree(m));
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for d in it {
            lo = lo.min(d);
            hi = hi.max(d);
        }
        Some((lo, hi))
    }

    /// The α-almost-regularity of the men's preferences: `max_m deg m /
    /// min_m deg m` (Section 5.2). Returns `f64::INFINITY` if some man has
    /// an empty list and another does not, and 1.0 for an instance with no
    /// men or all-empty lists.
    pub fn alpha(&self) -> f64 {
        match self.men_degree_bounds() {
            None | Some((0, 0)) => 1.0,
            Some((0, _)) => f64::INFINITY,
            Some((lo, hi)) => hi as f64 / lo as f64,
        }
    }

    /// Iterates over all edges as `(man, woman)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.ids
            .men()
            .flat_map(move |m| self.prefs[m.index()].ranked().iter().map(move |&w| (m, w)))
    }

    /// Produces the gender-swapped instance: every man becomes a woman and
    /// vice versa, preserving all rankings.
    ///
    /// The node-id convention (women first) means ids are *relabeled*:
    /// the `j`-th man becomes the `j`-th woman of the new instance and the
    /// `i`-th woman becomes its `i`-th man. Use [`Instance::swap_node`] to
    /// translate ids between the two instances. Swapping lets any
    /// man-proposing algorithm run in its woman-proposing form (e.g. the
    /// woman-optimal Gale–Shapley).
    ///
    /// # Examples
    ///
    /// ```
    /// use asm_instance::generators;
    ///
    /// let inst = generators::erdos_renyi(5, 7, 0.5, 1);
    /// let swapped = inst.swap_genders();
    /// assert_eq!(swapped.ids().num_women(), 7);
    /// assert_eq!(swapped.ids().num_men(), 5);
    /// assert_eq!(swapped.num_edges(), inst.num_edges());
    /// assert_eq!(swapped.swap_genders(), inst); // involution
    /// ```
    pub fn swap_genders(&self) -> Instance {
        let ids = self.ids;
        let new_ids = IdSpace::new(ids.num_men(), ids.num_women());
        let mut prefs: Vec<PreferenceList> = Vec::with_capacity(ids.num_players());
        // New women = old men (in order), then new men = old women.
        for m in ids.men() {
            prefs.push(
                self.prefs[m.index()]
                    .ranked()
                    .iter()
                    .map(|&w| self.swap_node(w))
                    .collect(),
            );
        }
        for w in ids.women() {
            prefs.push(
                self.prefs[w.index()]
                    .ranked()
                    .iter()
                    .map(|&m| self.swap_node(m))
                    .collect(),
            );
        }
        Instance::from_prefs(new_ids, prefs).expect("swapping preserves validity")
    }

    /// Translates a node id of this instance into the corresponding id in
    /// [`Instance::swap_genders`]'s output. (Applying the swapped
    /// instance's `swap_node` undoes the translation.)
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn swap_node(&self, v: NodeId) -> NodeId {
        let ids = self.ids;
        if ids.is_woman(v) {
            // i-th woman -> i-th man of the swapped instance.
            NodeId::new((ids.num_men() + v.index()) as u32)
        } else {
            // j-th man -> j-th woman of the swapped instance.
            NodeId::new(ids.side_index(v) as u32)
        }
    }
}

/// Serde-facing representation (side-indexed raw lists); conversion back to
/// [`Instance`] revalidates all invariants.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RawInstance {
    /// Number of women.
    pub num_women: usize,
    /// Number of men.
    pub num_men: usize,
    /// Per-player ranked partner ids, node-id order (women first).
    pub prefs: Vec<Vec<u32>>,
}

impl From<Instance> for RawInstance {
    fn from(inst: Instance) -> Self {
        RawInstance {
            num_women: inst.ids.num_women(),
            num_men: inst.ids.num_men(),
            prefs: inst
                .prefs
                .iter()
                .map(|p| p.ranked().iter().map(|id| id.raw()).collect())
                .collect(),
        }
    }
}

impl TryFrom<RawInstance> for Instance {
    type Error = InstanceError;

    fn try_from(raw: RawInstance) -> Result<Self, Self::Error> {
        let ids = IdSpace::new(raw.num_women, raw.num_men);
        let mut prefs: Vec<PreferenceList> = Vec::with_capacity(raw.prefs.len());
        for list in raw.prefs {
            // Duplicates panic in PreferenceList::new; pre-screen to return
            // an error instead.
            let mut sorted: Vec<u32> = list.clone();
            sorted.sort_unstable();
            if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
                return Err(InstanceError::DuplicatePartner {
                    player: NodeId::new(prefs.len() as u32),
                    partner: NodeId::new(w[0]),
                });
            }
            let mut p = PreferenceList::new(list.into_iter().map(NodeId::new).collect());
            p.restore_after_deserialize();
            prefs.push(p);
        }
        Instance::from_prefs(ids, prefs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstanceBuilder;

    fn tiny() -> Instance {
        // 2 women, 2 men, complete.
        InstanceBuilder::new(2, 2)
            .woman(0, [0, 1])
            .woman(1, [1, 0])
            .man(0, [0, 1])
            .man(1, [1, 0])
            .build()
            .unwrap()
    }

    #[test]
    fn edge_count_and_degrees() {
        let inst = tiny();
        assert_eq!(inst.num_edges(), 4);
        assert!(inst.is_complete());
        for v in inst.ids().players() {
            assert_eq!(inst.degree(v), 2);
        }
    }

    #[test]
    fn rank_lookup() {
        let inst = tiny();
        let (w0, w1) = (inst.ids().woman(0), inst.ids().woman(1));
        let m0 = inst.ids().man(0);
        assert_eq!(inst.rank(m0, w0), Some(1));
        assert_eq!(inst.rank(m0, w1), Some(2));
        assert_eq!(inst.rank(w1, m0), Some(2));
    }

    #[test]
    fn topology_matches_lists() {
        let inst = tiny();
        let topo = inst.topology();
        assert_eq!(topo.num_edges(), 4);
        assert!(topo.has_edge(inst.ids().man(0), inst.ids().woman(1)));
    }

    #[test]
    fn symmetry_violation_detected() {
        let err = InstanceBuilder::new(1, 1).man(0, [0]).build().unwrap_err();
        assert!(matches!(err, InstanceError::AsymmetricPreference { .. }));
    }

    #[test]
    fn alpha_of_regular_is_one() {
        let inst = tiny();
        assert_eq!(inst.alpha(), 1.0);
        assert_eq!(inst.men_degree_bounds(), Some((2, 2)));
    }

    #[test]
    fn alpha_with_isolated_man_is_infinite() {
        let inst = InstanceBuilder::new(1, 2)
            .woman(0, [0])
            .man(0, [0])
            .build()
            .unwrap();
        assert_eq!(inst.alpha(), f64::INFINITY);
    }

    #[test]
    fn alpha_of_empty_instance_is_one() {
        let inst = InstanceBuilder::new(0, 0).build().unwrap();
        assert_eq!(inst.alpha(), 1.0);
        assert_eq!(inst.men_degree_bounds(), None);
    }

    #[test]
    fn edges_iterates_man_woman_pairs() {
        let inst = tiny();
        let edges: Vec<_> = inst.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges
            .iter()
            .all(|&(m, w)| inst.ids().is_man(m) && inst.ids().is_woman(w)));
    }

    #[test]
    fn swap_genders_round_trips_ranks() {
        let inst = tiny();
        let sw = inst.swap_genders();
        for (m, w) in inst.edges() {
            let (m2, w2) = (inst.swap_node(m), inst.swap_node(w));
            // m became a woman, w became a man; ranks are preserved.
            assert_eq!(inst.rank(m, w), sw.rank(m2, w2));
            assert_eq!(inst.rank(w, m), sw.rank(w2, m2));
        }
        assert_eq!(sw.swap_genders(), inst);
    }

    #[test]
    fn swap_node_maps_sides() {
        let inst = InstanceBuilder::new(2, 3).build().unwrap();
        let ids = inst.ids();
        // woman 1 (id 1) -> man 1 of a (3,2) instance => id 3 + 1 = 4.
        assert_eq!(inst.swap_node(ids.woman(1)).index(), 4);
        // man 2 (id 4) -> woman 2 => id 2.
        assert_eq!(inst.swap_node(ids.man(2)).index(), 2);
    }

    #[test]
    fn serde_round_trip_preserves_instance() {
        let inst = tiny();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
        // Rank index must survive the round trip.
        let m0 = back.ids().man(0);
        assert_eq!(back.rank(m0, back.ids().woman(1)), Some(2));
    }

    #[test]
    fn deserialize_rejects_asymmetric() {
        let raw = RawInstance {
            num_women: 1,
            num_men: 1,
            prefs: vec![vec![], vec![0]],
        };
        assert!(Instance::try_from(raw).is_err());
    }

    #[test]
    fn deserialize_rejects_duplicates_without_panicking() {
        let raw = RawInstance {
            num_women: 1,
            num_men: 1,
            prefs: vec![vec![1, 1], vec![0]],
        };
        assert!(matches!(
            Instance::try_from(raw),
            Err(InstanceError::DuplicatePartner { .. })
        ));
    }
}
