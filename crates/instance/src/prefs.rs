//! Preference lists and rank lookup.

use asm_congest::NodeId;
use serde::{Deserialize, Serialize};

/// A player's rank of an acceptable partner.
///
/// Ranks are 1-based as in the paper: `rank == 1` is the most favored
/// partner. Smaller is better.
pub type Rank = u32;

/// One player's preference list: a strict ranking of a subset of the
/// opposite sex.
///
/// Stores both the ranked order (for iteration, best first) and a sorted
/// index (for `O(log deg)` rank lookup).
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_instance::PreferenceList;
///
/// let prefs = PreferenceList::new(vec![NodeId::new(5), NodeId::new(3), NodeId::new(9)]);
/// assert_eq!(prefs.degree(), 3);
/// assert_eq!(prefs.rank_of(NodeId::new(3)), Some(2));
/// assert_eq!(prefs.rank_of(NodeId::new(4)), None);
/// assert_eq!(prefs.at_rank(1), Some(NodeId::new(5)));
/// assert!(prefs.prefers(NodeId::new(5), NodeId::new(9)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreferenceList {
    /// Partners in preference order, most favored first.
    ranked: Vec<NodeId>,
    /// `(partner, rank)` pairs sorted by partner id, for rank lookup.
    #[serde(skip)]
    index: Vec<(NodeId, Rank)>,
}

impl PreferenceList {
    /// Creates a preference list from partners in order, most favored first.
    ///
    /// # Panics
    ///
    /// Panics if `ranked` contains a duplicate (preferences are strict
    /// orders). Use [`crate::InstanceBuilder`] for error-returning
    /// validation of whole instances.
    pub fn new(ranked: Vec<NodeId>) -> Self {
        let mut list = PreferenceList {
            ranked,
            index: Vec::new(),
        };
        list.rebuild_index();
        list
    }

    /// Creates an empty preference list (an isolated player).
    pub fn empty() -> Self {
        PreferenceList::new(Vec::new())
    }

    pub(crate) fn rebuild_index(&mut self) {
        self.index = self
            .ranked
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, (i + 1) as Rank))
            .collect();
        self.index.sort_unstable_by_key(|&(u, _)| u);
        assert!(
            self.index.windows(2).all(|w| w[0].0 != w[1].0),
            "preference list contains a duplicate entry"
        );
    }

    /// The number of acceptable partners (`deg v` in the paper).
    pub fn degree(&self) -> usize {
        self.ranked.len()
    }

    /// Whether the player finds no one acceptable.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// Partners in preference order, most favored first.
    pub fn ranked(&self) -> &[NodeId] {
        &self.ranked
    }

    /// The rank of `u` (`P_v(u)` in the paper), or `None` if unacceptable.
    pub fn rank_of(&self, u: NodeId) -> Option<Rank> {
        self.index
            .binary_search_by_key(&u, |&(id, _)| id)
            .ok()
            .map(|i| self.index[i].1)
    }

    /// Whether `u` appears on this list.
    pub fn contains(&self, u: NodeId) -> bool {
        self.rank_of(u).is_some()
    }

    /// The partner at 1-based `rank`, or `None` if out of range.
    pub fn at_rank(&self, rank: Rank) -> Option<NodeId> {
        if rank == 0 {
            return None;
        }
        self.ranked.get(rank as usize - 1).copied()
    }

    /// Whether this player strictly prefers `a` to `b` (`a ≻ b`).
    ///
    /// Partners absent from the list are treated as rank `∞`; two absent
    /// partners compare as not-preferred.
    pub fn prefers(&self, a: NodeId, b: NodeId) -> bool {
        match (self.rank_of(a), self.rank_of(b)) {
            (Some(ra), Some(rb)) => ra < rb,
            (Some(_), None) => true,
            _ => false,
        }
    }
}

impl FromIterator<NodeId> for PreferenceList {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        PreferenceList::new(iter.into_iter().collect())
    }
}

// The sorted index is skipped by serde; rebuild it after deserialization.
// (Done centrally by `Instance`'s deserialization validation.)
impl PreferenceList {
    pub(crate) fn restore_after_deserialize(&mut self) {
        self.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId::new(x)).collect()
    }

    #[test]
    fn ranks_are_one_based_in_order() {
        let p = PreferenceList::new(ids(&[10, 20, 30]));
        assert_eq!(p.rank_of(NodeId::new(10)), Some(1));
        assert_eq!(p.rank_of(NodeId::new(20)), Some(2));
        assert_eq!(p.rank_of(NodeId::new(30)), Some(3));
        assert_eq!(p.at_rank(0), None);
        assert_eq!(p.at_rank(2), Some(NodeId::new(20)));
        assert_eq!(p.at_rank(4), None);
    }

    #[test]
    fn prefers_handles_missing_partners() {
        let p = PreferenceList::new(ids(&[1, 2]));
        assert!(p.prefers(NodeId::new(1), NodeId::new(2)));
        assert!(!p.prefers(NodeId::new(2), NodeId::new(1)));
        assert!(p.prefers(NodeId::new(2), NodeId::new(99)));
        assert!(!p.prefers(NodeId::new(99), NodeId::new(1)));
        assert!(!p.prefers(NodeId::new(98), NodeId::new(99)));
    }

    #[test]
    fn empty_list() {
        let p = PreferenceList::empty();
        assert!(p.is_empty());
        assert_eq!(p.degree(), 0);
        assert_eq!(p.rank_of(NodeId::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_entry_panics() {
        PreferenceList::new(ids(&[1, 2, 1]));
    }

    #[test]
    fn from_iterator() {
        let p: PreferenceList = ids(&[4, 2]).into_iter().collect();
        assert_eq!(p.ranked(), ids(&[4, 2]).as_slice());
    }

    #[test]
    fn contains_matches_rank_of() {
        let p = PreferenceList::new(ids(&[7]));
        assert!(p.contains(NodeId::new(7)));
        assert!(!p.contains(NodeId::new(8)));
    }
}
