//! Structural summaries of instances.

use crate::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Degree and regularity summary of an [`Instance`], for experiment
/// reporting.
///
/// # Examples
///
/// ```
/// use asm_instance::{generators, InstanceMetrics};
///
/// let inst = generators::regular(10, 4, 1);
/// let m = InstanceMetrics::measure(&inst);
/// assert_eq!(m.num_edges, 40);
/// assert_eq!(m.men_min_degree, 4);
/// assert_eq!(m.men_max_degree, 4);
/// assert_eq!(m.alpha, 1.0);
/// assert_eq!(m.mean_degree, 4.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstanceMetrics {
    /// Number of women.
    pub num_women: usize,
    /// Number of men.
    pub num_men: usize,
    /// `|E|`, the number of mutually-acceptable pairs.
    pub num_edges: usize,
    /// Smallest degree among men.
    pub men_min_degree: usize,
    /// Largest degree among men.
    pub men_max_degree: usize,
    /// Largest degree among women.
    pub women_max_degree: usize,
    /// Mean degree over all players (0 for an empty instance).
    pub mean_degree: f64,
    /// The α-almost-regularity of the men (Section 5.2).
    pub alpha: f64,
    /// Number of players with an empty preference list.
    pub isolated_players: usize,
}

impl InstanceMetrics {
    /// Measures `inst`.
    pub fn measure(inst: &Instance) -> Self {
        let ids = inst.ids();
        let (men_min, men_max) = inst.men_degree_bounds().unwrap_or((0, 0));
        let women_max = ids.women().map(|w| inst.degree(w)).max().unwrap_or(0);
        let players = ids.num_players();
        let mean = if players == 0 {
            0.0
        } else {
            2.0 * inst.num_edges() as f64 / players as f64
        };
        InstanceMetrics {
            num_women: ids.num_women(),
            num_men: ids.num_men(),
            num_edges: inst.num_edges(),
            men_min_degree: men_min,
            men_max_degree: men_max,
            women_max_degree: women_max,
            mean_degree: mean,
            alpha: inst.alpha(),
            isolated_players: ids.players().filter(|&v| inst.degree(v) == 0).count(),
        }
    }
}

impl fmt::Display for InstanceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}+{} players, |E|={}, men deg [{}, {}], alpha={:.2}",
            self.num_women,
            self.num_men,
            self.num_edges,
            self.men_min_degree,
            self.men_max_degree,
            self.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn counts_isolated_players() {
        let inst = generators::erdos_renyi(30, 30, 0.02, 3);
        let m = InstanceMetrics::measure(&inst);
        let direct = inst
            .ids()
            .players()
            .filter(|&v| inst.degree(v) == 0)
            .count();
        assert_eq!(m.isolated_players, direct);
    }

    #[test]
    fn mean_degree_consistent_with_edges() {
        let inst = generators::complete(7, 1);
        let m = InstanceMetrics::measure(&inst);
        assert_eq!(m.mean_degree, 7.0);
    }

    #[test]
    fn empty_instance_metrics() {
        let inst = crate::InstanceBuilder::new(0, 0).build().unwrap();
        let m = InstanceMetrics::measure(&inst);
        assert_eq!(m.num_edges, 0);
        assert_eq!(m.mean_degree, 0.0);
        assert_eq!(m.alpha, 1.0);
    }

    #[test]
    fn display_mentions_edge_count() {
        let inst = generators::complete(3, 1);
        let s = InstanceMetrics::measure(&inst).to_string();
        assert!(s.contains("|E|=9"));
    }
}
