//! Instance validation errors.

use asm_congest::NodeId;
use std::error::Error;
use std::fmt;

/// Errors detected while building or deserializing an [`crate::Instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum InstanceError {
    /// A preference list refers to a node id outside the instance.
    PartnerOutOfRange {
        /// The player whose list is invalid.
        player: NodeId,
        /// The out-of-range entry.
        partner: NodeId,
    },
    /// A preference list ranks a player of the same gender.
    SameGenderPartner {
        /// The player whose list is invalid.
        player: NodeId,
        /// The same-gender entry.
        partner: NodeId,
    },
    /// A preference list contains the same partner twice.
    DuplicatePartner {
        /// The player whose list is invalid.
        player: NodeId,
        /// The duplicated entry.
        partner: NodeId,
    },
    /// Preferences are not symmetric: `partner` appears on `player`'s list
    /// but not vice versa (Section 2.1 assumes symmetry).
    AsymmetricPreference {
        /// The player who ranks `partner`.
        player: NodeId,
        /// The partner who does not rank `player` back.
        partner: NodeId,
    },
    /// The number of preference lists supplied does not match the number of
    /// players.
    WrongListCount {
        /// Lists supplied.
        got: usize,
        /// Players in the instance.
        expected: usize,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::PartnerOutOfRange { player, partner } => {
                write!(f, "player {player} ranks out-of-range partner {partner}")
            }
            InstanceError::SameGenderPartner { player, partner } => {
                write!(f, "player {player} ranks same-gender partner {partner}")
            }
            InstanceError::DuplicatePartner { player, partner } => {
                write!(f, "player {player} ranks partner {partner} more than once")
            }
            InstanceError::AsymmetricPreference { player, partner } => write!(
                f,
                "player {player} ranks {partner} but {partner} does not rank {player} back"
            ),
            InstanceError::WrongListCount { got, expected } => {
                write!(f, "got {got} preference lists for {expected} players")
            }
        }
    }
}

impl Error for InstanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = InstanceError::AsymmetricPreference {
            player: NodeId::new(1),
            partner: NodeId::new(2),
        };
        let s = e.to_string();
        assert!(s.contains("v1") && s.contains("v2"));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<InstanceError>();
    }
}
