//! # asm-instance: stable-marriage problem instances
//!
//! Problem inputs for the `almost-stable` workspace (Ostrovsky & Rosenbaum,
//! *Fast Distributed Almost Stable Matchings*, PODC 2015): sets of women
//! `X` and men `Y`, each holding a strict ranking of a subset of the
//! opposite sex (Section 2.1 of the paper). Preferences are **symmetric** —
//! `m` ranks `w` iff `w` ranks `m` — so an instance induces the bipartite
//! *communication graph* `G = (X ∪ Y, E)` on which the distributed
//! algorithms run.
//!
//! * [`Instance`] — validated preference structure with `O(log deg)` rank
//!   lookup and conversion to an [`asm_congest::Topology`].
//! * [`InstanceBuilder`] — hand-construction with side-relative indices.
//! * [`generators`] — one workload generator per preference class the paper
//!   discusses (complete, bounded/regular, α-almost-regular, arbitrary
//!   incomplete, popularity-skewed, adversarial).
//! * [`InstanceMetrics`] — degree/regularity summaries for reports.
//!
//! # Examples
//!
//! ```
//! use asm_instance::{generators, InstanceMetrics};
//!
//! // A 100-player market where each man knows 8 random women.
//! let inst = generators::regular(50, 8, 7);
//! let metrics = InstanceMetrics::measure(&inst);
//! assert_eq!(metrics.num_edges, 400);
//! assert_eq!(metrics.alpha, 1.0);
//!
//! // The instance doubles as the CONGEST communication graph.
//! let topo = inst.topology();
//! assert_eq!(topo.num_edges(), inst.num_edges());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
pub mod generators;
mod ids;
mod instance;
mod io;
mod metrics;
mod prefs;
mod reduction;

pub use builder::InstanceBuilder;
pub use error::InstanceError;
pub use ids::{Gender, IdSpace};
pub use instance::{Instance, RawInstance};
pub use io::{parse_text, to_text, ParseError};
pub use metrics::InstanceMetrics;
pub use prefs::{PreferenceList, Rank};
pub use reduction::{HospitalResidents, SlotMap};
