//! A human-editable text format for instances.
//!
//! JSON (via serde) is the machine format; this module adds a line-based
//! format convenient for writing instances by hand or exchanging them with
//! the matching literature's tooling:
//!
//! ```text
//! # anything after '#' is a comment
//! asm-instance v1
//! women 2
//! men 2
//! w 0: 1 0        # woman 0 ranks man 1 over man 0
//! w 1: 0 1
//! m 0: 0 1        # man 0 ranks woman 0 over woman 1
//! m 1: 1 0
//! ```
//!
//! Players with empty preference lists may be omitted entirely. All
//! instance invariants (symmetry, ranges) are validated on parse.

use crate::{Instance, InstanceBuilder, InstanceError};
use asm_congest::NodeId;
use std::error::Error;
use std::fmt;

/// Errors from parsing the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The `asm-instance v1` header is missing or wrong.
    BadHeader,
    /// A malformed line, with its 1-based line number.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A `women`/`men` declaration is missing.
    MissingSizes,
    /// The same player's list was given twice.
    DuplicatePlayer {
        /// 1-based line number of the second occurrence.
        line: usize,
    },
    /// The parsed lists violate an instance invariant.
    Invalid(InstanceError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or unsupported 'asm-instance v1' header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::MissingSizes => write!(f, "missing 'women <N>' / 'men <N>' declarations"),
            ParseError::DuplicatePlayer { line } => {
                write!(f, "line {line}: player's preference list given twice")
            }
            ParseError::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InstanceError> for ParseError {
    fn from(e: InstanceError) -> Self {
        ParseError::Invalid(e)
    }
}

/// Renders `inst` in the text format.
///
/// # Examples
///
/// ```
/// use asm_instance::{generators, parse_text, to_text};
///
/// let inst = generators::regular(6, 2, 1);
/// let text = to_text(&inst);
/// assert_eq!(parse_text(&text).unwrap(), inst);
/// ```
pub fn to_text(inst: &Instance) -> String {
    let ids = inst.ids();
    let mut out = String::from("asm-instance v1\n");
    out += &format!("women {}\n", ids.num_women());
    out += &format!("men {}\n", ids.num_men());
    let fmt_list = |list: &[NodeId]| -> String {
        list.iter()
            .map(|&u| ids.side_index(u).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    for (i, w) in ids.women().enumerate() {
        if inst.degree(w) > 0 {
            out += &format!("w {}: {}\n", i, fmt_list(inst.prefs(w).ranked()));
        }
    }
    for (j, m) in ids.men().enumerate() {
        if inst.degree(m) > 0 {
            out += &format!("m {}: {}\n", j, fmt_list(inst.prefs(m).ranked()));
        }
    }
    out
}

/// Parses the text format back into an [`Instance`].
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first problem.
pub fn parse_text(text: &str) -> Result<Instance, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    match lines.next() {
        Some((_, "asm-instance v1")) => {}
        _ => return Err(ParseError::BadHeader),
    }

    let mut num_women = None;
    let mut num_men = None;
    let mut pref_lines: Vec<(usize, char, usize, Vec<usize>)> = Vec::new();
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("nonempty line has a first token");
        match head {
            "women" | "men" => {
                let n: usize = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "missing count"))?
                    .parse()
                    .map_err(|_| bad(line_no, "count is not a number"))?;
                if parts.next().is_some() {
                    return Err(bad(line_no, "trailing tokens after count"));
                }
                if head == "women" {
                    num_women = Some(n);
                } else {
                    num_men = Some(n);
                }
            }
            "w" | "m" => {
                let idx_part = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "missing player index"))?;
                let idx_clean = idx_part.trim_end_matches(':');
                let idx: usize = idx_clean
                    .parse()
                    .map_err(|_| bad(line_no, "player index is not a number"))?;
                // Allow both `w 0:` and `w 0 :` styles.
                let mut rest: Vec<&str> = parts.collect();
                if rest.first() == Some(&":") {
                    rest.remove(0);
                }
                let list: Result<Vec<usize>, _> = rest.iter().map(|t| t.parse()).collect();
                let list = list.map_err(|_| bad(line_no, "preference entry is not a number"))?;
                pref_lines.push((line_no, head.chars().next().expect("w or m"), idx, list));
            }
            other => return Err(bad(line_no, &format!("unknown directive {other:?}"))),
        }
    }

    let (Some(nw), Some(nm)) = (num_women, num_men) else {
        return Err(ParseError::MissingSizes);
    };
    let mut builder = InstanceBuilder::new(nw, nm);
    let mut seen: Vec<(char, usize)> = Vec::new();
    for (line_no, side, idx, list) in pref_lines {
        if seen.contains(&(side, idx)) {
            return Err(ParseError::DuplicatePlayer { line: line_no });
        }
        seen.push((side, idx));
        let bound = if side == 'w' { nw } else { nm };
        if idx >= bound {
            return Err(bad(line_no, "player index out of range"));
        }
        let partner_bound = if side == 'w' { nm } else { nw };
        if let Some(&p) = list.iter().find(|&&p| p >= partner_bound) {
            return Err(bad(line_no, &format!("partner index {p} out of range")));
        }
        builder = if side == 'w' {
            builder.woman(idx, list)
        } else {
            builder.man(idx, list)
        };
    }
    Ok(builder.build()?)
}

fn bad(line: usize, reason: &str) -> ParseError {
    ParseError::BadLine {
        line,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trips_every_family() {
        let instances = vec![
            generators::complete(6, 1),
            generators::erdos_renyi(8, 8, 0.4, 2),
            generators::regular(6, 3, 3),
            generators::adversarial_chain(5),
            crate::InstanceBuilder::new(2, 2).build().unwrap(), // empty lists
        ];
        for inst in instances {
            let text = to_text(&inst);
            assert_eq!(parse_text(&text).unwrap(), inst);
        }
    }

    #[test]
    fn parses_hand_written_instance_with_comments() {
        let text = "
            # a tiny market
            asm-instance v1
            women 2
            men 2
            w 0: 1 0   # woman 0 prefers man 1
            w 1: 0 1
            m 0: 0 1
            m 1: 1 0   # man 1 prefers woman 1
        ";
        let inst = parse_text(text).unwrap();
        assert_eq!(inst.num_edges(), 4);
        assert_eq!(inst.rank(inst.ids().woman(0), inst.ids().man(1)), Some(1));
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(parse_text("women 1\nmen 1\n"), Err(ParseError::BadHeader));
    }

    #[test]
    fn missing_sizes_rejected() {
        assert_eq!(
            parse_text("asm-instance v1\nw 0: 0\n"),
            Err(ParseError::MissingSizes)
        );
    }

    #[test]
    fn bad_numbers_located() {
        let err = parse_text("asm-instance v1\nwomen 1\nmen 1\nw zero: 0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 4, .. }), "{err}");
    }

    #[test]
    fn duplicate_player_rejected() {
        let err =
            parse_text("asm-instance v1\nwomen 1\nmen 1\nw 0: 0\nw 0: 0\nm 0: 0\n").unwrap_err();
        assert!(matches!(err, ParseError::DuplicatePlayer { line: 5 }));
    }

    #[test]
    fn out_of_range_partner_located() {
        let err = parse_text("asm-instance v1\nwomen 1\nmen 1\nw 0: 7\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { line: 4, .. }));
    }

    #[test]
    fn asymmetry_reported_as_invalid() {
        let err = parse_text("asm-instance v1\nwomen 1\nmen 1\nm 0: 0\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
        assert!(err.to_string().contains("invalid instance"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse_text("asm-instance v1\nwomen 1\nmen 1\nx 0: 0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine { .. }));
    }
}
