//! Ergonomic construction of instances.

use crate::{IdSpace, Instance, InstanceError, PreferenceList};
use asm_congest::NodeId;

/// Builder for [`Instance`]s using side-relative indices.
///
/// Preference lists are given as *side indices* (the `i`-th woman, the
/// `j`-th man), which is how instances are usually written down; the builder
/// translates to node ids and [`InstanceBuilder::build`] validates all
/// invariants (including symmetry).
///
/// # Examples
///
/// ```
/// use asm_instance::InstanceBuilder;
///
/// // The 2x2 instance with a unique stable matching {(m0,w0), (m1,w1)}.
/// let inst = InstanceBuilder::new(2, 2)
///     .woman(0, [0, 1]) // w0 ranks m0 over m1
///     .woman(1, [0, 1])
///     .man(0, [0, 1])   // m0 ranks w0 over w1
///     .man(1, [0, 1])
///     .build()?;
/// assert_eq!(inst.num_edges(), 4);
/// # Ok::<(), asm_instance::InstanceError>(())
/// ```
#[derive(Clone, Debug)]
pub struct InstanceBuilder {
    ids: IdSpace,
    prefs: Vec<Vec<NodeId>>,
}

impl InstanceBuilder {
    /// Starts an instance with the given side sizes and empty lists.
    pub fn new(num_women: usize, num_men: usize) -> Self {
        let ids = IdSpace::new(num_women, num_men);
        InstanceBuilder {
            ids,
            prefs: vec![Vec::new(); ids.num_players()],
        }
    }

    /// Sets the `i`-th woman's preference list as man side-indices, most
    /// favored first.
    ///
    /// # Panics
    ///
    /// Panics if `i` or any man index is out of range (use side sizes from
    /// [`InstanceBuilder::new`]); invalid *structure* (asymmetry,
    /// duplicates) is reported by [`InstanceBuilder::build`] instead.
    pub fn woman<I>(mut self, i: usize, men: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let list = men.into_iter().map(|j| self.ids.man(j)).collect();
        self.prefs[self.ids.woman(i).index()] = list;
        self
    }

    /// Sets the `j`-th man's preference list as woman side-indices, most
    /// favored first.
    ///
    /// # Panics
    ///
    /// Panics if `j` or any woman index is out of range.
    pub fn man<I>(mut self, j: usize, women: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let list = women.into_iter().map(|i| self.ids.woman(i)).collect();
        self.prefs[self.ids.man(j).index()] = list;
        self
    }

    /// Sets a player's list directly by node ids.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn player<I>(mut self, v: NodeId, partners: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        assert!(
            v.index() < self.ids.num_players(),
            "player {v} out of range"
        );
        self.prefs[v.index()] = partners.into_iter().collect();
        self
    }

    /// Validates and produces the instance.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`InstanceError`].
    pub fn build(self) -> Result<Instance, InstanceError> {
        // Screen duplicates gently (PreferenceList::new panics on them).
        for (i, list) in self.prefs.iter().enumerate() {
            let mut sorted = list.clone();
            sorted.sort_unstable();
            if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
                return Err(InstanceError::DuplicatePartner {
                    player: NodeId::new(i as u32),
                    partner: w[0],
                });
            }
        }
        let prefs = self.prefs.into_iter().map(PreferenceList::new).collect();
        Instance::from_prefs(self.ids, prefs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_symmetric_instance() {
        let inst = InstanceBuilder::new(1, 1)
            .woman(0, [0])
            .man(0, [0])
            .build()
            .unwrap();
        assert_eq!(inst.num_edges(), 1);
    }

    #[test]
    fn detects_duplicates_as_error() {
        let err = InstanceBuilder::new(1, 2)
            .woman(0, [0, 1, 0])
            .man(0, [0])
            .man(1, [0])
            .build()
            .unwrap_err();
        assert!(matches!(err, InstanceError::DuplicatePartner { .. }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_side_index_panics() {
        let _ = InstanceBuilder::new(1, 1).woman(0, [5]);
    }

    #[test]
    fn player_method_sets_by_node_id() {
        let ids = IdSpace::new(1, 1);
        let inst = InstanceBuilder::new(1, 1)
            .player(ids.woman(0), [ids.man(0)])
            .player(ids.man(0), [ids.woman(0)])
            .build()
            .unwrap();
        assert_eq!(inst.degree(ids.man(0)), 1);
    }

    #[test]
    fn empty_lists_allowed() {
        let inst = InstanceBuilder::new(2, 2).build().unwrap();
        assert_eq!(inst.num_edges(), 0);
        assert!(!inst.is_complete());
    }
}
