//! Serializable generator configurations.
//!
//! A [`GeneratorConfig`] is the *recipe* for an instance: the family plus
//! all parameters, including the seed. Because generators are pure
//! functions of their parameters, a serialized config reproduces its
//! instance bit-for-bit on any machine — the foundation of the
//! conformance crate's deterministic replay (`asm-conformance`).

use super::{
    adversarial_chain, almost_regular, complete, erdos_renyi, geometric, master_list, noisy_master,
    regular, zipf,
};
use crate::Instance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A serializable recipe for one generated instance: generator family +
/// parameters + seed.
///
/// # Examples
///
/// ```
/// use asm_instance::generators::GeneratorConfig;
///
/// let config = GeneratorConfig::Regular { n: 16, d: 4, seed: 9 };
/// let a = config.build();
/// let b = config.build();
/// assert_eq!(a, b); // building is pure
///
/// let json = serde_json::to_string(&config).unwrap();
/// let back: GeneratorConfig = serde_json::from_str(&json).unwrap();
/// assert_eq!(back.build(), a);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GeneratorConfig {
    /// [`complete`]: complete bipartite preferences, `n` per side.
    Complete {
        /// Players per side.
        n: usize,
        /// Randomness seed.
        seed: u64,
    },
    /// [`erdos_renyi`]: each woman–man pair is acceptable with probability `p`.
    ErdosRenyi {
        /// Number of women.
        num_women: usize,
        /// Number of men.
        num_men: usize,
        /// Edge probability in `[0, 1]`.
        p: f64,
        /// Randomness seed.
        seed: u64,
    },
    /// [`regular`]: every player has exactly `d` acceptable partners.
    Regular {
        /// Players per side.
        n: usize,
        /// Uniform degree.
        d: usize,
        /// Randomness seed.
        seed: u64,
    },
    /// [`almost_regular`]: men's degrees span `[d_min, α·d_min]`.
    AlmostRegular {
        /// Players per side.
        n: usize,
        /// Minimum man degree.
        d_min: usize,
        /// Regularity ratio α ≥ 1.
        alpha: f64,
        /// Randomness seed.
        seed: u64,
    },
    /// [`zipf`]: popularity-skewed incomplete preferences.
    Zipf {
        /// Players per side.
        n: usize,
        /// Acceptable partners per man.
        d: usize,
        /// Zipf exponent.
        s: f64,
        /// Randomness seed.
        seed: u64,
    },
    /// [`adversarial_chain`]: the displacement chain serializing
    /// distributed Gale–Shapley (deterministic; no seed).
    Chain {
        /// Players per side.
        n: usize,
    },
    /// [`master_list`]: every player ranks the opposite side identically.
    MasterList {
        /// Players per side.
        n: usize,
        /// Randomness seed.
        seed: u64,
    },
    /// [`noisy_master`]: master list perturbed by random adjacent swaps.
    NoisyMaster {
        /// Players per side.
        n: usize,
        /// Expected adjacent swaps per list.
        noise: f64,
        /// Randomness seed.
        seed: u64,
    },
    /// [`geometric`]: spatial k-nearest-neighbor preferences.
    Geometric {
        /// Players per side.
        n: usize,
        /// Neighbors per player.
        d: usize,
        /// Randomness seed.
        seed: u64,
    },
}

impl GeneratorConfig {
    /// Builds the instance this config describes. Pure: equal configs
    /// produce equal instances.
    pub fn build(&self) -> Instance {
        match *self {
            GeneratorConfig::Complete { n, seed } => complete(n, seed),
            GeneratorConfig::ErdosRenyi {
                num_women,
                num_men,
                p,
                seed,
            } => erdos_renyi(num_women, num_men, p, seed),
            GeneratorConfig::Regular { n, d, seed } => regular(n, d, seed),
            GeneratorConfig::AlmostRegular {
                n,
                d_min,
                alpha,
                seed,
            } => almost_regular(n, d_min, alpha, seed),
            GeneratorConfig::Zipf { n, d, s, seed } => zipf(n, d, s, seed),
            GeneratorConfig::Chain { n } => adversarial_chain(n),
            GeneratorConfig::MasterList { n, seed } => master_list(n, seed),
            GeneratorConfig::NoisyMaster { n, noise, seed } => noisy_master(n, noise, seed),
            GeneratorConfig::Geometric { n, d, seed } => geometric(n, d, seed),
        }
    }

    /// The family name (the serialized enum tag, lowercased for display).
    pub fn family(&self) -> &'static str {
        match self {
            GeneratorConfig::Complete { .. } => "complete",
            GeneratorConfig::ErdosRenyi { .. } => "erdos_renyi",
            GeneratorConfig::Regular { .. } => "regular",
            GeneratorConfig::AlmostRegular { .. } => "almost_regular",
            GeneratorConfig::Zipf { .. } => "zipf",
            GeneratorConfig::Chain { .. } => "chain",
            GeneratorConfig::MasterList { .. } => "master_list",
            GeneratorConfig::NoisyMaster { .. } => "noisy_master",
            GeneratorConfig::Geometric { .. } => "geometric",
        }
    }

    /// One representative config per generator family at size `n`,
    /// deterministically derived from `seed` — the standard sweep used by
    /// conformance differential runs.
    pub fn all_families(n: usize, seed: u64) -> Vec<GeneratorConfig> {
        let d = 4.min(n.max(1));
        vec![
            GeneratorConfig::Complete { n, seed },
            GeneratorConfig::ErdosRenyi {
                num_women: n,
                num_men: n,
                p: 0.4,
                seed,
            },
            GeneratorConfig::Regular { n, d, seed },
            GeneratorConfig::AlmostRegular {
                // The generator requires ceil(alpha * d_min) <= n.
                n,
                d_min: d.max(2).min((n / 2).max(1)),
                alpha: if n >= 2 { 2.0 } else { 1.0 },
                seed,
            },
            GeneratorConfig::Zipf { n, d, s: 1.2, seed },
            GeneratorConfig::Chain { n },
            GeneratorConfig::MasterList { n, seed },
            GeneratorConfig::NoisyMaster {
                n,
                noise: 2.0,
                seed,
            },
            GeneratorConfig::Geometric { n, d, seed },
        ]
    }
}

impl fmt::Display for GeneratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GeneratorConfig::Complete { n, seed } => write!(f, "complete(n={n}, seed={seed})"),
            GeneratorConfig::ErdosRenyi {
                num_women,
                num_men,
                p,
                seed,
            } => write!(f, "erdos_renyi({num_women}x{num_men}, p={p}, seed={seed})"),
            GeneratorConfig::Regular { n, d, seed } => {
                write!(f, "regular(n={n}, d={d}, seed={seed})")
            }
            GeneratorConfig::AlmostRegular {
                n,
                d_min,
                alpha,
                seed,
            } => write!(
                f,
                "almost_regular(n={n}, d_min={d_min}, alpha={alpha}, seed={seed})"
            ),
            GeneratorConfig::Zipf { n, d, s, seed } => {
                write!(f, "zipf(n={n}, d={d}, s={s}, seed={seed})")
            }
            GeneratorConfig::Chain { n } => write!(f, "chain(n={n})"),
            GeneratorConfig::MasterList { n, seed } => {
                write!(f, "master_list(n={n}, seed={seed})")
            }
            GeneratorConfig::NoisyMaster { n, noise, seed } => {
                write!(f, "noisy_master(n={n}, noise={noise}, seed={seed})")
            }
            GeneratorConfig::Geometric { n, d, seed } => {
                write!(f, "geometric(n={n}, d={d}, seed={seed})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_direct_generator_calls() {
        assert_eq!(
            GeneratorConfig::Complete { n: 6, seed: 3 }.build(),
            complete(6, 3)
        );
        assert_eq!(
            GeneratorConfig::Zipf {
                n: 8,
                d: 3,
                s: 1.1,
                seed: 5
            }
            .build(),
            zipf(8, 3, 1.1, 5)
        );
        assert_eq!(
            GeneratorConfig::Chain { n: 7 }.build(),
            adversarial_chain(7)
        );
    }

    #[test]
    fn all_families_covers_every_variant_once() {
        let families: Vec<&str> = GeneratorConfig::all_families(8, 1)
            .iter()
            .map(|c| c.family())
            .collect();
        let mut dedup = families.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 9, "9 distinct families: {families:?}");
    }

    #[test]
    fn display_is_compact() {
        let c = GeneratorConfig::Regular {
            n: 4,
            d: 2,
            seed: 1,
        };
        assert_eq!(c.to_string(), "regular(n=4, d=2, seed=1)");
    }
}
