//! Adversarial instances that serialize proposal dynamics.

use crate::{Instance, InstanceBuilder};
use asm_congest::SplitRng;

/// The *displacement chain* instance: distributed Gale–Shapley resolves it
/// one rejection at a time, taking `Θ(n)` proposal cycles.
///
/// Construction (side indices):
///
/// * man 0 ranks only `w_0`;
/// * man `j ≥ 1` ranks `[w_{j-1}, w_j]`;
/// * woman `i` ranks her (at most two) suitors as `[m_i, m_{i+1}]` — she
///   prefers the man who will be displaced *onto* her.
///
/// Execution of men-proposing Gale–Shapley: in cycle 1, `m_0` and `m_1`
/// collide on `w_0`, who keeps `m_0`; displaced `m_1` then collides with
/// `m_2` on `w_1` in cycle 2, and so on — exactly one rejection per cycle,
/// for a chain of length `n - 1`. Used by experiment T2 to separate ASM's
/// polylogarithmic rounds from Gale–Shapley's polynomial worst case.
///
/// # Examples
///
/// ```
/// let inst = asm_instance::generators::adversarial_chain(6);
/// assert_eq!(inst.num_edges(), 2 * 6 - 1);
/// assert_eq!(inst.degree(inst.ids().man(0)), 1);
/// assert_eq!(inst.degree(inst.ids().man(3)), 2);
/// ```
pub fn adversarial_chain(n: usize) -> Instance {
    let mut b = InstanceBuilder::new(n, n);
    for j in 0..n {
        let list: Vec<usize> = if j == 0 { vec![0] } else { vec![j - 1, j] };
        b = b.man(j, list);
    }
    for i in 0..n {
        let mut list = vec![i];
        if i + 1 < n {
            list.push(i + 1);
        }
        b = b.woman(i, list);
    }
    b.build().expect("chain construction is symmetric")
}

/// The *master list* instance: all men share one uniformly random ranking
/// of the women and all women share one ranking of the men.
///
/// This maximizes contention — in the first Gale–Shapley cycle every man
/// proposes to the same woman — and is the natural stress test for the
/// quantile-acceptance logic in `ProposalRound` (every woman's best
/// proposing quantile is crowded). Its unique stable matching pairs the
/// `i`-th man on the women's list with the `i`-th woman on the men's list.
///
/// # Examples
///
/// ```
/// let inst = asm_instance::generators::master_list(5, 2);
/// let first = inst.prefs(inst.ids().man(0)).ranked().to_vec();
/// for j in 1..5 {
///     assert_eq!(inst.prefs(inst.ids().man(j)).ranked(), first.as_slice());
/// }
/// ```
pub fn master_list(n: usize, seed: u64) -> Instance {
    let mut rng = SplitRng::new(seed).split(0x06, n as u64);
    let mut woman_order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut woman_order);
    let mut man_order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut man_order);
    let mut b = InstanceBuilder::new(n, n);
    for j in 0..n {
        b = b.man(j, woman_order.clone());
    }
    for i in 0..n {
        b = b.woman(i, man_order.clone());
    }
    b.build().expect("master lists are symmetric and complete")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure() {
        let inst = adversarial_chain(4);
        let ids = inst.ids();
        assert_eq!(
            inst.prefs(ids.man(2)).ranked(),
            &[ids.woman(1), ids.woman(2)]
        );
        assert_eq!(inst.prefs(ids.woman(1)).ranked(), &[ids.man(1), ids.man(2)]);
        // Last woman has only her own man.
        assert_eq!(inst.prefs(ids.woman(3)).ranked(), &[ids.man(3)]);
    }

    #[test]
    fn chain_of_one() {
        let inst = adversarial_chain(1);
        assert_eq!(inst.num_edges(), 1);
    }

    #[test]
    fn master_list_is_complete() {
        let inst = master_list(6, 1);
        assert!(inst.is_complete());
        assert_eq!(inst.alpha(), 1.0);
    }

    #[test]
    fn master_list_women_agree() {
        let inst = master_list(6, 1);
        let first = inst.prefs(inst.ids().woman(0)).ranked().to_vec();
        for i in 1..6 {
            assert_eq!(inst.prefs(inst.ids().woman(i)).ranked(), first.as_slice());
        }
    }
}
