//! Popularity-skewed (Zipf) preferences.

use super::from_men_adjacency;
use crate::Instance;
use asm_congest::SplitRng;

/// Generates a popularity-skewed instance: each of `n` men is acceptable to
/// `d` women chosen with Zipf(`s`) weights, modelling the social-network
/// setting from the paper's introduction where a few participants are
/// universally known and most are niche.
///
/// Woman `i` (after a random relabeling) receives weight `(i+1)^{-s}`; each
/// man samples `d` distinct women from that distribution. `s = 0` recovers
/// uniform sampling; larger `s` concentrates edges on the popular women,
/// producing highly irregular *women's* degrees while men stay `d`-regular
/// — a stress case for the women-side quantile logic.
///
/// # Examples
///
/// ```
/// let inst = asm_instance::generators::zipf(30, 5, 1.2, 11);
/// assert_eq!(inst.num_edges(), 150);
/// assert_eq!(inst.alpha(), 1.0); // men are d-regular
/// ```
///
/// # Panics
///
/// Panics if `d > n` or `s < 0`.
#[allow(clippy::needless_range_loop)] // rank-indexed fallback fill
pub fn zipf(n: usize, d: usize, s: f64, seed: u64) -> Instance {
    assert!(d <= n, "degree d = {d} cannot exceed n = {n}");
    assert!(s >= 0.0, "zipf exponent must be nonnegative");
    let mut rng = SplitRng::new(seed).split(0x05, (n as u64) << 32 | d as u64);

    // Random popularity order, then cumulative Zipf weights for sampling.
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cumulative.push(acc);
    }

    let men_adj: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let mut chosen: Vec<usize> = Vec::with_capacity(d);
            // Rejection sampling; fall back to a deterministic fill if the
            // tail gets slow (d close to n with heavy skew).
            let mut attempts = 0usize;
            while chosen.len() < d {
                attempts += 1;
                if attempts > 50 * d + 200 {
                    for rank in 0..n {
                        let candidate = order[rank];
                        if !chosen.contains(&candidate) {
                            chosen.push(candidate);
                            if chosen.len() == d {
                                break;
                            }
                        }
                    }
                    break;
                }
                let x = rng.next_f64() * acc;
                let idx = cumulative.partition_point(|&c| c < x).min(n - 1);
                let candidate = order[idx];
                if !chosen.contains(&candidate) {
                    chosen.push(candidate);
                }
            }
            chosen
        })
        .collect();
    from_men_adjacency(n, n, men_adj, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn men_are_d_regular() {
        let inst = zipf(25, 4, 1.0, 1);
        for m in inst.ids().men() {
            assert_eq!(inst.degree(m), 4);
        }
    }

    #[test]
    fn skew_concentrates_women_degrees() {
        let skewed = zipf(60, 5, 2.0, 3);
        let max_w = skewed
            .ids()
            .women()
            .map(|w| skewed.degree(w))
            .max()
            .unwrap();
        // With s = 2 the most popular woman should attract far more than
        // the mean degree of 5.
        assert!(max_w >= 15, "max woman degree = {max_w}");
    }

    #[test]
    fn s_zero_behaves_like_uniform() {
        let inst = zipf(30, 3, 0.0, 5);
        assert_eq!(inst.num_edges(), 90);
    }

    #[test]
    fn d_equals_n_works_via_fallback() {
        let inst = zipf(8, 8, 3.0, 2);
        assert!(inst.is_complete());
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn oversized_degree_panics() {
        zipf(3, 4, 1.0, 0);
    }
}
