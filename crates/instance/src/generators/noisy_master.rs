//! Correlated preferences: master lists with swap noise.

use crate::{Instance, InstanceBuilder};
use asm_congest::SplitRng;

/// Generates complete preferences interpolating between a shared *master
/// list* and independent uniform rankings.
///
/// Each player starts from a common master ranking of the opposite side
/// and applies `noise · n` random adjacent transpositions. `noise = 0`
/// reproduces [`crate::generators::master_list`] (maximal contention:
/// everyone agrees); large `noise` approaches
/// [`crate::generators::complete`] (independent preferences). Eriksson &
/// Häggström \[2\] study exactly this kind of correlated-preference
/// structure when arguing about decentralized market instability, which
/// makes the family a natural stress axis for ASM's acceptance logic.
///
/// # Examples
///
/// ```
/// let strict = asm_instance::generators::noisy_master(12, 0.0, 5);
/// let loose = asm_instance::generators::noisy_master(12, 8.0, 5);
/// // Zero noise: all men agree.
/// let first = strict.prefs(strict.ids().man(0)).ranked().to_vec();
/// assert!((1..12).all(|j| strict.prefs(strict.ids().man(j)).ranked() == first.as_slice()));
/// // Heavy noise: they almost surely do not.
/// let l0 = loose.prefs(loose.ids().man(0)).ranked().to_vec();
/// assert!((1..12).any(|j| loose.prefs(loose.ids().man(j)).ranked() != l0.as_slice()));
/// ```
///
/// # Panics
///
/// Panics if `noise` is negative.
pub fn noisy_master(n: usize, noise: f64, seed: u64) -> Instance {
    assert!(noise >= 0.0, "noise must be nonnegative");
    let mut rng = SplitRng::new(seed).split(0x08, n as u64);
    let swaps = (noise * n as f64).round() as usize;

    let mut master_women: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut master_women);
    let mut master_men: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut master_men);

    let perturb = |master: &[usize], rng: &mut SplitRng| -> Vec<usize> {
        let mut list = master.to_vec();
        for _ in 0..swaps {
            if n >= 2 {
                let i = rng.next_range(n - 1);
                list.swap(i, i + 1);
            }
        }
        list
    };

    let mut b = InstanceBuilder::new(n, n);
    for j in 0..n {
        let list = perturb(&master_women, &mut rng);
        b = b.man(j, list);
    }
    for i in 0..n {
        let list = perturb(&master_men, &mut rng);
        b = b.woman(i, list);
    }
    b.build().expect("complete lists are symmetric")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_complete() {
        for noise in [0.0, 0.5, 4.0] {
            let inst = noisy_master(10, noise, 1);
            assert!(inst.is_complete());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(noisy_master(8, 1.0, 3), noisy_master(8, 1.0, 3));
        assert_ne!(noisy_master(8, 1.0, 3), noisy_master(8, 1.0, 4));
    }

    #[test]
    fn noise_increases_disagreement() {
        let n = 16;
        let kendall = |inst: &Instance| -> usize {
            // Count pairwise list differences between man 0 and man 1.
            let a = inst.prefs(inst.ids().man(0)).ranked();
            let b = inst.prefs(inst.ids().man(1)).ranked();
            a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
        };
        let quiet = kendall(&noisy_master(n, 0.0, 7));
        let loud = kendall(&noisy_master(n, 8.0, 7));
        assert_eq!(quiet, 0);
        assert!(loud > 0);
    }

    #[test]
    fn single_player_edge_case() {
        let inst = noisy_master(1, 3.0, 1);
        assert_eq!(inst.num_edges(), 1);
    }
}
