//! Erdős–Rényi random incomplete preferences.

use super::from_men_adjacency;
use crate::Instance;
use asm_congest::SplitRng;

/// Generates an incomplete instance where each (man, woman) pair is
/// mutually acceptable independently with probability `p`, and each player
/// ranks their acceptable partners uniformly at random.
///
/// This is the "arbitrary preferences" regime of the main theorems: degrees
/// are irregular (Binomial), some players may be isolated, and α is
/// typically large.
///
/// # Examples
///
/// ```
/// let inst = asm_instance::generators::erdos_renyi(20, 20, 0.3, 1);
/// assert!(inst.num_edges() > 0);
/// assert!(inst.num_edges() < 400);
/// ```
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn erdos_renyi(num_women: usize, num_men: usize, p: f64, seed: u64) -> Instance {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    let mut rng = SplitRng::new(seed).split(0x02, (num_women as u64) << 32 | num_men as u64);
    let men_adj: Vec<Vec<usize>> = (0..num_men)
        .map(|_| (0..num_women).filter(|_| rng.next_bool(p)).collect())
        .collect();
    from_men_adjacency(num_women, num_men, men_adj, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_zero_gives_empty_graph() {
        let inst = erdos_renyi(10, 10, 0.0, 1);
        assert_eq!(inst.num_edges(), 0);
    }

    #[test]
    fn p_one_gives_complete_graph() {
        let inst = erdos_renyi(10, 10, 1.0, 1);
        assert!(inst.is_complete());
    }

    #[test]
    fn edge_count_near_expectation() {
        let inst = erdos_renyi(50, 50, 0.5, 7);
        let e = inst.num_edges() as f64;
        assert!((1000.0..1500.0).contains(&e), "edges = {e}");
    }

    #[test]
    fn unequal_sides_supported() {
        let inst = erdos_renyi(5, 15, 0.4, 2);
        assert_eq!(inst.ids().num_women(), 5);
        assert_eq!(inst.ids().num_men(), 15);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_panics() {
        erdos_renyi(2, 2, 1.5, 0);
    }
}
