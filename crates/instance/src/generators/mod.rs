//! Workload generators for every preference class the paper discusses.
//!
//! | Generator | Preference class | Paper context |
//! |---|---|---|
//! | [`complete`] | complete (1-almost-regular) | Gale–Shapley's original setting; Theorem 6's `O(1)`-round case |
//! | [`erdos_renyi`] | arbitrary incomplete | the general setting of Theorems 1/3/4 |
//! | [`regular`] | uniformly bounded, `d`-regular | Floréen et al. \[3\] setting (experiment F6) |
//! | [`almost_regular`] | α-almost-regular | Section 5.2 / Theorem 6 |
//! | [`zipf`] | popularity-skewed incomplete | "social network" motivation of Section 1.1 |
//! | [`adversarial_chain`] | displacement chain | serializes distributed Gale–Shapley (experiment T2) |
//! | [`master_list`] | identical ("master") lists | maximal contention stress case |
//! | [`noisy_master`] | correlated (master list + swap noise) | Eriksson–Häggström-style decentralized markets \[2\] |
//! | [`geometric`] | spatial k-nearest preferences | physically embedded markets (intro scenarios) |
//!
//! All generators are deterministic functions of their parameters and a
//! `u64` seed.

mod adversarial;
mod almost_regular;
mod complete;
mod config;
mod erdos_renyi;
mod geometric;
mod noisy_master;
mod regular;
mod zipf;

pub use adversarial::{adversarial_chain, master_list};
pub use almost_regular::almost_regular;
pub use complete::complete;
pub use config::GeneratorConfig;
pub use erdos_renyi::erdos_renyi;
pub use geometric::geometric;
pub use noisy_master::noisy_master;
pub use regular::regular;
pub use zipf::zipf;

use crate::{IdSpace, Instance, PreferenceList};
use asm_congest::{NodeId, SplitRng};

/// Builds an instance from a men-side adjacency structure, assigning every
/// player an independent uniformly random ranking of their neighbors.
///
/// `men_adj[j]` lists the woman side-indices acceptable to man `j` (order
/// irrelevant; rankings are randomized from `rng`).
///
/// This is the common back end of most generators: a generator decides the
/// *graph*, this helper decides the *orders*.
pub(crate) fn from_men_adjacency(
    num_women: usize,
    num_men: usize,
    men_adj: Vec<Vec<usize>>,
    rng: &mut SplitRng,
) -> Instance {
    let ids = IdSpace::new(num_women, num_men);
    let mut women_adj: Vec<Vec<NodeId>> = vec![Vec::new(); num_women];
    let mut men_lists: Vec<Vec<NodeId>> = Vec::with_capacity(num_men);
    for (j, adj) in men_adj.into_iter().enumerate() {
        let m = ids.man(j);
        let mut list: Vec<NodeId> = adj.iter().map(|&i| ids.woman(i)).collect();
        rng.shuffle(&mut list);
        for &w in &list {
            women_adj[w.index()].push(m);
        }
        men_lists.push(list);
    }
    let mut prefs: Vec<PreferenceList> = Vec::with_capacity(ids.num_players());
    for mut list in women_adj {
        rng.shuffle(&mut list);
        prefs.push(PreferenceList::new(list));
    }
    prefs.extend(men_lists.into_iter().map(PreferenceList::new));
    Instance::from_prefs(ids, prefs).expect("generator produced an invalid instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_men_adjacency_is_symmetric_and_shuffled() {
        let mut rng = SplitRng::new(1);
        let inst = from_men_adjacency(3, 2, vec![vec![0, 1, 2], vec![1]], &mut rng);
        assert_eq!(inst.num_edges(), 4);
        assert_eq!(inst.degree(inst.ids().woman(1)), 2);
        assert_eq!(inst.degree(inst.ids().man(1)), 1);
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        assert_eq!(complete(6, 9), complete(6, 9));
        assert_eq!(erdos_renyi(6, 6, 0.5, 9), erdos_renyi(6, 6, 0.5, 9));
        assert_eq!(regular(8, 3, 9), regular(8, 3, 9));
        assert_eq!(zipf(8, 3, 1.1, 9), zipf(8, 3, 1.1, 9));
        assert_eq!(almost_regular(8, 2, 3.0, 9), almost_regular(8, 2, 3.0, 9));
        assert_eq!(master_list(5, 9), master_list(5, 9));
        assert_eq!(geometric(8, 3, 9), geometric(8, 3, 9));
        assert_eq!(noisy_master(8, 1.0, 9), noisy_master(8, 1.0, 9));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(complete(6, 1), complete(6, 2));
    }
}
