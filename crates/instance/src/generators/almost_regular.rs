//! α-almost-regular preferences (Section 5.2).

use super::from_men_adjacency;
use crate::Instance;
use asm_congest::SplitRng;

/// Generates an instance whose **men's** degrees lie in
/// `[d_min, ⌈α · d_min⌉]`, the α-almost-regular class of Section 5.2
/// (`max_m deg m ≤ α · min_m deg m`).
///
/// Each man draws a degree uniformly from the range (with at least one man
/// pinned to each endpoint so that the realized α is exactly the requested
/// one whenever `n ≥ 2`), then samples that many distinct women uniformly.
/// Women's degrees are whatever falls out; the paper's α only constrains
/// the men.
///
/// # Examples
///
/// ```
/// let inst = asm_instance::generators::almost_regular(50, 4, 3.0, 5);
/// assert!(inst.alpha() <= 3.0 + 1e-9);
/// let (lo, hi) = inst.men_degree_bounds().unwrap();
/// assert_eq!((lo, hi), (4, 12));
/// ```
///
/// # Panics
///
/// Panics if `alpha < 1`, `d_min == 0`, or `⌈α·d_min⌉ > n`.
pub fn almost_regular(n: usize, d_min: usize, alpha: f64, seed: u64) -> Instance {
    assert!(alpha >= 1.0, "alpha must be at least 1");
    assert!(d_min > 0, "d_min must be positive");
    let d_max = (alpha * d_min as f64).ceil() as usize;
    assert!(
        d_max <= n,
        "max degree {d_max} (= ceil(alpha * d_min)) cannot exceed n = {n}"
    );
    let mut rng = SplitRng::new(seed).split(0x04, (n as u64) << 32 | d_min as u64);
    let men_adj: Vec<Vec<usize>> = (0..n)
        .map(|j| {
            let deg = match j {
                0 => d_min,
                1 if n >= 2 => d_max,
                _ => d_min + rng.next_range(d_max - d_min + 1),
            };
            sample_distinct(n, deg, &mut rng)
        })
        .collect();
    from_men_adjacency(n, n, men_adj, &mut rng)
}

/// Samples `k` distinct values from `0..n` by a partial Fisher–Yates pass.
fn sample_distinct(n: usize, k: usize, rng: &mut SplitRng) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.next_range(n - i);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_within_band() {
        let inst = almost_regular(40, 3, 2.0, 1);
        for m in inst.ids().men() {
            let d = inst.degree(m);
            assert!((3..=6).contains(&d), "deg = {d}");
        }
    }

    #[test]
    fn alpha_one_is_regular_on_men() {
        let inst = almost_regular(20, 5, 1.0, 1);
        assert_eq!(inst.men_degree_bounds(), Some((5, 5)));
        assert_eq!(inst.alpha(), 1.0);
    }

    #[test]
    fn endpoints_are_realized() {
        let inst = almost_regular(30, 2, 4.0, 1);
        assert_eq!(inst.men_degree_bounds(), Some((2, 8)));
    }

    #[test]
    #[should_panic(expected = "alpha must be at least 1")]
    fn alpha_below_one_panics() {
        almost_regular(10, 2, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn oversized_band_panics() {
        almost_regular(4, 3, 2.0, 0);
    }

    #[test]
    fn sample_distinct_has_no_repeats() {
        let mut rng = SplitRng::new(3);
        for _ in 0..50 {
            let mut s = sample_distinct(20, 10, &mut rng);
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10);
        }
    }
}
