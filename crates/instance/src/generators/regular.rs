//! Bipartite d-regular bounded preferences.

use super::from_men_adjacency;
use crate::Instance;
use asm_congest::SplitRng;

/// Generates a `d`-regular instance: `n` women and `n` men, every player
/// with exactly `d` acceptable partners, rankings uniformly random.
///
/// This is the *uniformly bounded* preference class of Floréen, Kaski,
/// Polishchuk and Suomela \[3\] (`α = 1` in the paper's terminology), used by
/// experiment F6 to compare ASM against truncated Gale–Shapley.
///
/// The graph is a randomly relabeled circulant: man `j` is adjacent to
/// women `π(j + t) mod n` for `t < d` where `π` is a random permutation,
/// then composed with a random permutation of the men. This guarantees a
/// simple `d`-regular bipartite graph for every `n ≥ d` (rankings, which is
/// what the algorithms are sensitive to, are fully random).
///
/// # Examples
///
/// ```
/// let inst = asm_instance::generators::regular(12, 4, 3);
/// assert_eq!(inst.num_edges(), 48);
/// assert_eq!(inst.alpha(), 1.0);
/// ```
///
/// # Panics
///
/// Panics if `d > n`.
pub fn regular(n: usize, d: usize, seed: u64) -> Instance {
    assert!(d <= n, "degree d = {d} cannot exceed n = {n}");
    let mut rng = SplitRng::new(seed).split(0x03, (n as u64) << 32 | d as u64);
    let mut woman_perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut woman_perm);
    let mut man_perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut man_perm);
    let mut men_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        men_adj[man_perm[j]] = (0..d).map(|t| woman_perm[(j + t) % n]).collect();
    }
    from_men_adjacency(n, n, men_adj, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_player_has_degree_d() {
        let inst = regular(10, 3, 1);
        for v in inst.ids().players() {
            assert_eq!(inst.degree(v), 3);
        }
    }

    #[test]
    fn d_equals_n_is_complete() {
        let inst = regular(6, 6, 1);
        assert!(inst.is_complete());
    }

    #[test]
    fn d_zero_is_empty() {
        let inst = regular(4, 0, 1);
        assert_eq!(inst.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn d_larger_than_n_panics() {
        regular(3, 4, 1);
    }

    #[test]
    fn graph_is_simple() {
        // from_men_adjacency -> Instance::from_prefs would reject duplicate
        // edges, so constructing at all proves simplicity; spot-check too.
        let inst = regular(9, 5, 42);
        let m0 = inst.ids().man(0);
        let mut ws: Vec<_> = inst.prefs(m0).ranked().to_vec();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), 5);
    }
}
