//! Complete uniformly random preferences.

use super::from_men_adjacency;
use crate::Instance;
use asm_congest::SplitRng;

/// Generates a complete instance: `n` women and `n` men, every player
/// ranking all `n` members of the opposite sex in an independent uniformly
/// random order.
///
/// Complete preferences are 1-almost-regular, so this is the headline input
/// class for `AlmostRegularASM` (Theorem 6).
///
/// # Examples
///
/// ```
/// let inst = asm_instance::generators::complete(8, 7);
/// assert!(inst.is_complete());
/// assert_eq!(inst.num_edges(), 64);
/// assert_eq!(inst.alpha(), 1.0);
/// ```
pub fn complete(n: usize, seed: u64) -> Instance {
    let mut rng = SplitRng::new(seed).split(0x01, n as u64);
    let men_adj = vec![(0..n).collect::<Vec<_>>(); n];
    from_men_adjacency(n, n, men_adj, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_degrees_equal_n() {
        let inst = complete(5, 3);
        for v in inst.ids().players() {
            assert_eq!(inst.degree(v), 5);
        }
    }

    #[test]
    fn rankings_are_not_all_identical() {
        // With n = 16 the probability all men share a ranking is ~0.
        let inst = complete(16, 3);
        let first = inst.prefs(inst.ids().man(0)).ranked().to_vec();
        let anyone_differs =
            (1..16).any(|j| inst.prefs(inst.ids().man(j)).ranked() != first.as_slice());
        assert!(anyone_differs);
    }

    #[test]
    fn n_zero_is_valid() {
        let inst = complete(0, 1);
        assert_eq!(inst.num_edges(), 0);
    }

    #[test]
    fn n_one_pairs_the_couple() {
        let inst = complete(1, 1);
        assert_eq!(inst.num_edges(), 1);
        assert_eq!(
            inst.prefs(inst.ids().man(0)).ranked(),
            &[inst.ids().woman(0)]
        );
    }
}
