//! Geometric (spatial) preferences.

use crate::{IdSpace, Instance, PreferenceList};
use asm_congest::{NodeId, SplitRng};

/// Generates a *geometric* instance: players are uniform random points in
/// the unit square, every player ranks the `d` nearest members of the
/// opposite side by distance, and only **mutually** near pairs become
/// edges (preferences must be symmetric).
///
/// This models physically embedded markets (the ride-hailing and
/// social-network scenarios of the paper's introduction): preferences are
/// *correlated* — nearby players agree about who is close — unlike the
/// independent uniform rankings of [`crate::generators::complete`].
/// Correlated preferences stress the quantile machinery differently:
/// contention clusters spatially.
///
/// Degrees are at most `d` but vary (mutuality filtering), so the men's
/// side is typically almost-regular with a small α.
///
/// # Examples
///
/// ```
/// let inst = asm_instance::generators::geometric(40, 8, 3);
/// let (lo, hi) = inst.men_degree_bounds().unwrap();
/// assert!(hi <= 8);
/// assert!(lo <= hi);
/// assert!(inst.num_edges() > 0);
/// ```
///
/// # Panics
///
/// Panics if `d > n`.
#[allow(clippy::needless_range_loop)] // parallel nearest-neighbor tables
pub fn geometric(n: usize, d: usize, seed: u64) -> Instance {
    assert!(d <= n, "degree d = {d} cannot exceed n = {n}");
    let mut rng = SplitRng::new(seed).split(0x07, (n as u64) << 32 | d as u64);
    let point = |rng: &mut SplitRng| (rng.next_f64(), rng.next_f64());
    let women: Vec<(f64, f64)> = (0..n).map(|_| point(&mut rng)).collect();
    let men: Vec<(f64, f64)> = (0..n).map(|_| point(&mut rng)).collect();

    let dist2 = |a: (f64, f64), b: (f64, f64)| {
        let (dx, dy) = (a.0 - b.0, a.1 - b.1);
        dx * dx + dy * dy
    };
    // k-nearest sets for both sides.
    let nearest = |from: &[(f64, f64)], to: &[(f64, f64)]| -> Vec<Vec<usize>> {
        from.iter()
            .map(|&p| {
                let mut order: Vec<usize> = (0..to.len()).collect();
                order.sort_by(|&a, &b| {
                    dist2(p, to[a])
                        .partial_cmp(&dist2(p, to[b]))
                        .expect("distances are finite")
                        .then(a.cmp(&b))
                });
                order.truncate(d);
                order
            })
            .collect()
    };
    let men_near = nearest(&men, &women); // men_near[j] = woman indices by distance
    let women_near = nearest(&women, &men);

    // Keep only mutual pairs, preserving each side's distance order.
    let ids = IdSpace::new(n, n);
    let mut prefs: Vec<PreferenceList> = Vec::with_capacity(2 * n);
    for i in 0..n {
        let list: Vec<NodeId> = women_near[i]
            .iter()
            .filter(|&&j| men_near[j].contains(&i))
            .map(|&j| ids.man(j))
            .collect();
        prefs.push(PreferenceList::new(list));
    }
    for j in 0..n {
        let list: Vec<NodeId> = men_near[j]
            .iter()
            .filter(|&&i| women_near[i].contains(&j))
            .map(|&i| ids.woman(i))
            .collect();
        prefs.push(PreferenceList::new(list));
    }
    Instance::from_prefs(ids, prefs).expect("mutual filtering preserves symmetry")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(geometric(20, 5, 9), geometric(20, 5, 9));
        assert_ne!(geometric(20, 5, 9), geometric(20, 5, 10));
    }

    #[test]
    fn degrees_bounded_by_d() {
        let inst = geometric(30, 6, 1);
        for v in inst.ids().players() {
            assert!(inst.degree(v) <= 6);
        }
    }

    #[test]
    fn preferences_ordered_by_distance_consistency() {
        // Symmetry is validated by from_prefs; spot-check mutuality.
        let inst = geometric(25, 4, 2);
        for (m, w) in inst.edges() {
            assert!(inst.rank(w, m).is_some());
        }
    }

    #[test]
    fn d_equals_n_is_near_complete() {
        let inst = geometric(6, 6, 3);
        assert!(inst.is_complete(), "with d = n, everyone is mutual");
    }

    #[test]
    fn alpha_is_moderate() {
        let inst = geometric(60, 8, 4);
        let a = inst.alpha();
        assert!(a.is_finite() || inst.men_degree_bounds().unwrap().0 == 0);
    }
}
