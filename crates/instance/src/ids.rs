//! Player identities: genders and the node-id convention.

use asm_congest::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two sides of the marriage market.
///
/// Following the paper, `X` is the set of women and `Y` the set of men; men
/// propose and women accept/reject. The asymmetry is purely protocol-level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Gender {
    /// A member of `X` (receives proposals).
    Woman,
    /// A member of `Y` (makes proposals).
    Man,
}

impl Gender {
    /// The other gender.
    ///
    /// ```
    /// use asm_instance::Gender;
    /// assert_eq!(Gender::Woman.opposite(), Gender::Man);
    /// assert_eq!(Gender::Man.opposite(), Gender::Woman);
    /// ```
    pub fn opposite(self) -> Gender {
        match self {
            Gender::Woman => Gender::Man,
            Gender::Man => Gender::Woman,
        }
    }
}

impl fmt::Display for Gender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gender::Woman => write!(f, "woman"),
            Gender::Man => write!(f, "man"),
        }
    }
}

/// Maps between `(gender, side index)` pairs and dense [`NodeId`]s.
///
/// The convention used throughout the workspace: women occupy node ids
/// `0..num_women`, men occupy `num_women..num_women + num_men`.
///
/// # Examples
///
/// ```
/// use asm_instance::{Gender, IdSpace};
///
/// let ids = IdSpace::new(3, 2);
/// let w1 = ids.woman(1);
/// let m0 = ids.man(0);
/// assert_eq!(w1.index(), 1);
/// assert_eq!(m0.index(), 3);
/// assert_eq!(ids.gender(m0), Gender::Man);
/// assert_eq!(ids.side_index(m0), 0);
/// assert_eq!(ids.num_players(), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdSpace {
    num_women: usize,
    num_men: usize,
}

impl IdSpace {
    /// Creates the id space for `num_women` women and `num_men` men.
    pub fn new(num_women: usize, num_men: usize) -> Self {
        IdSpace { num_women, num_men }
    }

    /// Number of women.
    pub fn num_women(&self) -> usize {
        self.num_women
    }

    /// Number of men.
    pub fn num_men(&self) -> usize {
        self.num_men
    }

    /// Total number of players.
    pub fn num_players(&self) -> usize {
        self.num_women + self.num_men
    }

    /// Node id of the `i`-th woman.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_women`.
    pub fn woman(&self, i: usize) -> NodeId {
        assert!(i < self.num_women, "woman index {i} out of range");
        NodeId::new(i as u32)
    }

    /// Node id of the `j`-th man.
    ///
    /// # Panics
    ///
    /// Panics if `j >= num_men`.
    pub fn man(&self, j: usize) -> NodeId {
        assert!(j < self.num_men, "man index {j} out of range");
        NodeId::new((self.num_women + j) as u32)
    }

    /// Gender of a node id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn gender(&self, v: NodeId) -> Gender {
        assert!(v.index() < self.num_players(), "node {v} out of range");
        if v.index() < self.num_women {
            Gender::Woman
        } else {
            Gender::Man
        }
    }

    /// Whether `v` denotes a man.
    pub fn is_man(&self, v: NodeId) -> bool {
        self.gender(v) == Gender::Man
    }

    /// Whether `v` denotes a woman.
    pub fn is_woman(&self, v: NodeId) -> bool {
        self.gender(v) == Gender::Woman
    }

    /// Index of `v` within its own side.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn side_index(&self, v: NodeId) -> usize {
        match self.gender(v) {
            Gender::Woman => v.index(),
            Gender::Man => v.index() - self.num_women,
        }
    }

    /// Iterates over all women's node ids.
    pub fn women(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_women).map(|i| NodeId::new(i as u32))
    }

    /// Iterates over all men's node ids.
    pub fn men(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_women..self.num_players()).map(|i| NodeId::new(i as u32))
    }

    /// Iterates over all players' node ids (women first).
    pub fn players(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_players()).map(|i| NodeId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_layout_women_then_men() {
        let ids = IdSpace::new(2, 3);
        assert_eq!(ids.woman(0).index(), 0);
        assert_eq!(ids.woman(1).index(), 1);
        assert_eq!(ids.man(0).index(), 2);
        assert_eq!(ids.man(2).index(), 4);
    }

    #[test]
    fn gender_round_trip() {
        let ids = IdSpace::new(2, 3);
        for i in 0..2 {
            let v = ids.woman(i);
            assert_eq!(ids.gender(v), Gender::Woman);
            assert_eq!(ids.side_index(v), i);
            assert!(ids.is_woman(v));
        }
        for j in 0..3 {
            let v = ids.man(j);
            assert_eq!(ids.gender(v), Gender::Man);
            assert_eq!(ids.side_index(v), j);
            assert!(ids.is_man(v));
        }
    }

    #[test]
    fn iterators_cover_everyone() {
        let ids = IdSpace::new(2, 3);
        assert_eq!(ids.women().count(), 2);
        assert_eq!(ids.men().count(), 3);
        assert_eq!(ids.players().count(), 5);
        let all: Vec<_> = ids.players().collect();
        let mut concat: Vec<_> = ids.women().collect();
        concat.extend(ids.men());
        assert_eq!(all, concat);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn woman_out_of_range_panics() {
        IdSpace::new(1, 1).woman(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gender_out_of_range_panics() {
        IdSpace::new(1, 1).gender(NodeId::new(2));
    }

    #[test]
    fn opposite_is_involution() {
        for g in [Gender::Woman, Gender::Man] {
            assert_eq!(g.opposite().opposite(), g);
        }
    }

    #[test]
    fn empty_sides() {
        let ids = IdSpace::new(0, 0);
        assert_eq!(ids.num_players(), 0);
        assert_eq!(ids.players().count(), 0);
    }
}
