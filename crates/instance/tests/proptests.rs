//! Property-based tests of instance structure: generator invariants, the
//! text format, gender swapping, and the hospitals/residents reduction.

use asm_congest::SplitRng;
use asm_instance::{generators, parse_text, to_text, HospitalResidents, Instance};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    (0u8..9, 2usize..20, any::<u64>()).prop_map(|(family, n, seed)| match family {
        0 => generators::complete(n, seed),
        1 => generators::erdos_renyi(n, n + 3, 0.35, seed),
        2 => generators::regular(n, (n / 2).max(1), seed),
        3 => generators::zipf(n, (n / 3).max(1), 1.4, seed),
        4 => generators::almost_regular(n.max(4), 2, 2.0, seed),
        5 => generators::adversarial_chain(n),
        6 => generators::master_list(n, seed),
        7 => generators::geometric(n, (n / 2).max(1), seed),
        _ => generators::noisy_master(n, 1.5, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symmetry_and_edge_count_hold(inst in arb_instance()) {
        let men_sum: usize = inst.ids().men().map(|m| inst.degree(m)).sum();
        let women_sum: usize = inst.ids().women().map(|w| inst.degree(w)).sum();
        prop_assert_eq!(men_sum, inst.num_edges());
        prop_assert_eq!(women_sum, inst.num_edges());
        for (m, w) in inst.edges() {
            prop_assert!(inst.prefs(w).contains(m));
        }
    }

    #[test]
    fn text_format_round_trips(inst in arb_instance()) {
        let text = to_text(&inst);
        prop_assert_eq!(parse_text(&text).unwrap(), inst);
    }

    #[test]
    fn json_round_trips(inst in arb_instance()) {
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn swap_is_an_involution_preserving_ranks(inst in arb_instance()) {
        let swapped = inst.swap_genders();
        prop_assert_eq!(swapped.num_edges(), inst.num_edges());
        prop_assert_eq!(swapped.swap_genders(), inst.clone());
        for (m, w) in inst.edges() {
            prop_assert_eq!(
                inst.rank(m, w),
                swapped.rank(inst.swap_node(m), inst.swap_node(w))
            );
        }
    }

    #[test]
    fn topology_agrees_with_instance(inst in arb_instance()) {
        let topo = inst.topology();
        prop_assert_eq!(topo.num_edges(), inst.num_edges());
        for (m, w) in inst.edges() {
            prop_assert!(topo.has_edge(m, w));
        }
    }

    #[test]
    fn hr_reduction_is_valid(
        residents in 1usize..10,
        hospitals in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitRng::new(seed);
        let capacities: Vec<usize> = (0..hospitals).map(|_| rng.next_range(4)).collect();
        // Each resident applies to a random nonempty hospital subset.
        let mut resident_prefs: Vec<Vec<usize>> = Vec::new();
        let mut hospital_prefs: Vec<Vec<usize>> = vec![Vec::new(); hospitals];
        for r in 0..residents {
            let mut prefs: Vec<usize> =
                (0..hospitals).filter(|_| rng.next_bool(0.6)).collect();
            rng.shuffle(&mut prefs);
            for &h in &prefs {
                hospital_prefs[h].push(r);
            }
            resident_prefs.push(prefs);
        }
        for list in &mut hospital_prefs {
            rng.shuffle(list);
        }
        let hr = HospitalResidents { resident_prefs: resident_prefs.clone(), hospital_prefs, capacities: capacities.clone() };
        let (inst, map) = hr.to_instance().unwrap();
        prop_assert_eq!(map.num_slots(), capacities.iter().sum::<usize>());
        prop_assert_eq!(inst.ids().num_men(), residents);
        // Every resident's expanded list length = sum of applied capacities.
        for (r, prefs) in resident_prefs.iter().enumerate() {
            let expect: usize = prefs.iter().map(|&h| capacities[h]).sum();
            prop_assert_eq!(inst.degree(inst.ids().man(r)), expect);
        }
    }
}
