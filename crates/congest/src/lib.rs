//! # asm-congest: a synchronous CONGEST-model simulator
//!
//! This crate is the network substrate for the `almost-stable` workspace, a
//! reproduction of Ostrovsky & Rosenbaum, *Fast Distributed Almost Stable
//! Matchings* (PODC 2015). It simulates the CONGEST model of Peleg as used
//! in Section 2.2 of the paper:
//!
//! * computation proceeds in synchronous **rounds**; each round a processor
//!   receives the messages sent to it in the previous round, performs
//!   unbounded local computation, and sends one message per neighbor;
//! * messages are limited to `O(log n)` bits (enforceable via
//!   [`Network::set_bit_budget`]);
//! * messages travel only along edges of the fixed communication graph
//!   ([`Topology`]); sending to a non-neighbor is an error;
//! * complexity is measured in rounds ([`NetStats`]).
//!
//! The engine supports *quiescence fast-forwarding* ([`Network::run_phase`])
//! so that worst-case round schedules with long silent suffixes — pervasive
//! in the paper's algorithms, whose loop bounds are conservative — can be
//! simulated in time proportional to the communication that actually
//! happens, while still reporting the nominal schedule length.
//!
//! # Examples
//!
//! A protocol is a type implementing [`Process`]; the [`Network`] couples
//! one process per node with a [`Topology`] and steps them in lockstep:
//!
//! ```
//! use asm_congest::{Envelope, Network, NodeId, Outbox, Payload, Process, Topology};
//!
//! /// Each node learns the smallest id among its neighbors.
//! struct MinOfNeighbors {
//!     neighbors: Vec<NodeId>,
//!     started: bool,
//!     min_seen: Option<NodeId>,
//! }
//!
//! #[derive(Clone, Debug)]
//! struct Hello(NodeId);
//! impl Payload for Hello {
//!     fn bits(&self) -> usize { 32 }
//! }
//!
//! impl Process for MinOfNeighbors {
//!     type Msg = Hello;
//!     fn on_round(&mut self, inbox: &[Envelope<Hello>], outbox: &mut Outbox<Hello>) {
//!         if !self.started {
//!             self.started = true;
//!             let me = outbox.src();
//!             for &nb in &self.neighbors {
//!                 outbox.send(nb, Hello(me));
//!             }
//!         }
//!         for env in inbox {
//!             let candidate = env.payload.0;
//!             self.min_seen = Some(self.min_seen.map_or(candidate, |m| m.min(candidate)));
//!         }
//!     }
//! }
//!
//! let topo = Topology::from_edges(3, [(0, 1), (1, 2)])?;
//! let procs = (0..3)
//!     .map(|i| MinOfNeighbors {
//!         neighbors: topo.neighbors(NodeId::new(i)).to_vec(),
//!         started: false,
//!         min_seen: None,
//!     })
//!     .collect();
//! let mut net = Network::new(topo, procs)?;
//! net.run_until_quiescent(10)?;
//! assert_eq!(net.node(NodeId::new(2)).min_seen, Some(NodeId::new(1)));
//! assert_eq!(net.node(NodeId::new(1)).min_seen, Some(NodeId::new(0)));
//! # Ok::<(), asm_congest::CongestError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod error;
mod graph;
mod message;
mod network;
mod node;
mod rng;
mod stats;
mod trace;

pub use driver::RoundDriver;
pub use error::CongestError;
pub use graph::Topology;
pub use message::{Envelope, Outbox, Payload};
pub use network::{Network, Process, RoundOutcome};
pub use node::NodeId;
pub use rng::SplitRng;
pub use stats::NetStats;
pub use trace::{Trace, TraceEvent};
