//! Simulator error types.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised by the CONGEST network simulator.
///
/// All variants indicate a *protocol bug* in the code driving the network
/// (sending along a non-edge, oversized messages, malformed topology), not a
/// runtime condition a caller is expected to recover from — but they are
/// surfaced as `Result`s so tests can assert on them.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CongestError {
    /// A process attempted to send a message to a node that is not one of
    /// its neighbors in the communication graph.
    NotANeighbor {
        /// Sending node.
        src: NodeId,
        /// Intended recipient.
        dst: NodeId,
    },
    /// A message exceeded the configured per-message bit budget.
    MessageTooLarge {
        /// Sending node.
        src: NodeId,
        /// Estimated payload size in bits.
        bits: usize,
        /// The configured budget in bits.
        budget: usize,
    },
    /// An edge endpoint was out of range when building a topology.
    NodeOutOfRange {
        /// The offending id.
        id: NodeId,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A self-loop or duplicate edge was supplied when building a topology.
    InvalidEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// The round budget of [`crate::Network::run_phase`] was exhausted while
    /// messages were still in flight.
    PhaseBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::NotANeighbor { src, dst } => {
                write!(f, "node {src} sent a message to non-neighbor {dst}")
            }
            CongestError::MessageTooLarge { src, bits, budget } => write!(
                f,
                "node {src} sent a {bits}-bit message exceeding the {budget}-bit CONGEST budget"
            ),
            CongestError::NodeOutOfRange { id, nodes } => {
                write!(f, "node {id} out of range for a {nodes}-node graph")
            }
            CongestError::InvalidEdge { u, v } => {
                write!(f, "invalid edge ({u}, {v}): self-loop or duplicate")
            }
            CongestError::PhaseBudgetExhausted { budget } => {
                write!(
                    f,
                    "phase round budget of {budget} exhausted with messages in flight"
                )
            }
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CongestError::NotANeighbor {
            src: NodeId::new(1),
            dst: NodeId::new(2),
        };
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v2"));

        let e = CongestError::MessageTooLarge {
            src: NodeId::new(0),
            bits: 4096,
            budget: 64,
        };
        assert!(e.to_string().contains("4096"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CongestError>();
    }
}
