//! Round and traffic accounting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cumulative statistics for a simulated network execution.
///
/// `rounds` counts every synchronous communication round that was actually
/// simulated. `silent_rounds_skipped` counts rounds the simulator
/// fast-forwarded because no message was in flight and (by the event-driven
/// protocol contract, see [`crate::Network::run_phase`]) none could be sent
/// before the next phase boundary; `rounds + silent_rounds_skipped` is the
/// *nominal* schedule length a worst-case deployment would use.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Rounds actually simulated (at least one node stepped).
    pub rounds: u64,
    /// Rounds skipped by quiescence fast-forwarding.
    pub silent_rounds_skipped: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total payload bits delivered.
    pub bits: u64,
    /// Largest single payload observed, in bits.
    pub max_message_bits: usize,
    /// Maximum number of messages delivered in any single round.
    pub max_messages_per_round: u64,
}

impl NetStats {
    /// Total rounds of the nominal (non-fast-forwarded) schedule.
    pub fn nominal_rounds(&self) -> u64 {
        self.rounds + self.silent_rounds_skipped
    }

    /// Merges another run's statistics into this one (round counts add,
    /// maxima take the max).
    pub fn absorb(&mut self, other: &NetStats) {
        self.rounds += other.rounds;
        self.silent_rounds_skipped += other.silent_rounds_skipped;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.max_messages_per_round = self
            .max_messages_per_round
            .max(other.max_messages_per_round);
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds ({} nominal), {} msgs, {} bits, max msg {} bits",
            self.rounds,
            self.nominal_rounds(),
            self.messages,
            self.bits,
            self.max_message_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_and_maxes() {
        let mut a = NetStats {
            rounds: 10,
            silent_rounds_skipped: 5,
            messages: 100,
            bits: 1000,
            max_message_bits: 16,
            max_messages_per_round: 30,
        };
        let b = NetStats {
            rounds: 1,
            silent_rounds_skipped: 2,
            messages: 3,
            bits: 4,
            max_message_bits: 64,
            max_messages_per_round: 2,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 11);
        assert_eq!(a.nominal_rounds(), 18);
        assert_eq!(a.messages, 103);
        assert_eq!(a.bits, 1004);
        assert_eq!(a.max_message_bits, 64);
        assert_eq!(a.max_messages_per_round, 30);
    }

    #[test]
    fn display_mentions_rounds_and_bits() {
        let s = NetStats::default().to_string();
        assert!(s.contains("rounds"));
        assert!(s.contains("bits"));
    }
}
