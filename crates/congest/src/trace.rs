//! Optional message tracing for protocol debugging.

use crate::NodeId;
use std::fmt;

/// One delivered message, recorded by the tracer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round in which the message was delivered.
    pub round: u64,
    /// Sender.
    pub src: NodeId,
    /// Recipient.
    pub dst: NodeId,
    /// `Debug` rendering of the payload.
    pub payload: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[r{}] {} -> {}: {}",
            self.round, self.src, self.dst, self.payload
        )
    }
}

/// A bounded buffer of [`TraceEvent`]s.
///
/// Tracing is off by default on [`crate::Network`]; enabling it records the
/// most recent `capacity` deliveries, which is usually enough to diagnose a
/// misbehaving protocol without holding an entire execution in memory.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace buffer retaining at most `capacity` recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            if self.capacity == 0 {
                self.dropped += 1;
                return;
            }
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total deliveries ever recorded: retained events plus evicted ones.
    ///
    /// On a [`crate::Network`] this must equal the messages delivered since
    /// tracing was enabled, which is what makes the trace a trustworthy
    /// cross-check for [`crate::RoundOutcome`] accounting.
    pub fn total_recorded(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> TraceEvent {
        TraceEvent {
            round,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            payload: "X".into(),
        }
    }

    #[test]
    fn retains_most_recent() {
        let mut t = Trace::with_capacity(2);
        t.record(ev(1));
        t.record(ev(2));
        t.record(ev(3));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].round, 2);
        assert_eq!(t.events()[1].round, 3);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::with_capacity(0);
        t.record(ev(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn event_display() {
        assert_eq!(ev(4).to_string(), "[r4] v0 -> v1: X");
    }
}
