//! Deterministic, splittable randomness.
//!
//! Randomized distributed algorithms (Israeli–Itai, `RandASM`) need each
//! processor to draw private random bits. For reproducibility — and so that
//! the fast vector engine and the message-passing CONGEST engine of
//! `asm-core` produce *bit-identical* executions from the same seed — all
//! randomness in this workspace flows through [`SplitRng`], a small
//! splitmix64-based generator that can be deterministically *split* by a
//! key such as `(node id, phase counter)`.
//!
//! We deliberately do not use the `rand` crate here: `rand`'s small RNGs do
//! not guarantee a stable stream across versions, and the engine-equivalence
//! property tests depend on stability.

/// The splitmix64 step: advances the state by the golden-gamma constant and
/// returns a scrambled output word.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, splittable pseudo-random generator.
///
/// Streams obtained via [`SplitRng::split`] with distinct keys are
/// statistically independent for the purposes of this workspace's
/// simulations (each split re-seeds through two scrambling rounds of
/// splitmix64).
///
/// # Examples
///
/// ```
/// use asm_congest::SplitRng;
///
/// let root = SplitRng::new(42);
/// let a = root.split(1, 0).next_range(100);
/// let b = root.split(2, 0).next_range(100);
/// // Same construction always yields the same values.
/// assert_eq!(a, root.split(1, 0).next_range(100));
/// assert!(a < 100 && b < 100);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitRng {
    state: u64,
}

impl SplitRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        // Scramble once so that small consecutive seeds diverge immediately.
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        splitmix64(&mut state);
        SplitRng { state }
    }

    /// Derives an independent generator keyed by `(a, b)`.
    ///
    /// Splitting does not advance `self`; it is a pure function of the
    /// current state and the key, so protocol code can hand out per-node,
    /// per-phase streams without threading mutable state around.
    pub fn split(&self, a: u64, b: u64) -> SplitRng {
        let mut state = self.state ^ a.wrapping_mul(0xA076_1D64_78BD_642F);
        splitmix64(&mut state);
        state ^= b.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        splitmix64(&mut state);
        SplitRng { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Returns a uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_range bound must be positive");
        // Lemire's multiply-shift rejection method for unbiased sampling.
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_range(slice.len())])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_range(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitRng::new(7);
        let mut b = SplitRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitRng::new(1);
        let mut b = SplitRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_pure() {
        let root = SplitRng::new(99);
        let x = root.split(3, 4);
        let y = root.split(3, 4);
        assert_eq!(x, y);
        assert_ne!(root.split(3, 5), x);
        assert_ne!(root.split(4, 4), x);
    }

    #[test]
    fn next_range_is_in_bounds_and_covers() {
        let mut rng = SplitRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_range(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_range_zero_panics() {
        SplitRng::new(0).next_range(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitRng::new(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bool_matches_probability_roughly() {
        let mut rng = SplitRng::new(13);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SplitRng::new(17);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }
}
