//! The synchronous round engine.

use crate::{
    CongestError, Envelope, NetStats, NodeId, Outbox, Payload, Topology, Trace, TraceEvent,
};

/// A processor participating in a synchronous CONGEST execution.
///
/// Each round the network calls [`Process::on_round`] on every node with the
/// messages sent to it in the previous round; the node performs arbitrary
/// local computation and queues messages for its neighbors. This matches the
/// three-stage round structure of Peleg's CONGEST model as used in Section
/// 2.2 of the paper.
///
/// **Event-driven contract.** For the quiescence fast-forwarding of
/// [`Network::run_phase`] to be sound, a process may send messages only (a)
/// in the round a *phase* begins (the driver flips phase state between
/// `run_phase` calls), or (b) in reaction to messages received. Under this
/// contract a globally silent round implies silence until the next phase
/// boundary, so skipping the rest of the phase cannot change any state.
pub trait Process {
    /// Message type exchanged by this protocol.
    type Msg: Payload;

    /// Executes one synchronous round: receive `inbox`, compute locally,
    /// queue outgoing messages on `outbox`.
    fn on_round(&mut self, inbox: &[Envelope<Self::Msg>], outbox: &mut Outbox<Self::Msg>);
}

/// Outcome of a single simulated round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Messages delivered to nodes at the start of this round.
    pub delivered: u64,
    /// Messages sent during this round (in flight for the next round).
    pub sent: u64,
}

impl RoundOutcome {
    /// Whether the round had any communication at all.
    pub fn active(&self) -> bool {
        self.delivered > 0 || self.sent > 0
    }
}

/// A synchronous CONGEST network: a [`Topology`] plus one [`Process`] per
/// node.
///
/// # Examples
///
/// A two-node ping-pong protocol:
///
/// ```
/// use asm_congest::{Envelope, Network, NodeId, Outbox, Payload, Process, Topology};
///
/// #[derive(Clone, Debug)]
/// struct Ping(u32);
/// impl Payload for Ping {
///     fn bits(&self) -> usize { 32 }
/// }
///
/// struct Player { id: NodeId, peer: NodeId, kicked: bool, hops: u32 }
/// impl Process for Player {
///     type Msg = Ping;
///     fn on_round(&mut self, inbox: &[Envelope<Ping>], outbox: &mut Outbox<Ping>) {
///         if self.id.index() == 0 && !self.kicked {
///             self.kicked = true;
///             outbox.send(self.peer, Ping(0));
///         }
///         for env in inbox {
///             self.hops = env.payload.0;
///             if self.hops < 5 {
///                 outbox.send(env.src, Ping(self.hops + 1));
///             }
///         }
///     }
/// }
///
/// let topo = Topology::from_edges(2, [(0, 1)])?;
/// let procs = vec![
///     Player { id: NodeId::new(0), peer: NodeId::new(1), kicked: false, hops: 0 },
///     Player { id: NodeId::new(1), peer: NodeId::new(0), kicked: false, hops: 0 },
/// ];
/// let mut net = Network::new(topo, procs)?;
/// net.run_until_quiescent(100)?;
/// assert_eq!(net.node(NodeId::new(1)).hops + net.node(NodeId::new(0)).hops, 9);
/// assert_eq!(net.stats().messages, 6);
/// # Ok::<(), asm_congest::CongestError>(())
/// ```
#[derive(Debug)]
pub struct Network<P: Process> {
    topo: Topology,
    procs: Vec<P>,
    /// Messages awaiting delivery at the start of the next round, per node.
    inboxes: Vec<Vec<Envelope<P::Msg>>>,
    in_flight: u64,
    stats: NetStats,
    bit_budget: Option<usize>,
    trace: Option<Trace>,
    /// `stats.messages` at the moment tracing was enabled, so the trace's
    /// [`Trace::total_recorded`] can be reconciled against the delivery
    /// counter even when tracing starts mid-run.
    trace_baseline: u64,
    parallelism: usize,
}

impl<P: Process> Network<P> {
    /// Creates a network with one process per topology node.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NodeOutOfRange`] if `procs.len()` differs
    /// from the topology's node count.
    pub fn new(topo: Topology, procs: Vec<P>) -> Result<Self, CongestError> {
        if procs.len() != topo.num_nodes() {
            return Err(CongestError::NodeOutOfRange {
                id: NodeId::new(procs.len() as u32),
                nodes: topo.num_nodes(),
            });
        }
        let n = topo.num_nodes();
        Ok(Network {
            topo,
            procs,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            in_flight: 0,
            stats: NetStats::default(),
            bit_budget: None,
            trace: None,
            trace_baseline: 0,
            parallelism: 1,
        })
    }

    /// Sets the worker count [`Network::step_par`] uses (clamped to
    /// ≥ 1; 1 means fully serial). Purely an execution knob: the
    /// simulated protocol, its statistics, and its trace are identical
    /// for every value.
    pub fn set_parallelism(&mut self, workers: usize) -> &mut Self {
        self.parallelism = workers.max(1);
        self
    }

    /// The configured worker count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Enforces the CONGEST per-message budget: any payload whose
    /// [`Payload::bits`] exceeds `bits` makes the round fail.
    ///
    /// A common choice is a small multiple of [`NodeId::bits_for`]`(n)`.
    pub fn set_bit_budget(&mut self, bits: usize) -> &mut Self {
        self.bit_budget = Some(bits);
        self
    }

    /// Enables tracing of the most recent `capacity` message deliveries.
    pub fn set_trace_capacity(&mut self, capacity: usize) -> &mut Self {
        self.trace = Some(Trace::with_capacity(capacity));
        self.trace_baseline = self.stats.messages;
        self
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of messages currently in flight (sent, not yet delivered).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Immutable access to the process at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &P {
        &self.procs[id.index()]
    }

    /// Mutable access to the process at `id`, for driver-coordinated phase
    /// changes between rounds.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.procs[id.index()]
    }

    /// All processes, indexed by node id.
    pub fn nodes(&self) -> &[P] {
        &self.procs
    }

    /// Mutable access to all processes (driver phase changes).
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.procs
    }

    /// Consumes the network, returning its processes.
    pub fn into_nodes(self) -> Vec<P> {
        self.procs
    }

    /// Simulates one synchronous round: deliver all in-flight messages, run
    /// every process, validate and collect the messages they send.
    ///
    /// # Errors
    ///
    /// Fails if a process sends to a non-neighbor or exceeds the bit budget.
    pub fn step(&mut self) -> Result<RoundOutcome, CongestError> {
        let delivered = self.begin_round();

        // Stage 1+2+3 per node: receive, compute, send. Sends are buffered
        // into `staged` so no node sees a message sent this same round.
        let mut staged: Vec<Envelope<P::Msg>> = Vec::new();
        for (i, proc_) in self.procs.iter_mut().enumerate() {
            let inbox = std::mem::take(&mut self.inboxes[i]);
            let mut outbox = Outbox::new(NodeId::new(i as u32));
            proc_.on_round(&inbox, &mut outbox);
            staged.extend(outbox.into_queued());
        }

        self.finish_round(staged, delivered)
    }

    /// Simulates one synchronous round with node computation fanned out
    /// over the worker count set by [`Network::set_parallelism`].
    ///
    /// Nodes hold disjoint state, so within a round they may step in any
    /// order; the round boundary is the only synchronization point the
    /// CONGEST model has. To keep the execution bit-identical to
    /// [`Network::step`], each node's outgoing messages are collected
    /// into a per-node slot and merged **in node-id order** — exactly
    /// the order the serial loop produces — before delivery. Delivery
    /// accounting (trace, bit statistics) also happens in node-id order,
    /// on the calling thread.
    ///
    /// With parallelism 1 this *is* [`Network::step`].
    ///
    /// # Errors
    ///
    /// As for [`Network::step`].
    pub fn step_par(&mut self) -> Result<RoundOutcome, CongestError>
    where
        P: Send,
        P::Msg: Send,
    {
        if self.parallelism <= 1 {
            return self.step();
        }
        let delivered = self.begin_round();

        let n = self.procs.len();
        let workers = self.parallelism.min(n.max(1));
        let chunk = n.div_ceil(workers);
        // One outbox slot per node, filled by whichever worker owns the
        // node's contiguous chunk; merged below in node order.
        let mut slots: Vec<Vec<Envelope<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        std::thread::scope(|scope| {
            let proc_chunks = self.procs.chunks_mut(chunk);
            let inbox_chunks = self.inboxes.chunks_mut(chunk);
            let slot_chunks = slots.chunks_mut(chunk);
            for (ci, ((procs, inboxes), out)) in
                proc_chunks.zip(inbox_chunks).zip(slot_chunks).enumerate()
            {
                let base = ci * chunk;
                scope.spawn(move || {
                    for (off, (proc_, inbox_slot)) in
                        procs.iter_mut().zip(inboxes.iter_mut()).enumerate()
                    {
                        let inbox = std::mem::take(inbox_slot);
                        let mut outbox = Outbox::new(NodeId::new((base + off) as u32));
                        proc_.on_round(&inbox, &mut outbox);
                        out[off] = outbox.into_queued();
                    }
                });
            }
        });

        let mut staged: Vec<Envelope<P::Msg>> = Vec::new();
        for slot in slots {
            staged.extend(slot);
        }
        self.finish_round(staged, delivered)
    }

    /// Delivery accounting at the top of a round: message counters,
    /// per-payload bit statistics, and the trace, all in node-id order.
    fn begin_round(&mut self) -> u64 {
        let round = self.stats.rounds;
        let delivered = self.in_flight;
        self.stats.messages += delivered;
        self.stats.max_messages_per_round = self.stats.max_messages_per_round.max(delivered);
        for inbox in &self.inboxes {
            if let Some(trace) = self.trace.as_mut() {
                for env in inbox {
                    trace.record(TraceEvent {
                        round,
                        src: env.src,
                        dst: env.dst,
                        payload: format!("{:?}", env.payload),
                    });
                }
            }
            for env in inbox {
                self.stats.bits += env.payload.bits() as u64;
                self.stats.max_message_bits = self.stats.max_message_bits.max(env.payload.bits());
            }
        }
        if let Some(trace) = self.trace.as_ref() {
            // Every delivery since tracing began must have been recorded
            // exactly once; the in-flight counter and the trace are
            // independent books over the same deliveries.
            debug_assert_eq!(
                trace.total_recorded(),
                self.stats.messages - self.trace_baseline,
                "trace records diverged from delivery accounting"
            );
        }
        delivered
    }

    /// Validates and enqueues the round's staged messages for delivery
    /// next round.
    fn finish_round(
        &mut self,
        staged: Vec<Envelope<P::Msg>>,
        delivered: u64,
    ) -> Result<RoundOutcome, CongestError> {
        let sent = staged.len() as u64;
        for env in staged {
            if !self.topo.has_edge(env.src, env.dst) {
                return Err(CongestError::NotANeighbor {
                    src: env.src,
                    dst: env.dst,
                });
            }
            if let Some(budget) = self.bit_budget {
                let bits = env.payload.bits();
                if bits > budget {
                    return Err(CongestError::MessageTooLarge {
                        src: env.src,
                        bits,
                        budget,
                    });
                }
            }
            self.inboxes[env.dst.index()].push(env);
        }
        self.in_flight = sent;
        self.stats.rounds += 1;
        Ok(RoundOutcome { delivered, sent })
    }

    /// Runs one protocol *phase* with a nominal round budget.
    ///
    /// Executes rounds until the network goes silent (a round that neither
    /// delivered nor sent any message), then credits the unused remainder of
    /// `budget` to [`NetStats::silent_rounds_skipped`]. Under the
    /// event-driven contract on [`Process`] this is observationally
    /// equivalent to simulating all `budget` rounds.
    ///
    /// Returns the number of rounds actually simulated.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::PhaseBudgetExhausted`] if messages are still
    /// in flight after `budget` rounds, and propagates validation errors
    /// from [`Network::step`].
    pub fn run_phase(&mut self, budget: u64) -> Result<u64, CongestError> {
        let mut used = 0;
        while used < budget {
            let outcome = self.step()?;
            used += 1;
            if !outcome.active() {
                // This round was itself silent; don't bill it.
                used -= 1;
                self.stats.rounds -= 1;
                break;
            }
            if outcome.sent == 0 {
                break; // Delivered the last in-flight messages; now silent.
            }
        }
        if self.in_flight > 0 {
            return Err(CongestError::PhaseBudgetExhausted { budget });
        }
        self.stats.silent_rounds_skipped += budget - used;
        Ok(used)
    }

    /// Runs until a fully silent round, without crediting skipped rounds.
    ///
    /// Returns the number of active rounds simulated.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::PhaseBudgetExhausted`] if the network is
    /// still active after `max_rounds` (a likely livelock), and propagates
    /// validation errors from [`Network::step`].
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> Result<u64, CongestError> {
        let mut used = 0;
        loop {
            if used >= max_rounds {
                return Err(CongestError::PhaseBudgetExhausted { budget: max_rounds });
            }
            let outcome = self.step()?;
            used += 1;
            if !outcome.active() {
                used -= 1;
                self.stats.rounds -= 1;
                return Ok(used);
            }
            if outcome.sent == 0 {
                return Ok(used);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl Payload for Num {
        fn bits(&self) -> usize {
            64 - self.0.leading_zeros() as usize + 1
        }
    }

    /// Sends `initial` greetings to all neighbors in the first round; echoes
    /// back decremented values until they reach zero.
    struct Echo {
        id: NodeId,
        neighbors: Vec<NodeId>,
        initial: Option<u64>,
        received: u64,
    }

    impl Process for Echo {
        type Msg = Num;
        fn on_round(&mut self, inbox: &[Envelope<Num>], outbox: &mut Outbox<Num>) {
            if let Some(v) = self.initial.take() {
                for &nb in &self.neighbors {
                    outbox.send(nb, Num(v));
                }
            }
            for env in inbox {
                self.received += 1;
                if env.payload.0 > 0 {
                    outbox.send(env.src, Num(env.payload.0 - 1));
                }
            }
        }
    }

    fn echo_net(n: usize, edges: Vec<(u32, u32)>, initial: &[(u32, u64)]) -> Network<Echo> {
        let topo = Topology::from_edges(n, edges).unwrap();
        let procs = (0..n)
            .map(|i| {
                let id = NodeId::new(i as u32);
                Echo {
                    id,
                    neighbors: topo.neighbors(id).to_vec(),
                    initial: initial
                        .iter()
                        .find(|&&(who, _)| who == i as u32)
                        .map(|&(_, v)| v),
                    received: 0,
                }
            })
            .collect();
        let _ = &procs;
        Network::new(topo, procs).unwrap()
    }

    #[test]
    fn ping_pong_terminates_with_exact_counts() {
        let mut net = echo_net(2, vec![(0, 1)], &[(0, 3)]);
        let rounds = net.run_until_quiescent(100).unwrap();
        // Messages: 3, 2, 1, 0 -> 4 messages over 4 delivery rounds + the
        // initial send round.
        assert_eq!(net.stats().messages, 4);
        assert_eq!(rounds, 5);
        assert_eq!(net.node(NodeId::new(0)).received, 2);
        assert_eq!(net.node(NodeId::new(1)).received, 2);
    }

    #[test]
    fn run_phase_credits_skipped_rounds() {
        let mut net = echo_net(2, vec![(0, 1)], &[(0, 1)]);
        let used = net.run_phase(50).unwrap();
        assert!(used < 50);
        assert_eq!(net.stats().nominal_rounds(), 50);
        // A second phase with nothing to do costs zero simulated rounds.
        let used2 = net.run_phase(10).unwrap();
        assert_eq!(used2, 0);
        assert_eq!(net.stats().nominal_rounds(), 60);
    }

    #[test]
    fn phase_budget_exhaustion_is_detected() {
        let mut net = echo_net(2, vec![(0, 1)], &[(0, 1_000_000)]);
        let err = net.run_phase(3).unwrap_err();
        assert!(matches!(
            err,
            CongestError::PhaseBudgetExhausted { budget: 3 }
        ));
    }

    #[test]
    fn non_neighbor_send_is_rejected() {
        struct Rogue;
        impl Process for Rogue {
            type Msg = Num;
            fn on_round(&mut self, _: &[Envelope<Num>], outbox: &mut Outbox<Num>) {
                outbox.send(NodeId::new(2), Num(1));
            }
        }
        let topo = Topology::from_edges(3, [(0, 1)]).unwrap();
        let mut net = Network::new(topo, vec![Rogue, Rogue, Rogue]).unwrap();
        let err = net.step().unwrap_err();
        assert!(matches!(err, CongestError::NotANeighbor { .. }));
    }

    #[test]
    fn bit_budget_is_enforced() {
        let mut net = echo_net(2, vec![(0, 1)], &[(0, u64::MAX)]);
        net.set_bit_budget(16);
        let err = net.run_until_quiescent(10).unwrap_err();
        assert!(matches!(err, CongestError::MessageTooLarge { .. }));
    }

    #[test]
    fn messages_are_delayed_one_round() {
        // Node 0 sends in round 0; node 1 must not see it until round 1.
        let mut net = echo_net(2, vec![(0, 1)], &[(0, 0)]);
        net.step().unwrap();
        assert_eq!(net.node(NodeId::new(1)).received, 0);
        net.step().unwrap();
        assert_eq!(net.node(NodeId::new(1)).received, 1);
    }

    #[test]
    fn trace_records_deliveries() {
        let mut net = echo_net(2, vec![(0, 1)], &[(0, 1)]);
        net.set_trace_capacity(16);
        net.run_until_quiescent(10).unwrap();
        let trace = net.trace().unwrap();
        assert_eq!(trace.events().len(), 2);
        assert!(trace.events()[0].payload.contains("Num"));
    }

    #[test]
    fn round_outcomes_reconcile_with_trace_totals() {
        // Book 1: per-round `RoundOutcome::{delivered,sent}`.
        // Book 2: the trace, which records each delivery exactly once.
        // Book 3: `NetStats::messages`. All three must agree, and each
        // round's `sent` must come back as the next round's `delivered`.
        let mut net = echo_net(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)], &[(0, 3), (2, 2)]);
        net.set_trace_capacity(1024);
        let mut outcomes = Vec::new();
        loop {
            let outcome = net.step().unwrap();
            outcomes.push(outcome);
            if !outcome.active() {
                break;
            }
        }
        let delivered_total: u64 = outcomes.iter().map(|o| o.delivered).sum();
        let sent_total: u64 = outcomes.iter().map(|o| o.sent).sum();
        assert_eq!(delivered_total, net.stats().messages);
        assert_eq!(net.trace().unwrap().total_recorded(), delivered_total);
        // Everything sent was eventually delivered (the run drained).
        assert_eq!(sent_total, delivered_total);
        // One-round delay: round r's sends are round r+1's deliveries.
        for pair in outcomes.windows(2) {
            assert_eq!(pair[0].sent, pair[1].delivered);
        }
    }

    #[test]
    fn trace_enabled_mid_run_reconciles_from_its_baseline() {
        let mut net = echo_net(2, vec![(0, 1)], &[(0, 4)]);
        net.step().unwrap(); // round 0: send
        net.step().unwrap(); // round 1: first delivery (pre-trace)
        let pre = net.stats().messages;
        assert!(pre > 0, "some deliveries happened before tracing started");
        net.set_trace_capacity(8);
        let mut post = 0;
        loop {
            let outcome = net.step().unwrap();
            post += outcome.delivered;
            if !outcome.active() {
                break;
            }
        }
        assert_eq!(net.trace().unwrap().total_recorded(), post);
        assert_eq!(net.stats().messages, pre + post);
    }

    #[test]
    fn trace_reconciliation_survives_eviction() {
        // Capacity 1 forces eviction on nearly every delivery; the
        // reconciliation uses total_recorded (events + dropped), which
        // must keep matching the delivery counter regardless.
        let mut net = echo_net(2, vec![(0, 1)], &[(0, 6)]);
        net.set_trace_capacity(1);
        while net.step().unwrap().active() {}
        let trace = net.trace().unwrap();
        assert!(trace.dropped() > 0);
        assert_eq!(trace.total_recorded(), net.stats().messages);
    }

    #[test]
    fn proc_count_mismatch_rejected() {
        let topo = Topology::from_edges(2, [(0, 1)]).unwrap();
        let procs: Vec<Echo> = Vec::new();
        assert!(Network::new(topo, procs).is_err());
    }

    #[test]
    fn star_broadcast_counts_bits() {
        let edges: Vec<(u32, u32)> = (1..5).map(|i| (0, i)).collect();
        let mut net = echo_net(5, edges, &[(0, 0)]);
        net.run_until_quiescent(10).unwrap();
        assert_eq!(net.stats().messages, 4);
        assert_eq!(net.stats().max_messages_per_round, 4);
        assert!(net.stats().bits > 0);
    }

    #[test]
    fn unused_id_field_is_set() {
        let net = echo_net(2, vec![(0, 1)], &[]);
        assert_eq!(net.node(NodeId::new(1)).id, NodeId::new(1));
    }

    /// Runs the same echo protocol serially and with `workers` threads;
    /// every statistic, trace event, and final node state must agree.
    fn assert_par_equivalent(workers: usize) {
        let n = 12;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| vec![(i, (i + 1) % n as u32), (i, (i + 3) % n as u32)])
            .filter(|(a, b)| a != b)
            .collect();
        let initial: Vec<(u32, u64)> = (0..n as u32).map(|i| (i, u64::from(i) % 5)).collect();

        let mut serial = echo_net(n, edges.clone(), &initial);
        serial.set_trace_capacity(1024);
        while serial.step().unwrap().active() {}

        let mut par = echo_net(n, edges, &initial);
        par.set_trace_capacity(1024);
        par.set_parallelism(workers);
        while par.step_par().unwrap().active() {}

        assert_eq!(serial.stats(), par.stats(), "workers = {workers}");
        assert_eq!(
            serial.trace().unwrap().events(),
            par.trace().unwrap().events(),
            "workers = {workers}"
        );
        for i in 0..n {
            let id = NodeId::new(i as u32);
            assert_eq!(serial.node(id).received, par.node(id).received);
        }
    }

    #[test]
    fn step_par_is_bit_identical_to_step() {
        for workers in [1, 2, 3, 8, 64] {
            assert_par_equivalent(workers);
        }
    }

    #[test]
    fn parallelism_clamps_to_one() {
        let mut net = echo_net(2, vec![(0, 1)], &[]);
        net.set_parallelism(0);
        assert_eq!(net.parallelism(), 1);
        net.set_parallelism(7);
        assert_eq!(net.parallelism(), 7);
    }

    #[test]
    fn step_par_validates_like_step() {
        let mut net = echo_net(2, vec![(0, 1)], &[(0, u64::MAX)]);
        net.set_bit_budget(16);
        net.set_parallelism(4);
        let err = net.step_par().unwrap_err();
        assert!(matches!(err, CongestError::MessageTooLarge { .. }));
    }
}
