//! Communication graph topology.

use crate::{CongestError, NodeId};
use serde::{Deserialize, Serialize};

/// An undirected communication graph over nodes `0..n`.
///
/// The topology is immutable after construction: in the CONGEST model the
/// communication links are fixed by the problem instance (here, pairs of
/// players who rank one another). Adjacency lists are kept sorted so that
/// edge membership queries are `O(log deg)`.
///
/// # Examples
///
/// ```
/// use asm_congest::{NodeId, Topology};
///
/// let topo = Topology::from_edges(4, [(0, 1), (0, 2), (2, 3)])?;
/// assert_eq!(topo.num_nodes(), 4);
/// assert_eq!(topo.num_edges(), 3);
/// assert_eq!(topo.degree(NodeId::new(0)), 2);
/// assert!(topo.has_edge(NodeId::new(2), NodeId::new(3)));
/// assert!(!topo.has_edge(NodeId::new(1), NodeId::new(3)));
/// # Ok::<(), asm_congest::CongestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// `adj[v]` is the sorted list of neighbors of `v`.
    adj: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl Topology {
    /// Builds a topology over `n` nodes from an edge list.
    ///
    /// Edges may be given in either orientation; `(u, v)` and `(v, u)` count
    /// as the same edge.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NodeOutOfRange`] if an endpoint is `>= n` and
    /// [`CongestError::InvalidEdge`] on self-loops or duplicate edges.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, CongestError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut num_edges = 0;
        for (u, v) in edges {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            for id in [u, v] {
                if id.index() >= n {
                    return Err(CongestError::NodeOutOfRange { id, nodes: n });
                }
            }
            if u == v {
                return Err(CongestError::InvalidEdge { u, v });
            }
            adj[u.index()].push(v);
            adj[v.index()].push(u);
            num_edges += 1;
        }
        for (i, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            if list.windows(2).any(|w| w[0] == w[1]) {
                let u = NodeId::new(i as u32);
                let v = *list
                    .windows(2)
                    .find(|w| w[0] == w[1])
                    .map(|w| &w[0])
                    .expect("duplicate just found");
                return Err(CongestError::InvalidEdge { u, v });
            }
        }
        Ok(Topology { adj, num_edges })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The sorted neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.adj.len() && self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over all edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u = NodeId::new(u as u32);
            list.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Topology {
        Topology::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn basic_adjacency() {
        let t = path(5);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.degree(NodeId::new(0)), 1);
        assert_eq!(t.degree(NodeId::new(2)), 2);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(
            t.neighbors(NodeId::new(2)),
            &[NodeId::new(1), NodeId::new(3)]
        );
    }

    #[test]
    fn reversed_orientation_is_same_edge() {
        let t = Topology::from_edges(3, [(2, 0)]).unwrap();
        assert!(t.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(t.has_edge(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Topology::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, CongestError::NodeOutOfRange { .. }));
    }

    #[test]
    fn rejects_self_loop() {
        let err = Topology::from_edges(2, [(1, 1)]).unwrap_err();
        assert!(matches!(err, CongestError::InvalidEdge { .. }));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = Topology::from_edges(3, [(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, CongestError::InvalidEdge { .. }));
    }

    #[test]
    fn edges_iterator_reports_each_once() {
        let t = path(4);
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn empty_graph() {
        let t = Topology::from_edges(0, []).unwrap();
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_edges(), 0);
        assert_eq!(t.max_degree(), 0);
        assert_eq!(t.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let t = Topology::from_edges(10, [(0, 1)]).unwrap();
        assert_eq!(t.degree(NodeId::new(9)), 0);
    }
}
