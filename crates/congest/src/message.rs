//! Message payloads and envelopes.

use crate::NodeId;

/// A protocol message payload.
///
/// The CONGEST model restricts each message to `O(log n)` bits. Implementors
/// report an estimated encoded size via [`Payload::bits`]; the network
/// checks it against the per-message budget configured on
/// [`crate::Network`].
///
/// # Examples
///
/// ```
/// use asm_congest::Payload;
///
/// #[derive(Clone, Debug)]
/// enum Msg { Propose, Rank(u32) }
///
/// impl Payload for Msg {
///     fn bits(&self) -> usize {
///         match self {
///             Msg::Propose => 2,          // tag only
///             Msg::Rank(_) => 2 + 32,     // tag + rank
///         }
///     }
/// }
/// assert_eq!(Msg::Rank(7).bits(), 34);
/// ```
pub trait Payload: Clone + std::fmt::Debug {
    /// Estimated encoded size of this payload in bits, excluding addressing
    /// (source and destination ids are accounted separately by the network).
    fn bits(&self) -> usize;
}

/// Unit payloads model pure "pings" whose only content is the message tag.
impl Payload for () {
    fn bits(&self) -> usize {
        1
    }
}

/// A payload in flight, together with its addressing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<P> {
    /// Sender.
    pub src: NodeId,
    /// Recipient.
    pub dst: NodeId,
    /// Message contents.
    pub payload: P,
}

impl<P> Envelope<P> {
    /// Creates an envelope.
    pub fn new(src: NodeId, dst: NodeId, payload: P) -> Self {
        Envelope { src, dst, payload }
    }
}

// Hand-written (not derived) because the vendored serde derive does not
// handle generic types. The wire form is a compact `[src, dst, payload]`
// triple — envelopes dominate distributed round frames, so the fixed
// field names would be pure overhead.
impl<P: serde::Serialize> serde::Serialize for Envelope<P> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Seq(vec![
            self.src.to_content(),
            self.dst.to_content(),
            self.payload.to_content(),
        ])
    }
}

impl<P: serde::Deserialize> serde::Deserialize for Envelope<P> {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let items = content
            .as_seq()
            .ok_or_else(|| serde::Error::custom("expected [src, dst, payload] envelope"))?;
        if items.len() != 3 {
            return Err(serde::Error::custom(format!(
                "expected 3-element envelope, found {} elements",
                items.len()
            )));
        }
        Ok(Envelope {
            src: NodeId::from_content(&items[0])?,
            dst: NodeId::from_content(&items[1])?,
            payload: P::from_content(&items[2])?,
        })
    }
}

/// Buffer into which a process queues its outgoing messages for the current
/// round.
///
/// Obtained only from within [`crate::Process::on_round`]; the network
/// validates and delivers the queued messages at the end of the round.
#[derive(Debug)]
pub struct Outbox<P> {
    src: NodeId,
    queued: Vec<Envelope<P>>,
}

impl<P> Outbox<P> {
    /// Creates a standalone outbox for `src`.
    ///
    /// The network creates outboxes itself each round; this constructor
    /// exists so protocol implementations can unit-test their
    /// [`crate::Process::on_round`] logic without standing up a network.
    pub fn new(src: NodeId) -> Self {
        Outbox {
            src,
            queued: Vec::new(),
        }
    }

    /// Drains the queued envelopes (for unit tests of process logic).
    pub fn drain(&mut self) -> Vec<Envelope<P>> {
        std::mem::take(&mut self.queued)
    }

    /// Queues `payload` for delivery to `dst` at the start of the next round.
    pub fn send(&mut self, dst: NodeId, payload: P) {
        self.queued.push(Envelope::new(self.src, dst, payload));
    }

    /// The sender this outbox belongs to.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Number of messages queued so far this round.
    pub fn len(&self) -> usize {
        self.queued.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }

    pub(crate) fn into_queued(self) -> Vec<Envelope<P>> {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_accumulates_in_order() {
        let mut ob: Outbox<u8> = Outbox::new(NodeId::new(3));
        assert!(ob.is_empty());
        ob.send(NodeId::new(1), 10);
        ob.send(NodeId::new(2), 20);
        assert_eq!(ob.len(), 2);
        assert_eq!(ob.src(), NodeId::new(3));
        let msgs = ob.into_queued();
        assert_eq!(msgs[0], Envelope::new(NodeId::new(3), NodeId::new(1), 10));
        assert_eq!(msgs[1], Envelope::new(NodeId::new(3), NodeId::new(2), 20));
    }

    #[test]
    fn unit_payload_has_one_bit() {
        assert_eq!(().bits(), 1);
    }
}
