//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor (player) in the communication graph.
///
/// Node ids are dense indices `0..n`. The simulator and all protocol crates
/// use `NodeId` as the only addressing primitive, matching the CONGEST
/// assumption that every processor has a unique `O(log n)`-bit id.
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(v.to_string(), "v7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node, suitable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Number of bits needed to address any of `n` nodes.
    ///
    /// This is the CONGEST "word size" for a network of `n` processors;
    /// message-size accounting in [`crate::Network`] is expressed in
    /// multiples of it.
    ///
    /// ```
    /// assert_eq!(asm_congest::NodeId::bits_for(1024), 10);
    /// assert_eq!(asm_congest::NodeId::bits_for(1025), 11);
    /// assert_eq!(asm_congest::NodeId::bits_for(1), 1);
    /// ```
    pub fn bits_for(n: usize) -> usize {
        (usize::BITS as usize - n.next_power_of_two().leading_zeros() as usize)
            .saturating_sub(1)
            .max(1)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for i in [0u32, 1, 17, u32::MAX] {
            assert_eq!(NodeId::new(i).raw(), i);
            assert_eq!(NodeId::new(i).index(), i as usize);
        }
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(3) < NodeId::new(4));
        assert_eq!(NodeId::new(5), NodeId::from(5u32));
    }

    #[test]
    fn bits_for_powers_of_two() {
        assert_eq!(NodeId::bits_for(2), 1);
        assert_eq!(NodeId::bits_for(3), 2);
        assert_eq!(NodeId::bits_for(4), 2);
        assert_eq!(NodeId::bits_for(5), 3);
        assert_eq!(NodeId::bits_for(1 << 20), 20);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let v = NodeId::new(0);
        assert_eq!(format!("{v}"), "v0");
        assert_eq!(format!("{v:?}"), "v0");
    }
}
