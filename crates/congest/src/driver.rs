//! Transport-agnostic round driving.
//!
//! The ASM engines are *driven* protocols: a coordinator sequences the
//! globally-known phase schedule, applying control operations to every
//! node between rounds and reading back a small amount of aggregate
//! state (simulating the shared round clock every CONGEST node can
//! compute locally). [`RoundDriver`] abstracts that coordinator/executor
//! boundary so the same driver loop can run against
//!
//! * an in-process [`crate::Network`] (the reference simulator), or
//! * a fleet of node processes exchanging rounds over TCP
//!   (`asm-distributed`).
//!
//! Because the driver loop issues the identical sequence of control and
//! step operations either way, round and message tallies agree between
//! transports by construction — the differential tests in
//! `asm-distributed` pin this.

use crate::RoundOutcome;

/// One synchronous-round executor a protocol driver can sequence.
///
/// A driver alternates [`RoundDriver::control`] (broadcast a batch of
/// control operations to every node, between rounds) with
/// [`RoundDriver::step`] (execute one synchronous round), then calls
/// [`RoundDriver::finish`] to collect the final per-node state. Both
/// `control` and `step` return a [`RoundDriver::Summary`] — the merged
/// aggregate of per-node state the driver needs for its scheduling
/// decisions — so the driver never touches node state directly.
pub trait RoundDriver {
    /// A control operation applied to every node between rounds.
    type Ctl;
    /// Merged aggregate of per-node state, recomputed after every
    /// control batch and every round.
    type Summary;
    /// Final state collected from all nodes at the end of the run.
    type Final;
    /// Transport- or engine-level failure.
    type Error;

    /// Applies `ops`, in order, to every node, and reports the
    /// post-control summary.
    ///
    /// # Errors
    ///
    /// Transport or engine failure delivering the control batch.
    fn control(&mut self, ops: &[Self::Ctl]) -> Result<Self::Summary, Self::Error>;

    /// Executes one synchronous round: deliver in-flight messages, run
    /// every node, collect what they send.
    ///
    /// # Errors
    ///
    /// Transport or engine failure executing the round (including
    /// protocol violations such as a non-neighbor send or a payload
    /// over the bit budget).
    fn step(&mut self) -> Result<(RoundOutcome, Self::Summary), Self::Error>;

    /// Tears the executor down and collects the final per-node state.
    ///
    /// # Errors
    ///
    /// Transport or engine failure collecting the final state.
    fn finish(self) -> Result<Self::Final, Self::Error>;
}
