//! Property-based tests of the CONGEST substrate: randomness quality and
//! the network's delivery semantics on arbitrary graphs.

use asm_congest::{Envelope, Network, NodeId, Outbox, Payload, Process, SplitRng, Topology};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Token(#[allow(dead_code)] u64);
impl Payload for Token {
    fn bits(&self) -> usize {
        8
    }
}

/// Forwards every received token to all neighbors exactly once (flood),
/// recording the round it first saw one.
struct Flood {
    neighbors: Vec<NodeId>,
    seed_token: bool,
    forwarded: bool,
    round: u64,
    heard_at: Option<u64>,
}

impl Process for Flood {
    type Msg = Token;
    fn on_round(&mut self, inbox: &[Envelope<Token>], outbox: &mut Outbox<Token>) {
        let heard = self.seed_token || !inbox.is_empty();
        if self.seed_token {
            self.heard_at = Some(0);
        } else if !inbox.is_empty() && self.heard_at.is_none() {
            self.heard_at = Some(self.round);
        }
        if heard && !self.forwarded {
            self.forwarded = true;
            self.seed_token = false;
            for &nb in &self.neighbors {
                outbox.send(nb, Token(1));
            }
        }
        self.round += 1;
    }
}

/// A random connected graph: a spanning path plus extra random edges.
fn arb_connected_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = SplitRng::new(seed);
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        for u in 0..n as u32 {
            for v in u + 2..n as u32 {
                if rng.next_bool(0.15) {
                    edges.push((u, v));
                }
            }
        }
        (n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flood_reaches_every_node_within_eccentricity((n, edges) in arb_connected_graph()) {
        let topo = Topology::from_edges(n, edges).unwrap();
        let procs: Vec<Flood> = (0..n)
            .map(|i| Flood {
                neighbors: topo.neighbors(NodeId::new(i as u32)).to_vec(),
                seed_token: i == 0,
                forwarded: false,
                round: 0,
                heard_at: None,
            })
            .collect();
        let mut net = Network::new(topo, procs).unwrap();
        net.run_until_quiescent(2 * n as u64 + 4).unwrap();
        for (i, p) in net.nodes().iter().enumerate() {
            prop_assert!(p.heard_at.is_some(), "node {i} never heard the flood");
            // BFS distance <= n - 1, and one round per hop.
            prop_assert!(p.heard_at.unwrap() <= n as u64);
        }
        // Each node forwards exactly once: messages == sum of degrees.
        prop_assert_eq!(
            net.stats().messages,
            (0..n)
                .map(|i| net.topology().degree(NodeId::new(i as u32)) as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn split_rng_streams_do_not_collide(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let root = SplitRng::new(seed);
        let mut x = root.split(a, 0);
        let mut y = root.split(b, 0);
        // 64 identical consecutive outputs from different splits would be
        // astronomically unlikely for a healthy generator.
        let same = (0..64).filter(|_| x.next_u64() == y.next_u64()).count();
        prop_assert!(same < 8);
    }

    #[test]
    fn next_range_uniformity_rough(seed in any::<u64>(), bound in 1usize..40) {
        let mut rng = SplitRng::new(seed);
        let trials = 2000;
        let mut counts = vec![0usize; bound];
        for _ in 0..trials {
            counts[rng.next_range(bound)] += 1;
        }
        let expected = trials as f64 / bound as f64;
        for (v, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) < 4.0 * expected + 10.0,
                "value {v} over-represented: {c} of {trials}"
            );
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), len in 0usize..60) {
        let mut rng = SplitRng::new(seed);
        let original: Vec<usize> = (0..len).collect();
        let mut shuffled = original.clone();
        rng.shuffle(&mut shuffled);
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, original);
    }

    #[test]
    fn topology_neighbors_are_sorted_and_symmetric((n, edges) in arb_connected_graph()) {
        let topo = Topology::from_edges(n, edges).unwrap();
        for i in 0..n {
            let v = NodeId::new(i as u32);
            let nbrs = topo.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &u in nbrs {
                prop_assert!(topo.has_edge(u, v));
                prop_assert!(topo.neighbors(u).contains(&v));
            }
        }
        prop_assert_eq!(topo.edges().count(), topo.num_edges());
    }
}
