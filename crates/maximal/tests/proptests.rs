//! Property-based tests: every matcher is maximal on arbitrary graphs,
//! and the message-passing protocols replay the simulations exactly.

use asm_congest::{Network, NodeId, SplitRng, Topology};
use asm_maximal::protocols::{GreedyNode, GreedyProcess, IiNode, IiProcess};
use asm_maximal::{
    bipartite_proposal, det_greedy, greedy_maximal, hkp_oracle, is_maximal_in, israeli_itai,
    maximality_violators, panconesi_rizzi,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    (2u32..28, any::<u64>(), 1u32..10).prop_map(|(n, seed, density)| {
        let mut rng = SplitRng::new(seed);
        let p = density as f64 / 20.0;
        (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .filter(|_| rng.next_bool(p))
            .map(|(u, v)| (NodeId::new(u), NodeId::new(v)))
            .collect()
    })
}

fn arb_bipartite() -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    (2u32..20, any::<u64>(), 1u32..10).prop_map(|(n, seed, density)| {
        let mut rng = SplitRng::new(seed);
        let p = density as f64 / 15.0;
        (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, 100 + v)))
            .filter(|_| rng.next_bool(p))
            .map(|(u, v)| (NodeId::new(u), NodeId::new(v)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequential_greedy_is_maximal(edges in arb_graph()) {
        let pairs = greedy_maximal(&edges);
        prop_assert!(is_maximal_in(&edges, &pairs));
    }

    #[test]
    fn det_greedy_is_maximal_and_bounded(edges in arb_graph()) {
        let out = det_greedy(&edges);
        prop_assert!(out.maximal);
        prop_assert!(is_maximal_in(&edges, &out.pairs));
        prop_assert!(out.iterations <= out.pairs.len() as u64 + 1);
    }

    #[test]
    fn israeli_itai_is_maximal_given_enough_iterations(
        edges in arb_graph(),
        seed in any::<u64>(),
    ) {
        let run = israeli_itai(&edges, 10_000, &SplitRng::new(seed), 0);
        prop_assert!(run.outcome.maximal);
        prop_assert!(is_maximal_in(&edges, &run.outcome.pairs));
        prop_assert_eq!(*run.survivors.last().unwrap(), 0usize);
    }

    #[test]
    fn hkp_oracle_is_maximal(edges in arb_graph()) {
        let out = hkp_oracle(64, &edges);
        prop_assert!(is_maximal_in(&edges, &out.pairs));
    }

    #[test]
    fn panconesi_rizzi_is_maximal(edges in arb_graph()) {
        let out = panconesi_rizzi(&edges);
        prop_assert!(out.maximal);
        prop_assert!(is_maximal_in(&edges, &out.pairs));
    }

    #[test]
    fn bipartite_proposal_is_maximal_with_degree_bound(edges in arb_bipartite()) {
        let out = bipartite_proposal(&edges, |v| v.raw() < 100);
        prop_assert!(is_maximal_in(&edges, &out.pairs));
        let max_left_deg = (0u32..100)
            .map(|u| edges.iter().filter(|&&(a, _)| a.raw() == u).count())
            .max()
            .unwrap_or(0);
        prop_assert!(out.iterations <= max_left_deg as u64 + 1);
    }

    #[test]
    fn truncation_violators_match_maximality(
        edges in arb_graph(),
        seed in any::<u64>(),
        budget in 0u64..4,
    ) {
        let run = israeli_itai(&edges, budget, &SplitRng::new(seed), 0);
        let violators = maximality_violators(&edges, &run.outcome.pairs);
        prop_assert_eq!(
            violators.is_empty(),
            is_maximal_in(&edges, &run.outcome.pairs)
        );
    }

    #[test]
    fn greedy_protocol_replays_simulation(edges in arb_graph()) {
        let n = 28;
        let topo = Topology::from_edges(n, edges.iter().map(|&(u, v)| (u.raw(), v.raw())))
            .unwrap();
        let procs: Vec<GreedyProcess> = (0..n)
            .map(|i| {
                let id = NodeId::new(i as u32);
                GreedyProcess(GreedyNode::new(id, topo.neighbors(id).to_vec()))
            })
            .collect();
        let mut net = Network::new(topo, procs).unwrap();
        net.run_until_quiescent(10 * n as u64 + 20).unwrap();
        let mut proto: Vec<(NodeId, NodeId)> = net
            .nodes()
            .iter()
            .filter_map(|p| p.0.matched().map(|m| (p.0.id(), m)))
            .filter(|&(a, b)| a < b)
            .collect();
        proto.sort_unstable();
        prop_assert_eq!(proto, det_greedy(&edges).pairs);
    }

    #[test]
    fn ii_protocol_replays_simulation(edges in arb_graph(), seed in any::<u64>()) {
        let n = 28;
        let budget = 64;
        let fast = israeli_itai(&edges, budget, &SplitRng::new(seed), 5);
        let topo = Topology::from_edges(n, edges.iter().map(|&(u, v)| (u.raw(), v.raw())))
            .unwrap();
        let base = SplitRng::new(seed);
        let procs: Vec<IiProcess> = (0..n)
            .map(|i| {
                let id = NodeId::new(i as u32);
                IiProcess(IiNode::new(id, topo.neighbors(id).to_vec(), base.clone(), 5, budget))
            })
            .collect();
        let mut net = Network::new(topo, procs).unwrap();
        // Fixed schedule: II has transiently silent rounds when an
        // iteration matches nothing, so quiescence detection stops early.
        for _ in 0..4 * budget + 16 {
            net.step().unwrap();
        }
        let mut proto: Vec<(NodeId, NodeId)> = net
            .nodes()
            .iter()
            .filter_map(|p| p.0.matched().map(|m| (p.0.id(), m)))
            .filter(|&(a, b)| a < b)
            .collect();
        proto.sort_unstable();
        prop_assert_eq!(proto, fast.outcome.pairs);
    }
}
