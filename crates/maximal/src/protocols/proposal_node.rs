//! Per-node state machine for the bipartite proposal matcher.

use super::MmMsg;
use asm_congest::{Envelope, NodeId, Outbox, Process};

/// One node's state in the bipartite proposal protocol
/// ([`crate::bipartite_proposal`] is the equivalent graph-level
/// simulation).
///
/// 2-round cycles: **even subround** — unmatched left nodes send
/// [`MmMsg::Prop`] to the neighbor at their rejection pointer; **odd
/// subround** — right nodes reply [`MmMsg::Yes`] to the minimum-id
/// proposer (if still unmatched) and [`MmMsg::No`] to the rest; left
/// nodes then advance on `No` and match on `Yes` at the next even
/// subround.
#[derive(Clone, Debug)]
pub struct ProposalNode {
    id: NodeId,
    left: bool,
    /// Sorted neighbors (the pointer walks this list on the left side).
    neighbors: Vec<NodeId>,
    pointer: usize,
    matched: Option<NodeId>,
    subround: u64,
}

impl ProposalNode {
    /// Creates the node's state. `left` selects the proposing side.
    pub fn new(id: NodeId, mut neighbors: Vec<NodeId>, left: bool) -> Self {
        neighbors.sort_unstable();
        neighbors.dedup();
        ProposalNode {
            id,
            left,
            neighbors,
            pointer: 0,
            matched: None,
            subround: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The matched partner, if any.
    pub fn matched(&self) -> Option<NodeId> {
        self.matched
    }

    /// Whether this node may still initiate communication.
    pub fn is_active(&self) -> bool {
        self.left && self.matched.is_none() && self.pointer < self.neighbors.len()
    }

    /// Executes one synchronous round.
    pub fn on_round(&mut self, inbox: &[(NodeId, MmMsg)], mut send: impl FnMut(NodeId, MmMsg)) {
        let propose_phase = self.subround.is_multiple_of(2);
        self.subround += 1;
        if propose_phase {
            if self.left {
                // Process last cycle's replies first.
                for &(src, msg) in inbox {
                    match msg {
                        MmMsg::Yes => self.matched = Some(src),
                        MmMsg::No => self.pointer += 1,
                        _ => {}
                    }
                }
                if self.is_active() {
                    send(self.neighbors[self.pointer], MmMsg::Prop);
                }
            }
        } else if !self.left {
            let proposers: Vec<NodeId> = inbox
                .iter()
                .filter(|&&(_, m)| m == MmMsg::Prop)
                .map(|&(src, _)| src)
                .collect();
            if proposers.is_empty() {
                return;
            }
            let winner = if self.matched.is_none() {
                // Inboxes arrive in ascending sender order; keep the min.
                let w = proposers[0];
                self.matched = Some(w);
                Some(w)
            } else {
                None
            };
            for v in proposers {
                send(
                    v,
                    if Some(v) == winner {
                        MmMsg::Yes
                    } else {
                        MmMsg::No
                    },
                );
            }
        }
    }
}

/// Adapter running a bare [`ProposalNode`] as an [`asm_congest::Process`].
#[derive(Clone, Debug)]
pub struct ProposalProcess(pub ProposalNode);

impl Process for ProposalProcess {
    type Msg = MmMsg;

    fn on_round(&mut self, inbox: &[Envelope<MmMsg>], outbox: &mut Outbox<MmMsg>) {
        let msgs: Vec<(NodeId, MmMsg)> = inbox.iter().map(|e| (e.src, e.payload)).collect();
        self.0.on_round(&msgs, |dst, msg| outbox.send(dst, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bipartite_proposal, is_maximal_in};
    use asm_congest::{Network, SplitRng, Topology};

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    fn is_left(v: NodeId) -> bool {
        v.raw().is_multiple_of(2) // even ids on the left in these tests
    }

    fn run_protocol(edges: &[(NodeId, NodeId)], n: usize) -> Vec<(NodeId, NodeId)> {
        let topo = Topology::from_edges(n, edges.iter().map(|&(u, v)| (u.raw(), v.raw()))).unwrap();
        let procs: Vec<ProposalProcess> = (0..n)
            .map(|i| {
                let id = NodeId::new(i as u32);
                ProposalProcess(ProposalNode::new(
                    id,
                    topo.neighbors(id).to_vec(),
                    is_left(id),
                ))
            })
            .collect();
        let mut net = Network::new(topo, procs).unwrap();
        net.set_bit_budget(16);
        net.run_until_quiescent(4 * n as u64 + 16).unwrap();
        let mut pairs: Vec<(NodeId, NodeId)> = net
            .nodes()
            .iter()
            .filter_map(|p| p.0.matched().map(|m| (p.0.id(), m)))
            .filter(|&(a, b)| a < b)
            .collect();
        pairs.sort_unstable();
        pairs
    }

    fn random_bipartite(n: u32, p: f64, seed: u64) -> Vec<(NodeId, NodeId)> {
        // Even ids left, odd ids right.
        let mut rng = SplitRng::new(seed ^ 0x9999);
        (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v)))
            .filter(|&(u, v)| u % 2 == 0 && v % 2 == 1)
            .filter(|_| rng.next_bool(p))
            .map(|(u, v)| e(u, v))
            .collect()
    }

    #[test]
    fn protocol_matches_fast_simulation_exactly() {
        for seed in 0..10 {
            let edges = random_bipartite(24, 0.2, seed);
            let fast = bipartite_proposal(&edges, is_left);
            let proto = run_protocol(&edges, 24);
            assert_eq!(proto, fast.pairs, "seed {seed}");
            assert!(is_maximal_in(&edges, &proto), "seed {seed}");
        }
    }

    #[test]
    fn single_edge_protocol() {
        assert_eq!(run_protocol(&[e(0, 1)], 2), vec![e(0, 1)]);
    }

    #[test]
    fn right_nodes_never_initiate() {
        let node = ProposalNode::new(NodeId::new(1), vec![NodeId::new(0)], false);
        assert!(!node.is_active());
    }

    #[test]
    fn exhausted_left_node_goes_silent() {
        let mut node = ProposalNode::new(NodeId::new(0), vec![NodeId::new(1)], true);
        assert!(node.is_active());
        // One rejection exhausts the single-neighbor list.
        node.on_round(&[(NodeId::new(1), MmMsg::No)], |_, _| {});
        // Pointer advanced past end; next propose phase sends nothing.
        let mut sent = 0;
        node.on_round(&[], |_, _| sent += 1);
        assert!(!node.is_active());
        assert_eq!(sent, 0);
    }
}
