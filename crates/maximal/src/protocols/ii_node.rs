//! Per-node state machine for Israeli–Itai's randomized matcher.

use super::MmMsg;
use asm_congest::{Envelope, NodeId, Outbox, Process, SplitRng};

/// One node's state in the Israeli–Itai matching protocol (Algorithm 4 of
/// the paper's Appendix A; [`crate::israeli_itai`] is the equivalent
/// graph-level simulation).
///
/// Each `MatchingRound` spans 4 synchronous subrounds:
///
/// 1. **PICK** — prune announced matches, then pick a uniformly random
///    available neighbor;
/// 2. **CHOSEN** — keep one incoming pick uniformly at random (the kept
///    edges form the sparse graph G′, in which every node has degree ≤ 2);
/// 3. **SELECT** — select one incident G′ edge uniformly at random;
/// 4. **MATCHED** — mutually selected edges match; matched nodes announce.
///
/// Randomness: the node draws from `base.split(id, tag_base + iteration)`
/// in the fixed order pick → choose → select, exactly mirroring the
/// graph-level simulation so both produce identical matchings from the
/// same seed.
#[derive(Clone, Debug)]
pub struct IiNode {
    id: NodeId,
    avail: Vec<NodeId>,
    matched: Option<NodeId>,
    base: SplitRng,
    tag_base: u64,
    iter: u64,
    max_iterations: u64,
    subround: u64,
    cur_rng: Option<SplitRng>,
    my_pick: Option<NodeId>,
    gprime: Vec<NodeId>,
    my_select: Option<NodeId>,
}

impl IiNode {
    /// Creates the node's state.
    ///
    /// * `neighbors` — the node's adjacency in the subgraph to match;
    /// * `base`, `tag_base` — shared randomness root and invocation tag
    ///   (all nodes of one invocation must agree on both);
    /// * `max_iterations` — the truncation budget (Corollaries 1–2).
    pub fn new(
        id: NodeId,
        mut neighbors: Vec<NodeId>,
        base: SplitRng,
        tag_base: u64,
        max_iterations: u64,
    ) -> Self {
        neighbors.sort_unstable();
        neighbors.dedup();
        IiNode {
            id,
            avail: neighbors,
            matched: None,
            base,
            tag_base,
            iter: 0,
            max_iterations,
            subround: 0,
            cur_rng: None,
            my_pick: None,
            gprime: Vec::new(),
            my_select: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The matched partner, if any.
    pub fn matched(&self) -> Option<NodeId> {
        self.matched
    }

    /// Whether the node may still initiate communication.
    pub fn is_active(&self) -> bool {
        self.matched.is_none() && !self.avail.is_empty() && self.iter < self.max_iterations
    }

    /// Executes one synchronous round. `inbox` carries `(sender, message)`
    /// pairs in ascending sender order.
    pub fn on_round(&mut self, inbox: &[(NodeId, MmMsg)], mut send: impl FnMut(NodeId, MmMsg)) {
        let phase = self.subround % 4;
        self.subround += 1;
        match phase {
            0 => {
                // Prune matches announced at the end of the previous
                // iteration, then pick.
                for &(src, msg) in inbox {
                    if msg == MmMsg::Matched {
                        if let Ok(i) = self.avail.binary_search(&src) {
                            self.avail.remove(i);
                        }
                    }
                }
                self.cur_rng = None;
                self.my_pick = None;
                self.gprime.clear();
                self.my_select = None;
                if self.is_active() {
                    let mut rng = self
                        .base
                        .split(self.id.raw() as u64, self.tag_base + self.iter);
                    let pick = self.avail[rng.next_range(self.avail.len())];
                    self.cur_rng = Some(rng);
                    self.my_pick = Some(pick);
                    send(pick, MmMsg::Pick);
                }
            }
            1 => {
                let pickers: Vec<NodeId> = inbox
                    .iter()
                    .filter(|&&(_, m)| m == MmMsg::Pick)
                    .map(|&(src, _)| src)
                    .collect();
                if !pickers.is_empty() {
                    let rng = self
                        .cur_rng
                        .as_mut()
                        .expect("a picked node is active and has drawn its own pick");
                    let chosen = pickers[rng.next_range(pickers.len())];
                    self.gprime.push(chosen);
                    send(chosen, MmMsg::Chosen);
                }
            }
            2 => {
                for &(src, msg) in inbox {
                    if msg == MmMsg::Chosen {
                        debug_assert_eq!(Some(src), self.my_pick);
                        self.gprime.push(src);
                    }
                }
                self.gprime.sort_unstable();
                self.gprime.dedup();
                if !self.gprime.is_empty() {
                    let rng = self.cur_rng.as_mut().expect("a G'-incident node is active");
                    let select = self.gprime[rng.next_range(self.gprime.len())];
                    self.my_select = Some(select);
                    send(select, MmMsg::Select);
                }
            }
            _ => {
                if let Some(sel) = self.my_select {
                    let mutual = inbox
                        .iter()
                        .any(|&(src, m)| m == MmMsg::Select && src == sel);
                    if mutual {
                        self.matched = Some(sel);
                        for &nb in &self.avail {
                            send(nb, MmMsg::Matched);
                        }
                        self.avail.clear();
                    }
                }
                self.iter += 1;
            }
        }
    }
}

/// Adapter running a bare [`IiNode`] as an [`asm_congest::Process`].
#[derive(Clone, Debug)]
pub struct IiProcess(pub IiNode);

impl Process for IiProcess {
    type Msg = MmMsg;

    fn on_round(&mut self, inbox: &[Envelope<MmMsg>], outbox: &mut Outbox<MmMsg>) {
        let msgs: Vec<(NodeId, MmMsg)> = inbox.iter().map(|e| (e.src, e.payload)).collect();
        self.0.on_round(&msgs, |dst, msg| outbox.send(dst, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_maximal_in, israeli_itai};
    use asm_congest::{Network, Topology};

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    fn run_protocol(
        edges: &[(NodeId, NodeId)],
        n: usize,
        seed: u64,
        tag_base: u64,
        max_iterations: u64,
    ) -> Vec<(NodeId, NodeId)> {
        let topo = Topology::from_edges(n, edges.iter().map(|&(u, v)| (u.raw(), v.raw()))).unwrap();
        let base = SplitRng::new(seed);
        let procs: Vec<IiProcess> = (0..n)
            .map(|i| {
                let id = NodeId::new(i as u32);
                IiProcess(IiNode::new(
                    id,
                    topo.neighbors(id).to_vec(),
                    base.clone(),
                    tag_base,
                    max_iterations,
                ))
            })
            .collect();
        let mut net = Network::new(topo, procs).unwrap();
        net.set_bit_budget(16);
        // Step the full fixed schedule: iterations with zero matches are
        // transiently silent (nothing sent in the MATCHED subround), so
        // quiescence detection would stop early; nodes self-terminate
        // after max_iterations anyway.
        for _ in 0..4 * max_iterations + 8 {
            net.step().unwrap();
        }
        let mut pairs: Vec<(NodeId, NodeId)> = net
            .nodes()
            .iter()
            .filter_map(|p| p.0.matched().map(|m| (p.0.id(), m)))
            .filter(|&(a, b)| a < b)
            .collect();
        pairs.sort_unstable();
        pairs
    }

    fn random_edges(n: u32, p: f64, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut rng = SplitRng::new(seed ^ 0xABCD);
        (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .filter(|_| rng.next_bool(p))
            .map(|(u, v)| e(u, v))
            .collect()
    }

    #[test]
    fn protocol_replays_fast_simulation_exactly() {
        for seed in 0..8 {
            let edges = random_edges(24, 0.15, seed);
            let fast = israeli_itai(&edges, 50, &SplitRng::new(seed), 3);
            let proto = run_protocol(&edges, 24, seed, 3, 50);
            assert_eq!(proto, fast.outcome.pairs, "seed {seed}");
        }
    }

    #[test]
    fn protocol_reaches_maximality() {
        let edges = random_edges(30, 0.2, 5);
        let pairs = run_protocol(&edges, 30, 5, 0, 200);
        assert!(is_maximal_in(&edges, &pairs));
    }

    #[test]
    fn zero_budget_matches_nothing() {
        let edges = vec![e(0, 1)];
        let pairs = run_protocol(&edges, 2, 1, 0, 0);
        assert!(pairs.is_empty());
    }

    #[test]
    fn single_edge_matches_first_iteration() {
        let pairs = run_protocol(&[e(0, 1)], 2, 9, 0, 5);
        assert_eq!(pairs, vec![e(0, 1)]);
    }

    #[test]
    fn node_with_no_neighbors_is_inactive() {
        let node = IiNode::new(NodeId::new(0), vec![], SplitRng::new(1), 0, 5);
        assert!(!node.is_active());
    }
}
