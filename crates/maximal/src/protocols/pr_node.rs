//! Per-node state machine for the Panconesi–Rizzi matcher.
//!
//! Unlike the event-driven greedy/proposal protocols, Panconesi–Rizzi runs
//! on a **fixed, globally known schedule** (that is its point: the length
//! depends only on `Δ` and `log* n`, both assumed known):
//!
//! ```text
//! round 0                  : children announce themselves to parents
//! rounds 1 ..= 6           : Cole–Vishkin iterations (fixed count; see
//!                            CV_ITERATIONS) — parents' colors flow down
//! rounds 7 ..= 15          : three shift-down/recolor passes (3 rounds
//!                            each) eliminating colors 5, 4, 3
//! rounds 16 .. 16 + 9·F    : matching steps — 3 rounds per
//!                            (forest, color) pair
//! ```
//!
//! Given the same node ids, the protocol computes the *identical* matching
//! to [`crate::panconesi_rizzi`] — checked by this module's tests.

use asm_congest::{Envelope, NodeId, Outbox, Payload, Process};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Messages of the Panconesi–Rizzi protocol. (Kept separate from
/// [`super::MmMsg`]: colors carry a payload.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrMsg {
    /// Setup: "you are my parent in forest `forest`".
    Child {
        /// Forest index.
        forest: u16,
    },
    /// A color update in forest `forest`.
    Color {
        /// Forest index.
        forest: u16,
        /// The sender's new color.
        color: u64,
    },
    /// Matching: a proposal along the sender's parent edge in `forest`.
    Propose {
        /// Forest index.
        forest: u16,
    },
    /// Matching: the parent accepts the proposal.
    Accept {
        /// Forest index.
        forest: u16,
    },
    /// Matching: the sender is matched; exclude it from further steps.
    Matched,
}

impl Payload for PrMsg {
    fn bits(&self) -> usize {
        match self {
            PrMsg::Child { .. } | PrMsg::Propose { .. } | PrMsg::Accept { .. } => 3 + 16,
            PrMsg::Color { color, .. } => 3 + 16 + (64 - color.leading_zeros() as usize).max(1),
            PrMsg::Matched => 3,
        }
    }
}

/// Per-forest state of one node.
#[derive(Clone, Debug, Default)]
struct ForestState {
    parent: Option<NodeId>,
    parent_color: Option<u64>,
    children: Vec<NodeId>,
    child_colors: HashMap<NodeId, u64>,
    color: u64,
}

/// One node of the Panconesi–Rizzi protocol.
#[derive(Clone, Debug)]
pub struct PrNode {
    id: NodeId,
    /// All graph neighbors (for MATCHED announcements).
    neighbors: Vec<NodeId>,
    /// Per-forest state, indexed by forest id. A node appears in forest
    /// `f` if it has an out-edge with index `f` (as child) and/or was
    /// announced to (as parent).
    forests: HashMap<u16, ForestState>,
    /// Total forest count `F` of the whole graph (globally known Δ bound).
    num_forests: u16,
    round: u64,
    matched: Option<NodeId>,
    /// Neighbors known to be matched.
    dead: Vec<NodeId>,
    /// Whether this node proposed in the current matching step.
    proposed_to: Option<NodeId>,
}

impl PrNode {
    /// Creates the node. `num_forests` must be the graph's maximum
    /// out-degree under the higher-id orientation (all nodes must agree).
    pub fn new(id: NodeId, mut neighbors: Vec<NodeId>, num_forests: u16) -> Self {
        neighbors.sort_unstable();
        neighbors.dedup();
        let mut forests: HashMap<u16, ForestState> = HashMap::new();
        // Out-edges (to higher ids), ascending: the j-th joins forest j.
        for (j, &p) in neighbors.iter().filter(|&&u| u > id).enumerate() {
            let st = forests.entry(j as u16).or_default();
            st.parent = Some(p);
            st.parent_color = Some(p.raw() as u64);
            st.color = id.raw() as u64;
        }
        PrNode {
            id,
            neighbors,
            forests,
            num_forests,
            round: 0,
            matched: None,
            dead: Vec::new(),
            proposed_to: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The matched partner, if any.
    pub fn matched(&self) -> Option<NodeId> {
        self.matched
    }

    /// Whether the fixed schedule is still running (the node must keep
    /// being stepped; Panconesi–Rizzi has no event-driven quiescence).
    pub fn is_active(&self) -> bool {
        self.round < Self::schedule_rounds(self.num_forests)
    }

    /// Total rounds of the fixed schedule for `num_forests` forests.
    pub fn schedule_rounds(num_forests: u16) -> u64 {
        1 + crate::cv_schedule_len() + 9 + 9 * num_forests as u64 + 1
    }

    fn send_color_to_children(
        &self,
        f: u16,
        st: &ForestState,
        send: &mut impl FnMut(NodeId, PrMsg),
    ) {
        for &ch in &st.children {
            send(
                ch,
                PrMsg::Color {
                    forest: f,
                    color: st.color,
                },
            );
        }
    }

    fn absorb(&mut self, inbox: &[(NodeId, PrMsg)]) {
        for &(src, msg) in inbox {
            match msg {
                PrMsg::Child { forest } => {
                    let st = self.forests.entry(forest).or_default();
                    if st.parent.is_none() && st.children.is_empty() {
                        st.color = self.id.raw() as u64; // first contact as pure parent
                    }
                    st.children.push(src);
                    st.child_colors.insert(src, src.raw() as u64);
                }
                PrMsg::Color { forest, color } => {
                    let st = self
                        .forests
                        .get_mut(&forest)
                        .expect("color update for a known forest");
                    if st.parent == Some(src) {
                        st.parent_color = Some(color);
                    }
                    if st.child_colors.contains_key(&src) {
                        st.child_colors.insert(src, color);
                    }
                }
                PrMsg::Matched => {
                    if !self.dead.contains(&src) {
                        self.dead.push(src);
                    }
                }
                PrMsg::Propose { .. } | PrMsg::Accept { .. } => {
                    // Handled by the per-round logic below (they are only
                    // meaningful in the round they arrive).
                }
            }
        }
    }

    /// Executes one synchronous round of the fixed schedule.
    pub fn on_round(&mut self, inbox: &[(NodeId, PrMsg)], mut send: impl FnMut(NodeId, PrMsg)) {
        self.absorb(inbox);
        let rho = self.round;
        self.round += 1;
        let cv = crate::cv_schedule_len();

        if rho == 0 {
            // Announce child relations.
            let pairs: Vec<(u16, NodeId)> = self
                .forests
                .iter()
                .filter_map(|(&f, st)| st.parent.map(|p| (f, p)))
                .collect();
            for (f, p) in pairs {
                send(p, PrMsg::Child { forest: f });
            }
        } else if rho <= cv {
            // One Cole–Vishkin iteration per forest.
            let fs: Vec<u16> = self.forests.keys().copied().collect();
            for f in fs {
                let st = self.forests.get_mut(&f).expect("listed");
                let c = st.color;
                let pc = st.parent_color.unwrap_or(c ^ 1);
                let diff = c ^ pc;
                debug_assert_ne!(diff, 0, "proper coloring violated");
                let i = diff.trailing_zeros() as u64;
                st.color = 2 * i + ((c >> i) & 1);
                let st = self.forests[&f].clone();
                self.send_color_to_children(f, &st, &mut send);
            }
        } else if rho < cv + 10 {
            // Reduction passes: rounds cv+1 .. cv+9, 3 per target.
            let pass_round = (rho - cv - 1) % 3;
            let target = 5 - (rho - cv - 1) / 3; // 5, 4, 3
            let fs: Vec<u16> = self.forests.keys().copied().collect();
            match pass_round {
                0 => {
                    // Shift down; broadcast new color to children & parent.
                    for f in fs {
                        let st = self.forests.get_mut(&f).expect("listed");
                        st.color = match st.parent_color {
                            Some(pc) if st.parent.is_some() => pc,
                            _ => (st.color + 1) % 3,
                        };
                        let snapshot = self.forests[&f].clone();
                        self.send_color_to_children(f, &snapshot, &mut send);
                        if let Some(p) = snapshot.parent {
                            send(
                                p,
                                PrMsg::Color {
                                    forest: f,
                                    color: snapshot.color,
                                },
                            );
                        }
                    }
                }
                1 => {
                    // Recolor the target class.
                    for f in fs {
                        let st = self.forests.get_mut(&f).expect("listed");
                        if st.color != target {
                            continue;
                        }
                        let mut forbidden: Vec<u64> = st.child_colors.values().copied().collect();
                        if st.parent.is_some() {
                            forbidden.push(st.parent_color.expect("parent color known"));
                        }
                        let free = (0..3)
                            .find(|c| !forbidden.contains(c))
                            .expect("at most 2 distinct forbidden colors");
                        st.color = free;
                        let snapshot = self.forests[&f].clone();
                        self.send_color_to_children(f, &snapshot, &mut send);
                        if let Some(p) = snapshot.parent {
                            send(
                                p,
                                PrMsg::Color {
                                    forest: f,
                                    color: snapshot.color,
                                },
                            );
                        }
                    }
                }
                _ => {} // absorb-only round
            }
        } else {
            // Matching steps.
            let s = rho - (cv + 10);
            if s >= 9 * self.num_forests as u64 {
                return; // schedule over
            }
            let step = s / 3;
            let f = (step / 3) as u16;
            let c = step % 3;
            match s % 3 {
                0 => {
                    self.proposed_to = None;
                    if self.matched.is_none() {
                        if let Some(st) = self.forests.get(&f) {
                            if st.color == c {
                                if let Some(p) = st.parent {
                                    if !self.dead.contains(&p) {
                                        self.proposed_to = Some(p);
                                        send(p, PrMsg::Propose { forest: f });
                                    }
                                }
                            }
                        }
                    }
                }
                1 => {
                    if self.matched.is_none() {
                        // Inbox arrives in ascending sender order.
                        if let Some(winner) = inbox
                            .iter()
                            .find(|&&(_, m)| matches!(m, PrMsg::Propose { forest } if forest == f))
                            .map(|&(src, _)| src)
                        {
                            self.matched = Some(winner);
                            send(winner, PrMsg::Accept { forest: f });
                            for &nb in &self.neighbors {
                                send(nb, PrMsg::Matched);
                            }
                        }
                    }
                }
                _ => {
                    if self.matched.is_none() && self.proposed_to.is_some() {
                        let accepted = inbox.iter().any(|&(src, m)| {
                            matches!(m, PrMsg::Accept { forest } if forest == f)
                                && Some(src) == self.proposed_to
                        });
                        if accepted {
                            self.matched = self.proposed_to;
                            for &nb in &self.neighbors {
                                send(nb, PrMsg::Matched);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Adapter running a bare [`PrNode`] as an [`asm_congest::Process`].
#[derive(Clone, Debug)]
pub struct PrProcess(pub PrNode);

impl Process for PrProcess {
    type Msg = PrMsg;

    fn on_round(&mut self, inbox: &[Envelope<PrMsg>], outbox: &mut Outbox<PrMsg>) {
        let msgs: Vec<(NodeId, PrMsg)> = inbox.iter().map(|e| (e.src, e.payload)).collect();
        self.0.on_round(&msgs, |dst, msg| outbox.send(dst, msg));
    }
}

/// Runs the Panconesi–Rizzi protocol on `edges` over a real network and
/// returns the matched pairs.
///
/// # Panics
///
/// Panics if the edge list references ids `>= n`.
pub fn run_pr_protocol(edges: &[(NodeId, NodeId)], n: usize) -> Vec<(NodeId, NodeId)> {
    use asm_congest::{Network, Topology};
    let topo = Topology::from_edges(n, edges.iter().map(|&(u, v)| (u.raw(), v.raw())))
        .expect("valid edges");
    let num_forests = (0..n)
        .map(|i| {
            let v = NodeId::new(i as u32);
            topo.neighbors(v).iter().filter(|&&u| u > v).count()
        })
        .max()
        .unwrap_or(0) as u16;
    let procs: Vec<PrProcess> = (0..n)
        .map(|i| {
            let id = NodeId::new(i as u32);
            PrProcess(PrNode::new(id, topo.neighbors(id).to_vec(), num_forests))
        })
        .collect();
    let mut net = Network::new(topo, procs).expect("procs match topology");
    let total = PrNode::schedule_rounds(num_forests);
    for _ in 0..total + 2 {
        net.step().expect("protocol stays within CONGEST limits");
    }
    let mut pairs: Vec<(NodeId, NodeId)> = net
        .nodes()
        .iter()
        .filter_map(|p| p.0.matched().map(|m| (p.0.id(), m)))
        .filter(|&(a, b)| a < b)
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_maximal_in, panconesi_rizzi};
    use asm_congest::SplitRng;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    fn random_graph(n: u32, p: f64, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut rng = SplitRng::new(seed ^ 0x5150);
        (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .filter(|_| rng.next_bool(p))
            .map(|(u, v)| e(u, v))
            .collect()
    }

    #[test]
    fn protocol_replays_simulation_exactly() {
        for seed in 0..10 {
            let edges = random_graph(26, 0.15, seed);
            let fast = panconesi_rizzi(&edges);
            let proto = run_pr_protocol(&edges, 26);
            assert_eq!(proto, fast.pairs, "seed {seed}");
            assert!(is_maximal_in(&edges, &proto), "seed {seed}");
        }
    }

    #[test]
    fn single_edge() {
        assert_eq!(run_pr_protocol(&[e(0, 1)], 2), vec![e(0, 1)]);
    }

    #[test]
    fn path_and_star() {
        let path: Vec<_> = (0..11).map(|i| e(i, i + 1)).collect();
        let proto = run_pr_protocol(&path, 12);
        assert_eq!(proto, panconesi_rizzi(&path).pairs);
        let star: Vec<_> = (1..9).map(|i| e(0, i)).collect();
        let proto = run_pr_protocol(&star, 9);
        assert_eq!(proto, panconesi_rizzi(&star).pairs);
        assert!(is_maximal_in(&star, &proto));
    }

    #[test]
    fn empty_graph_schedule_is_short() {
        assert!(run_pr_protocol(&[], 3).is_empty());
        assert_eq!(PrNode::schedule_rounds(0), (1 + 6 + 9) + 1);
    }

    #[test]
    fn message_sizes_are_congest_legal() {
        assert!(PrMsg::Matched.bits() <= 8);
        assert!(PrMsg::Child { forest: 7 }.bits() <= 32);
        // A color message carries the color value: O(log n) bits.
        assert!(
            PrMsg::Color {
                forest: 1,
                color: 1023
            }
            .bits()
                <= 16 + 3 + 10
        );
    }
}
