//! Per-node state machine for the deterministic greedy matcher.

use super::MmMsg;
use asm_congest::{Envelope, NodeId, Outbox, Process};

/// One node's state in the deterministic greedy matching protocol
/// ([`crate::det_greedy`] is the equivalent graph-level simulation).
///
/// The protocol runs in 2-round cycles:
///
/// * **even subround (CAND):** prune neighbors whose `Matched`
///   announcements arrived, then — if unmatched with a nonempty available
///   set — send [`MmMsg::Cand`] to the minimum-id available neighbor;
/// * **odd subround (MATCH):** if the node's candidate also sent `Cand` to
///   it, the edge is mutually minimal — match it and announce
///   [`MmMsg::Matched`] to all available neighbors.
///
/// Drive it by calling [`GreedyNode::on_round`] once per synchronous round
/// with the `MmMsg` portion of the node's inbox.
#[derive(Clone, Debug)]
pub struct GreedyNode {
    id: NodeId,
    /// Sorted available (unmatched, adjacent) neighbors.
    avail: Vec<NodeId>,
    matched: Option<NodeId>,
    subround: u64,
    last_cand: Option<NodeId>,
}

impl GreedyNode {
    /// Creates the node's state from its (arbitrary-order) neighbor list in
    /// the subgraph to be matched.
    pub fn new(id: NodeId, mut neighbors: Vec<NodeId>) -> Self {
        neighbors.sort_unstable();
        neighbors.dedup();
        GreedyNode {
            id,
            avail: neighbors,
            matched: None,
            subround: 0,
            last_cand: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The matched partner, if any.
    pub fn matched(&self) -> Option<NodeId> {
        self.matched
    }

    /// Whether this node may still send messages (unmatched with available
    /// neighbors, or freshly matched and about to announce).
    pub fn is_active(&self) -> bool {
        self.matched.is_none() && !self.avail.is_empty()
    }

    /// Executes one synchronous round. `inbox` carries `(sender, message)`
    /// pairs in ascending sender order; `send` queues outgoing messages.
    pub fn on_round(&mut self, inbox: &[(NodeId, MmMsg)], mut send: impl FnMut(NodeId, MmMsg)) {
        let cand_phase = self.subround.is_multiple_of(2);
        self.subround += 1;
        if cand_phase {
            // Prune neighbors that announced a match last round.
            for &(src, msg) in inbox {
                if msg == MmMsg::Matched {
                    if let Ok(i) = self.avail.binary_search(&src) {
                        self.avail.remove(i);
                    }
                }
            }
            self.last_cand = None;
            if self.matched.is_none() {
                if let Some(&cand) = self.avail.first() {
                    self.last_cand = Some(cand);
                    send(cand, MmMsg::Cand);
                }
            }
        } else {
            // Match phase: mutual candidates pair up.
            if let Some(cand) = self.last_cand {
                let reciprocated = inbox
                    .iter()
                    .any(|&(src, msg)| src == cand && msg == MmMsg::Cand);
                if reciprocated {
                    self.matched = Some(cand);
                    for &nb in &self.avail {
                        send(nb, MmMsg::Matched);
                    }
                    self.avail.clear();
                }
            }
        }
    }
}

/// Adapter running a bare [`GreedyNode`] as an [`asm_congest::Process`].
#[derive(Clone, Debug)]
pub struct GreedyProcess(pub GreedyNode);

impl Process for GreedyProcess {
    type Msg = MmMsg;

    fn on_round(&mut self, inbox: &[Envelope<MmMsg>], outbox: &mut Outbox<MmMsg>) {
        let msgs: Vec<(NodeId, MmMsg)> = inbox.iter().map(|e| (e.src, e.payload)).collect();
        self.0.on_round(&msgs, |dst, msg| outbox.send(dst, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{det_greedy, is_maximal_in};
    use asm_congest::{Network, SplitRng, Topology};

    fn run_protocol(edges: &[(NodeId, NodeId)], n: usize) -> Vec<(NodeId, NodeId)> {
        let topo = Topology::from_edges(n, edges.iter().map(|&(u, v)| (u.raw(), v.raw()))).unwrap();
        let procs: Vec<GreedyProcess> = (0..n)
            .map(|i| {
                let id = NodeId::new(i as u32);
                GreedyProcess(GreedyNode::new(id, topo.neighbors(id).to_vec()))
            })
            .collect();
        let mut net = Network::new(topo, procs).unwrap();
        net.set_bit_budget(16);
        net.run_until_quiescent(10 * n as u64 + 20).unwrap();
        let mut pairs: Vec<(NodeId, NodeId)> = net
            .nodes()
            .iter()
            .filter_map(|p| p.0.matched().map(|m| (p.0.id(), m)))
            .filter(|&(a, b)| a < b)
            .collect();
        pairs.sort_unstable();
        pairs
    }

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn protocol_matches_fast_simulation_exactly() {
        let mut rng = SplitRng::new(21);
        for trial in 0..10 {
            let n = 30;
            let edges: Vec<(NodeId, NodeId)> = (0u32..n)
                .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
                .filter(|_| rng.next_bool(0.12))
                .map(|(u, v)| e(u, v))
                .collect();
            let fast = det_greedy(&edges);
            let proto = run_protocol(&edges, n as usize);
            assert_eq!(proto, fast.pairs, "trial {trial}");
            assert!(is_maximal_in(&edges, &proto), "trial {trial}");
        }
    }

    #[test]
    fn single_edge_protocol() {
        let pairs = run_protocol(&[e(0, 1)], 2);
        assert_eq!(pairs, vec![e(0, 1)]);
    }

    #[test]
    fn isolated_node_goes_silent() {
        let node = GreedyNode::new(NodeId::new(0), vec![]);
        assert!(!node.is_active());
    }

    #[test]
    fn path_graph_terminates_quietly() {
        let edges: Vec<_> = (0..9).map(|i| e(i, i + 1)).collect();
        let pairs = run_protocol(&edges, 10);
        assert!(is_maximal_in(&edges, &pairs));
        assert_eq!(pairs, det_greedy(&edges).pairs);
    }
}
