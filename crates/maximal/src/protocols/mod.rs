//! Message-passing implementations of the matching subroutines.
//!
//! These are per-node state machines designed to be *embedded* inside a
//! larger protocol's processes (the `asm-core` CONGEST engine runs them
//! inside `ProposalRound` step 3) or wrapped in the standalone
//! [`GreedyProcess`]/[`IiProcess`] adapters for direct execution on an
//! [`asm_congest::Network`].
//!
//! Both state machines make the **same random/greedy choices** as their
//! graph-level simulations ([`crate::det_greedy`], [`crate::israeli_itai`])
//! given the same seed and tag — the test suites in this module check
//! pair-for-pair equality.

mod greedy_node;
mod ii_node;
mod pr_node;
mod proposal_node;

pub use greedy_node::{GreedyNode, GreedyProcess};
pub use ii_node::{IiNode, IiProcess};
pub use pr_node::{run_pr_protocol, PrMsg, PrNode, PrProcess};
pub use proposal_node::{ProposalNode, ProposalProcess};

use asm_congest::Payload;
use serde::{Deserialize, Serialize};

/// Messages exchanged by the matching subroutines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmMsg {
    /// Greedy: "you are my minimum-id available neighbor".
    Cand,
    /// "I matched this round; remove me from your available set."
    Matched,
    /// Israeli–Itai step 1: random neighbor pick.
    Pick,
    /// Israeli–Itai step 2: the incoming pick I kept.
    Chosen,
    /// Israeli–Itai step 3: the incident G′ edge I selected.
    Select,
    /// Bipartite proposal: a left node proposes to its pointer target.
    Prop,
    /// Bipartite proposal: the right node accepts.
    Yes,
    /// Bipartite proposal: the right node rejects; advance your pointer.
    No,
}

impl Payload for MmMsg {
    fn bits(&self) -> usize {
        3 // message tag only; addressing is accounted by the network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_fits_congest_budget() {
        for m in [
            MmMsg::Cand,
            MmMsg::Matched,
            MmMsg::Pick,
            MmMsg::Chosen,
            MmMsg::Select,
            MmMsg::Prop,
            MmMsg::Yes,
            MmMsg::No,
        ] {
            assert!(m.bits() <= 8);
        }
    }
}
