//! Deterministic bipartite proposal matching.
//!
//! `G₀` — the accepted-proposal graph that `ProposalRound` needs to match
//! maximally — is always bipartite with a *known* bipartition (men /
//! women). That admits a classic deterministic algorithm simpler and
//! tighter than general-graph matching: left vertices walk their neighbor
//! lists proposing; right vertices keep the first (minimum-id) proposer
//! and reject the rest; rejected proposers advance. Every left vertex is
//! rejected at most `deg` times, so the algorithm finishes in
//! `O(Δ_left)` 2-round cycles — independent of `n`, unlike
//! [`crate::det_greedy`]'s `O(matching size)` worst case.
//!
//! Maximality: an unmatched left vertex was rejected by all neighbors,
//! and a right vertex only rejects once matched; an unmatched right
//! vertex never received a proposal, so each of its left neighbors
//! matched elsewhere (they would otherwise have reached it).

use crate::{MatchingOutcome, SubGraph};
use asm_congest::NodeId;
use std::collections::HashMap;

/// CONGEST rounds per proposal cycle (PROP, YES/NO).
pub const ROUNDS_PER_PROPOSAL_CYCLE: u64 = 2;

/// Computes a maximal matching of a bipartite graph by deterministic
/// proposals from the left side.
///
/// `is_left` must 2-color the graph: every edge needs exactly one left
/// endpoint.
///
/// # Panics
///
/// Panics (in debug builds) if some edge has two left or two right
/// endpoints.
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_maximal::{bipartite_proposal, is_maximal_in};
///
/// let e = |a, b| (NodeId::new(a), NodeId::new(b));
/// // Left side: ids < 10.
/// let edges = vec![e(0, 10), e(0, 11), e(1, 10), e(2, 11)];
/// let out = bipartite_proposal(&edges, |v| v.raw() < 10);
/// assert!(out.maximal);
/// assert!(is_maximal_in(&edges, &out.pairs));
/// // Rounds bounded by the left degree, not the graph size.
/// assert!(out.rounds <= 2 * 3);
/// ```
pub fn bipartite_proposal(
    edges: &[(NodeId, NodeId)],
    is_left: impl Fn(NodeId) -> bool,
) -> MatchingOutcome {
    let g = SubGraph::from_edges(edges);
    let mut lefts: Vec<NodeId> = g
        .vertices_sorted()
        .into_iter()
        .filter(|&v| is_left(v))
        .collect();
    lefts.sort_unstable();
    debug_assert!(
        edges.iter().all(|&(u, v)| is_left(u) != is_left(v)),
        "is_left must 2-color the graph"
    );

    let mut pointer: HashMap<NodeId, usize> = lefts.iter().map(|&v| (v, 0)).collect();
    let mut matched: HashMap<NodeId, NodeId> = HashMap::new();
    let mut cycles: u64 = 0;
    loop {
        // Left vertices propose to their current pointer target.
        let mut proposals: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &v in &lefts {
            if matched.contains_key(&v) {
                continue;
            }
            let nbrs = g.neighbors(v);
            if let Some(&target) = nbrs.get(pointer[&v]) {
                proposals.entry(target).or_default().push(v);
            }
        }
        if proposals.is_empty() {
            break;
        }
        cycles += 1;
        // Right vertices accept the minimum-id proposer if unmatched.
        let mut targets: Vec<NodeId> = proposals.keys().copied().collect();
        targets.sort_unstable();
        for u in targets {
            let mut props = proposals.remove(&u).expect("key just listed");
            props.sort_unstable();
            let accepted = if matched.contains_key(&u) {
                None
            } else {
                Some(props[0])
            };
            if let Some(winner) = accepted {
                matched.insert(u, winner);
                matched.insert(winner, u);
            }
            for v in props {
                if Some(v) != accepted {
                    *pointer.get_mut(&v).expect("proposer is a left vertex") += 1;
                }
            }
        }
    }
    let mut pairs: Vec<(NodeId, NodeId)> = matched
        .iter()
        .filter(|&(a, b)| a < b)
        .map(|(&a, &b)| (a, b))
        .collect();
    pairs.sort_unstable();
    MatchingOutcome {
        pairs,
        rounds: cycles * ROUNDS_PER_PROPOSAL_CYCLE,
        iterations: cycles,
        maximal: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_maximal, is_maximal_in};
    use asm_congest::SplitRng;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    fn left(v: NodeId) -> bool {
        v.raw() < 100
    }

    fn random_bipartite(n: u32, d: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut rng = SplitRng::new(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            let mut seen = Vec::new();
            for _ in 0..d {
                let v = 100 + rng.next_range(n as usize) as u32;
                if !seen.contains(&v) {
                    seen.push(v);
                    edges.push(e(u, v));
                }
            }
        }
        edges
    }

    #[test]
    fn empty_graph() {
        let out = bipartite_proposal(&[], left);
        assert!(out.maximal);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn single_edge() {
        let out = bipartite_proposal(&[e(0, 100)], left);
        assert_eq!(out.pairs, vec![e(0, 100)]);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn maximal_on_random_graphs() {
        for seed in 0..15 {
            let edges = random_bipartite(30, 4, seed);
            let out = bipartite_proposal(&edges, left);
            assert!(is_maximal_in(&edges, &out.pairs), "seed {seed}");
            // Cycles bounded by max left degree + 1.
            assert!(out.iterations <= 5, "seed {seed}: {}", out.iterations);
        }
    }

    #[test]
    fn contention_on_one_right_vertex() {
        // A star into one right vertex: only one edge can match; all left
        // vertices exhaust in one rejection each, processed in parallel.
        let edges: Vec<_> = (0..5).map(|i| e(i, 100)).collect();
        let out = bipartite_proposal(&edges, left);
        assert_eq!(out.pairs, vec![e(0, 100)]);
        assert_eq!(out.iterations, 1, "rejections happen in the same cycle");
    }

    #[test]
    fn rounds_independent_of_graph_size() {
        // d-bounded left degrees: cycles <= d + 1 regardless of n.
        let small = bipartite_proposal(&random_bipartite(10, 3, 1), left);
        let large = bipartite_proposal(&random_bipartite(90, 3, 1), left);
        assert!(small.iterations <= 4);
        assert!(large.iterations <= 4);
    }

    #[test]
    fn size_comparable_to_greedy() {
        let edges = random_bipartite(40, 5, 9);
        let ours = bipartite_proposal(&edges, left).pairs.len();
        let greedy = greedy_maximal(&edges).len();
        // Both are maximal matchings, so within a factor 2 of each other.
        assert!(ours * 2 >= greedy && greedy * 2 >= ours);
    }
}
