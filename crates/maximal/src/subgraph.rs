//! Sparse adjacency over an arbitrary set of node ids.
//!
//! The matching subroutines run on *subgraphs* of the communication graph
//! (the accepted-proposal graph `G₀` of `ProposalRound`), whose vertex sets
//! are sparse subsets of the global id space — so adjacency is keyed by
//! [`NodeId`] rather than stored densely.

use asm_congest::NodeId;
use std::collections::HashMap;

/// Mutable sparse adjacency used by the graph-level matcher simulations.
///
/// Node iteration order is always ascending id, and neighbor lists are kept
/// sorted — this determinism is what lets the fast simulations replay the
/// exact random choices of the message-passing implementations.
#[derive(Clone, Debug, Default)]
pub struct SubGraph {
    adj: HashMap<NodeId, Vec<NodeId>>,
}

impl SubGraph {
    /// Builds the subgraph from an edge list (duplicates ignored).
    pub fn from_edges(edges: &[(NodeId, NodeId)]) -> Self {
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            adj.entry(u).or_default().push(v);
            adj.entry(v).or_default().push(u);
        }
        for list in adj.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        SubGraph { adj }
    }

    /// Number of vertices currently present (with at least one neighbor or
    /// explicitly retained).
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Whether no vertices remain.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Vertices in ascending id order.
    pub fn vertices_sorted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.adj.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Sorted neighbors of `v` (empty if absent).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.adj.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Degree of `v` (0 if absent).
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Removes a set of vertices and all incident edges, then drops any
    /// vertices left isolated (the removal step of Israeli–Itai's
    /// `MatchingRound`).
    pub fn remove_vertices(&mut self, removed: &[NodeId]) {
        for v in removed {
            self.adj.remove(v);
        }
        let removed_set: std::collections::HashSet<NodeId> = removed.iter().copied().collect();
        for list in self.adj.values_mut() {
            list.retain(|u| !removed_set.contains(u));
        }
        self.adj.retain(|_, list| !list.is_empty());
    }

    /// Number of edges currently present.
    pub fn num_edges(&self) -> usize {
        self.adj.values().map(Vec::len).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn builds_sorted_adjacency() {
        let g = SubGraph::from_edges(&[e(5, 1), e(1, 9), e(9, 5)]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(
            g.neighbors(NodeId::new(1)),
            &[NodeId::new(5), NodeId::new(9)]
        );
        assert_eq!(
            g.vertices_sorted(),
            vec![NodeId::new(1), NodeId::new(5), NodeId::new(9)]
        );
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let g = SubGraph::from_edges(&[e(0, 1), e(1, 0), e(2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId::new(2)), 0);
    }

    #[test]
    fn remove_vertices_drops_isolated() {
        let mut g = SubGraph::from_edges(&[e(0, 1), e(1, 2), e(2, 3)]);
        g.remove_vertices(&[NodeId::new(1), NodeId::new(2)]);
        assert!(g.is_empty(), "0 and 3 became isolated and must be dropped");
    }

    #[test]
    fn remove_keeps_connected_rest() {
        let mut g = SubGraph::from_edges(&[e(0, 1), e(2, 3)]);
        g.remove_vertices(&[NodeId::new(0)]);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId::new(3)), 1);
    }

    #[test]
    fn absent_vertex_queries() {
        let g = SubGraph::from_edges(&[e(0, 1)]);
        assert_eq!(g.neighbors(NodeId::new(7)), &[] as &[NodeId]);
        assert_eq!(g.degree(NodeId::new(7)), 0);
    }
}
