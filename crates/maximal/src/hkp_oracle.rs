//! The Hańćkowiak–Karoński–Panconesi oracle.
//!
//! The paper's deterministic `ASM` uses the HKP distributed maximal
//! matching algorithm [6] as a black box with round complexity
//! `O(log⁴ n)`. HKP's construction (degree splitting over Euler tours,
//! recursive two-coloring) is far outside the scope of its role here —
//! ASM's analysis uses only the *maximality* of the result — so this
//! module substitutes an oracle: it computes a deterministic maximal
//! matching sequentially and **charges** the HKP round bound
//! `⌈log₂ n⌉⁴`. See DESIGN.md §4 for the substitution argument; the
//! [`crate::det_greedy`] matcher provides a real message-passing
//! deterministic alternative with *measured* rounds.

use crate::{greedy_maximal, MatchingOutcome};
use asm_congest::NodeId;

/// The charged round cost of one HKP invocation on an `n`-node network:
/// `max(1, ⌈log₂ n⌉)⁴`.
///
/// ```
/// assert_eq!(asm_maximal::hkp_charged_rounds(2), 1);
/// assert_eq!(asm_maximal::hkp_charged_rounds(1024), 10_000);
/// ```
pub fn hkp_charged_rounds(n: usize) -> u64 {
    let log = (usize::BITS - n.max(1).next_power_of_two().leading_zeros())
        .saturating_sub(1)
        .max(1) as u64;
    log.pow(4)
}

/// Computes a maximal matching and charges the HKP `O(log⁴ n)` bound,
/// where `n` is the size of the *global* network (the oracle models an
/// algorithm whose round count depends on `n`, not on the subgraph).
///
/// The matching itself is [`greedy_maximal`], which is deterministic — the
/// property ASM's Lemmas 1–7 require.
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_maximal::{hkp_oracle, is_maximal_in};
///
/// let e = |a, b| (NodeId::new(a), NodeId::new(b));
/// let edges = vec![e(0, 1), e(1, 2)];
/// let out = hkp_oracle(16, &edges);
/// assert!(out.maximal);
/// assert!(is_maximal_in(&edges, &out.pairs));
/// assert_eq!(out.rounds, 4u64.pow(4));
/// ```
pub fn hkp_oracle(n_global: usize, edges: &[(NodeId, NodeId)]) -> MatchingOutcome {
    MatchingOutcome {
        pairs: greedy_maximal(edges),
        rounds: hkp_charged_rounds(n_global),
        iterations: 1,
        maximal: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charged_rounds_grow_polylog() {
        assert_eq!(hkp_charged_rounds(1), 1);
        assert_eq!(hkp_charged_rounds(16), 256);
        assert_eq!(hkp_charged_rounds(17), 625);
        assert!(hkp_charged_rounds(1 << 20) == 160_000);
    }

    #[test]
    fn oracle_result_is_maximal() {
        let e = |a, b| (NodeId::new(a), NodeId::new(b));
        let edges = vec![e(0, 1), e(0, 2), e(3, 1)];
        let out = hkp_oracle(8, &edges);
        assert!(crate::is_maximal_in(&edges, &out.pairs));
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn empty_graph_still_charged() {
        // The schedule must be agreed upon in advance; silence is billed.
        let out = hkp_oracle(64, &[]);
        assert!(out.pairs.is_empty());
        assert_eq!(out.rounds, 1296);
    }
}
