//! Panconesi–Rizzi deterministic maximal matching:
//! `O(Δ + log* n)` rounds via forest decomposition and Cole–Vishkin
//! 3-coloring.
//!
//! This is the strongest *implementable* deterministic stand-in for the
//! Hańćkowiak–Karoński–Panconesi black box (DESIGN.md §4): unlike the
//! simple greedy matcher (`O(n)` worst case) its round bound depends on
//! the maximum degree and the iterated logarithm only.
//!
//! Structure:
//!
//! 1. **Forest decomposition.** Orient every edge toward its higher-id
//!    endpoint; each vertex indexes its out-edges `1..≤Δ`. The edges with
//!    index `f` form a forest `F_f` (orientations strictly increase ids,
//!    so no cycles), with `parent(v)` = the out-neighbor. All forests are
//!    processed **in parallel** during coloring (disjoint edges).
//! 2. **Cole–Vishkin coloring.** Within each forest, colors start as
//!    node ids and shrink by the classic bit-trick — `new = 2·i + bit_i`
//!    where `i` is the lowest bit position where the vertex's and its
//!    parent's colors differ — reaching 6 colors in `O(log* n)` single
//!    round iterations, then 3 colors by three shift-down/recolor passes.
//! 3. **Matching.** For each forest `f` and color `c`, unmatched vertices
//!    of color `c` propose to their (unmatched) parent in `F_f`; parents
//!    accept one proposal. Same-colored vertices are never parent/child,
//!    so proposals never collide head-on; after all `3Δ` steps the
//!    matching is maximal: any surviving edge lies in some forest, and
//!    its child endpoint would have proposed to its then-unmatched parent
//!    when its `(f, c)` step ran.

use crate::{MatchingOutcome, SubGraph};
use asm_congest::NodeId;
use std::collections::HashMap;

/// Fixed Cole–Vishkin schedule length: from 64-bit initial colors the bit
/// width shrinks 64 → 7 → 4 → 3 bits, landing in {0..5} after 4
/// iterations; 6 gives margin and — crucially — a *globally known*
/// schedule, so distributed nodes need no convergence detection. Colors in
/// {0..5} are a fixed point of the iteration's range, so extra iterations
/// are harmless (they still permute colors, which is why the simulation
/// and the protocol must run the same count).
const CV_ITERATIONS: u64 = 6;

/// The fixed Cole–Vishkin schedule length shared by the simulation and
/// the message-passing protocol.
pub(crate) fn cv_schedule_len() -> u64 {
    CV_ITERATIONS
}
/// Rounds charged per Cole–Vishkin iteration (one color exchange).
const ROUNDS_PER_CV_ITER: u64 = 1;
/// Rounds per shift-down/recolor pass (shift, learn children, recolor).
const ROUNDS_PER_REDUCTION_PASS: u64 = 3;
/// Rounds per (forest, color) matching step (propose, accept, announce).
const ROUNDS_PER_MATCH_STEP: u64 = 3;

/// One rooted forest of the decomposition.
#[derive(Debug, Default)]
struct Forest {
    /// `parent[v]` — the unique out-edge of `v` assigned to this forest.
    parent: HashMap<NodeId, NodeId>,
    /// Current vertex colors (only vertices incident to the forest).
    color: HashMap<NodeId, u64>,
}

impl Forest {
    fn vertices_sorted(&self) -> Vec<NodeId> {
        let mut vs: Vec<NodeId> = self.color.keys().copied().collect();
        vs.sort_unstable();
        vs
    }

    /// The color a vertex compares against: its parent's, or a pseudo
    /// parent differing in bit 0 for roots.
    fn parent_color(&self, v: NodeId) -> u64 {
        match self.parent.get(&v) {
            Some(p) => self.color[p],
            None => self.color[&v] ^ 1,
        }
    }

    /// One Cole–Vishkin iteration; returns the largest color afterwards.
    fn cv_iteration(&mut self) -> u64 {
        let vs = self.vertices_sorted();
        let mut next: HashMap<NodeId, u64> = HashMap::with_capacity(vs.len());
        for &v in &vs {
            let c = self.color[&v];
            let pc = self.parent_color(v);
            let diff = c ^ pc;
            debug_assert_ne!(diff, 0, "proper coloring violated before CV step");
            let i = diff.trailing_zeros() as u64;
            next.insert(v, 2 * i + ((c >> i) & 1));
        }
        self.color = next;
        self.color.values().copied().max().unwrap_or(0)
    }

    /// Children lists under the current parent pointers.
    fn children(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut ch: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (&v, &p) in &self.parent {
            ch.entry(p).or_default().push(v);
        }
        ch
    }

    /// One shift-down + recolor pass eliminating color `target`.
    fn reduction_pass(&mut self, target: u64) {
        // Shift down: everyone takes their parent's color; roots rotate
        // within {0,1,2} so they differ from their children (= old self).
        let old = self.color.clone();
        for v in self.vertices_sorted() {
            let new = match self.parent.get(&v) {
                Some(p) => old[p],
                None => (old[&v] + 1) % 3,
            };
            self.color.insert(v, new);
        }
        // Recolor the target class: forbidden colors are the parent's and
        // the (uniform, post-shift) children's.
        let children = self.children();
        let snapshot = self.color.clone();
        for v in self.vertices_sorted() {
            if snapshot[&v] != target {
                continue;
            }
            let mut forbidden = vec![];
            if let Some(p) = self.parent.get(&v) {
                forbidden.push(snapshot[p]);
            }
            if let Some(ch) = children.get(&v) {
                for &c in ch {
                    forbidden.push(snapshot[&c]);
                }
            }
            let free = (0..3)
                .find(|c| !forbidden.contains(c))
                .expect("children share one color after shift-down, so <= 2 forbidden");
            self.color.insert(v, free);
        }
    }

    /// Debug check: parent/child colors differ.
    fn is_properly_colored(&self) -> bool {
        self.parent
            .iter()
            .all(|(v, p)| self.color[v] != self.color[p])
    }
}

/// Computes a maximal matching deterministically in `O(Δ + log* n)`
/// simulated rounds (Panconesi & Rizzi).
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_maximal::{is_maximal_in, panconesi_rizzi};
///
/// let e = |a, b| (NodeId::new(a), NodeId::new(b));
/// let edges = vec![e(0, 1), e(1, 2), e(2, 3), e(3, 4), e(0, 4)];
/// let out = panconesi_rizzi(&edges);
/// assert!(out.maximal);
/// assert!(is_maximal_in(&edges, &out.pairs));
/// ```
pub fn panconesi_rizzi(edges: &[(NodeId, NodeId)]) -> MatchingOutcome {
    let g = SubGraph::from_edges(edges);
    if g.is_empty() {
        return MatchingOutcome {
            pairs: Vec::new(),
            rounds: 0,
            iterations: 0,
            maximal: true,
        };
    }

    // 1. Forest decomposition: out-edges point to higher ids; the j-th
    // out-edge of each vertex joins forest j.
    let mut forests: Vec<Forest> = Vec::new();
    for v in g.vertices_sorted() {
        let outs: Vec<NodeId> = g.neighbors(v).iter().copied().filter(|&u| u > v).collect();
        for (j, &u) in outs.iter().enumerate() {
            if forests.len() <= j {
                forests.push(Forest::default());
            }
            forests[j].parent.insert(v, u);
            forests[j].color.entry(v).or_insert(v.raw() as u64);
            forests[j].color.entry(u).or_insert(u.raw() as u64);
        }
    }
    let num_forests = forests.len();

    // 2. Cole–Vishkin to 6 colors (all forests in parallel, fixed
    // schedule of CV_ITERATIONS rounds), then 6 -> 3.
    for forest in &mut forests {
        for _ in 0..CV_ITERATIONS {
            let max_color = forest.cv_iteration();
            debug_assert!(forest.is_properly_colored());
            let _ = max_color;
        }
        debug_assert!(
            forest.color.values().all(|&c| c < 6),
            "CV_ITERATIONS must reach 6 colors from u64 ids"
        );
        for target in [5, 4, 3] {
            forest.reduction_pass(target);
            debug_assert!(forest.is_properly_colored());
        }
        debug_assert!(forest.color.values().all(|&c| c < 3));
    }

    // 3. Matching: one (forest, color) step at a time.
    let mut matched: HashMap<NodeId, NodeId> = HashMap::new();
    for forest in &forests {
        for c in 0..3u64 {
            let mut proposals: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for v in forest.vertices_sorted() {
                if matched.contains_key(&v) || forest.color[&v] != c {
                    continue;
                }
                if let Some(&p) = forest.parent.get(&v) {
                    if !matched.contains_key(&p) {
                        proposals.entry(p).or_default().push(v);
                    }
                }
            }
            let mut targets: Vec<NodeId> = proposals.keys().copied().collect();
            targets.sort_unstable();
            for p in targets {
                let winner = proposals[&p][0]; // ascending already
                matched.insert(p, winner);
                matched.insert(winner, p);
            }
        }
    }

    let mut pairs: Vec<(NodeId, NodeId)> = matched
        .iter()
        .filter(|&(a, b)| a < b)
        .map(|(&a, &b)| (a, b))
        .collect();
    pairs.sort_unstable();
    let rounds = CV_ITERATIONS * ROUNDS_PER_CV_ITER
        + 3 * ROUNDS_PER_REDUCTION_PASS
        + 3 * num_forests as u64 * ROUNDS_PER_MATCH_STEP;
    MatchingOutcome {
        pairs,
        rounds,
        iterations: num_forests as u64,
        maximal: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_maximal_in;
    use asm_congest::SplitRng;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    fn random_graph(n: u32, p: f64, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut rng = SplitRng::new(seed);
        (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .filter(|_| rng.next_bool(p))
            .map(|(u, v)| e(u, v))
            .collect()
    }

    #[test]
    fn empty_and_single_edge() {
        assert!(panconesi_rizzi(&[]).maximal);
        let out = panconesi_rizzi(&[e(3, 7)]);
        assert_eq!(out.pairs, vec![e(3, 7)]);
    }

    #[test]
    fn maximal_on_random_graphs() {
        for seed in 0..20 {
            let edges = random_graph(40, 0.12, seed);
            let out = panconesi_rizzi(&edges);
            assert!(out.maximal);
            assert!(is_maximal_in(&edges, &out.pairs), "seed {seed}");
        }
    }

    #[test]
    fn maximal_on_paths_cycles_stars() {
        let path: Vec<_> = (0..20).map(|i| e(i, i + 1)).collect();
        let cycle: Vec<_> = (0..21).map(|i| e(i, (i + 1) % 21)).collect();
        let star: Vec<_> = (1..15).map(|i| e(0, i)).collect();
        for (name, edges) in [("path", path), ("cycle", cycle), ("star", star)] {
            let out = panconesi_rizzi(&edges);
            assert!(is_maximal_in(&edges, &out.pairs), "{name}");
        }
    }

    #[test]
    fn rounds_scale_with_degree_not_size() {
        // Fixed max degree: rounds stay nearly flat as n grows 8x.
        let rounds = |n: u32| {
            // Union of 3 shifted "perfect matchings": max degree ~6.
            let edges: Vec<_> = (0..3u32)
                .flat_map(|k| (0..n).map(move |i| (i, n + (i + k * 7) % n)))
                .map(|(u, v)| e(u, v))
                .collect();
            panconesi_rizzi(&edges).rounds
        };
        let (small, large) = (rounds(64), rounds(512));
        assert!(
            large <= small + 6,
            "rounds grew from {small} to {large} with constant degree"
        );
    }

    #[test]
    fn deterministic() {
        let edges = random_graph(30, 0.2, 5);
        assert_eq!(panconesi_rizzi(&edges), panconesi_rizzi(&edges));
    }

    #[test]
    fn high_degree_pays_linearly_in_delta() {
        // A clique: Delta = n-1 forests; rounds dominated by 9 * forests.
        let n = 16u32;
        let clique: Vec<_> = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .map(|(u, v)| e(u, v))
            .collect();
        let out = panconesi_rizzi(&clique);
        assert!(is_maximal_in(&clique, &out.pairs));
        assert_eq!(out.iterations, (n - 1) as u64, "one forest per out-degree");
    }
}
