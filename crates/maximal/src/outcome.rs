//! Results of maximal-matching subroutines.

use asm_congest::NodeId;
use serde::{Deserialize, Serialize};

/// Outcome of a (possibly truncated) distributed matching subroutine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchingOutcome {
    /// Matched pairs, each once.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// CONGEST communication rounds consumed — measured for the real
    /// distributed algorithms, *charged* for the HKP oracle.
    pub rounds: u64,
    /// Top-level iterations executed (`MatchingRound`s for Israeli–Itai,
    /// propose/match cycles for the deterministic greedy).
    pub iterations: u64,
    /// Whether the result is guaranteed maximal (truncated randomized runs
    /// may leave residual edges).
    pub maximal: bool,
}

impl MatchingOutcome {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair was matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Checks maximality of `pairs` within the graph given by `edges`: a
/// matching is maximal iff every edge has a matched endpoint
/// (Definition 3).
///
/// Also verifies that `pairs` is a matching over `edges` in the first
/// place; returns `false` if a pair is not an edge or endpoints repeat.
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_maximal::is_maximal_in;
///
/// let e = |a, b| (NodeId::new(a), NodeId::new(b));
/// let path = vec![e(0, 1), e(1, 2), e(2, 3)];
/// assert!(is_maximal_in(&path, &[e(1, 2)]));        // middle edge covers all
/// assert!(!is_maximal_in(&path, &[e(0, 1)]));       // (2,3) uncovered
/// assert!(is_maximal_in(&path, &[e(0, 1), e(2, 3)]));
/// ```
pub fn is_maximal_in(edges: &[(NodeId, NodeId)], pairs: &[(NodeId, NodeId)]) -> bool {
    use std::collections::HashSet;
    let edge_set: HashSet<(NodeId, NodeId)> =
        edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
    let mut covered: HashSet<NodeId> = HashSet::new();
    for &(u, v) in pairs {
        if u == v || !edge_set.contains(&(u.min(v), u.max(v))) {
            return false;
        }
        if !covered.insert(u) || !covered.insert(v) {
            return false; // endpoint reused: not a matching
        }
    }
    edges
        .iter()
        .all(|&(u, v)| covered.contains(&u) || covered.contains(&v))
}

/// Counts the vertices *violating* maximality: unmatched vertices with at
/// least one unmatched neighbor. This is the `|V'|` of Definition 4, used
/// to certify `(1−η)`-maximality of [`crate::amm`] outputs.
pub fn maximality_violators(edges: &[(NodeId, NodeId)], pairs: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    use std::collections::HashSet;
    let matched: HashSet<NodeId> = pairs.iter().flat_map(|&(u, v)| [u, v]).collect();
    let mut violators: HashSet<NodeId> = HashSet::new();
    for &(u, v) in edges {
        if !matched.contains(&u) && !matched.contains(&v) {
            violators.insert(u);
            violators.insert(v);
        }
    }
    let mut out: Vec<NodeId> = violators.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn empty_graph_everything_maximal() {
        assert!(is_maximal_in(&[], &[]));
        assert!(maximality_violators(&[], &[]).is_empty());
    }

    #[test]
    fn non_edge_pair_rejected() {
        assert!(!is_maximal_in(&[e(0, 1)], &[e(0, 2)]));
    }

    #[test]
    fn reused_endpoint_rejected() {
        assert!(!is_maximal_in(&[e(0, 1), e(1, 2)], &[e(0, 1), e(1, 2)]));
    }

    #[test]
    fn self_pair_rejected() {
        assert!(!is_maximal_in(&[e(0, 1)], &[e(1, 1)]));
    }

    #[test]
    fn violators_on_uncovered_triangle() {
        let edges = vec![e(0, 1), e(1, 2), e(2, 0), e(3, 4)];
        let v = maximality_violators(&edges, &[e(0, 1)]);
        assert_eq!(v, vec![NodeId::new(3), NodeId::new(4)]);
    }

    #[test]
    fn reversed_edge_orientation_accepted() {
        assert!(is_maximal_in(&[e(1, 0)], &[e(0, 1)]));
    }

    #[test]
    fn outcome_len_helpers() {
        let o = MatchingOutcome {
            pairs: vec![e(0, 1)],
            rounds: 2,
            iterations: 1,
            maximal: true,
        };
        assert_eq!(o.len(), 1);
        assert!(!o.is_empty());
    }
}
