//! Sequential reference matcher.

use asm_congest::NodeId;
use std::collections::HashSet;

/// Computes a maximal matching sequentially by greedily scanning edges in
/// ascending `(min id, max id)` key order.
///
/// Deterministic; used as the ground-truth reference in tests and as the
/// matching computation behind [`crate::hkp_oracle`].
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_maximal::{greedy_maximal, is_maximal_in};
///
/// let e = |a, b| (NodeId::new(a), NodeId::new(b));
/// let edges = vec![e(0, 1), e(1, 2), e(2, 3)];
/// let pairs = greedy_maximal(&edges);
/// assert!(is_maximal_in(&edges, &pairs));
/// assert_eq!(pairs, vec![e(0, 1), e(2, 3)]); // lowest keys first
/// ```
pub fn greedy_maximal(edges: &[(NodeId, NodeId)]) -> Vec<(NodeId, NodeId)> {
    let mut keys: Vec<(NodeId, NodeId)> = edges
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut matched: HashSet<NodeId> = HashSet::new();
    let mut pairs = Vec::new();
    for (u, v) in keys {
        if !matched.contains(&u) && !matched.contains(&v) {
            matched.insert(u);
            matched.insert(v);
            pairs.push((u, v));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_maximal_in;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn empty_edges() {
        assert!(greedy_maximal(&[]).is_empty());
    }

    #[test]
    fn star_matches_one_edge() {
        let edges = vec![e(0, 1), e(0, 2), e(0, 3)];
        let pairs = greedy_maximal(&edges);
        assert_eq!(pairs, vec![e(0, 1)]);
        assert!(is_maximal_in(&edges, &pairs));
    }

    #[test]
    fn duplicate_and_reversed_edges_tolerated() {
        let edges = vec![e(1, 0), e(0, 1), e(2, 2)];
        assert_eq!(greedy_maximal(&edges), vec![e(0, 1)]);
    }

    #[test]
    fn maximal_on_random_graphs() {
        use asm_congest::SplitRng;
        let mut rng = SplitRng::new(77);
        for trial in 0..20 {
            let n = 30;
            let edges: Vec<(NodeId, NodeId)> = (0..n)
                .flat_map(|u: u32| (u + 1..n).map(move |v| (u, v)))
                .filter(|_| rng.next_bool(0.15))
                .map(|(u, v)| (NodeId::new(u), NodeId::new(v)))
                .collect();
            let pairs = greedy_maximal(&edges);
            assert!(is_maximal_in(&edges, &pairs), "trial {trial}");
        }
    }
}
