//! Deterministic distributed greedy matching — the workspace's substitute
//! for Hańćkowiak–Karoński–Panconesi (see DESIGN.md §4).
//!
//! Protocol: in every 2-round cycle, each unmatched vertex points at its
//! minimum-id available neighbor (CAND); mutually pointing pairs match and
//! announce (MATCHED); neighbors prune matched vertices. The edge with the
//! globally minimum `(min id, max id)` key is always mutual, so every cycle
//! matches at least one edge and the result is a **maximal** matching after
//! at most `|M|` cycles — worst case `O(n)` rounds, but `O(log n)`-ish on
//! the random accepted-proposal graphs ASM generates (measured by the T2
//! experiment).

use crate::{MatchingOutcome, SubGraph};
use asm_congest::NodeId;

/// CONGEST rounds per greedy cycle (CAND, MATCHED).
pub const ROUNDS_PER_CYCLE: u64 = 2;

/// Result of a greedy run with the per-cycle survivor series exposed
/// (the deterministic counterpart of [`crate::IiRun`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreedyRun {
    /// Matching found, rounds consumed, maximality flag.
    pub outcome: MatchingOutcome,
    /// `survivors[i]` = active vertices *before* cycle `i`;
    /// `survivors[0] = |V₀|`, and the final entry (always 0 — the greedy
    /// runs to maximality) records the count after the last cycle.
    pub survivors: Vec<usize>,
}

/// Runs the deterministic greedy matcher to maximality.
///
/// # Examples
///
/// ```
/// use asm_congest::NodeId;
/// use asm_maximal::{det_greedy, is_maximal_in};
///
/// let e = |a, b| (NodeId::new(a), NodeId::new(b));
/// let edges = vec![e(0, 3), e(3, 1), e(1, 4), e(4, 2)];
/// let out = det_greedy(&edges);
/// assert!(out.maximal);
/// assert!(is_maximal_in(&edges, &out.pairs));
/// ```
pub fn det_greedy(edges: &[(NodeId, NodeId)]) -> MatchingOutcome {
    det_greedy_run(edges).outcome
}

/// As [`det_greedy`], also returning the per-cycle survivor series.
pub fn det_greedy_run(edges: &[(NodeId, NodeId)]) -> GreedyRun {
    let mut g = SubGraph::from_edges(edges);
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut survivors = vec![g.num_vertices()];
    let mut cycles: u64 = 0;
    while !g.is_empty() {
        cycles += 1;
        // Every surviving vertex candidates its min-id neighbor (the
        // neighbor lists are sorted, so this is the first entry).
        let vertices = g.vertices_sorted();
        let mut matched: Vec<(NodeId, NodeId)> = Vec::new();
        for &v in &vertices {
            let nbrs = g.neighbors(v);
            debug_assert!(!nbrs.is_empty());
            let cand = nbrs[0];
            if v < cand && g.neighbors(cand).first() == Some(&v) {
                matched.push((v, cand));
            }
        }
        debug_assert!(!matched.is_empty(), "the minimum edge is always mutual");
        pairs.extend(matched.iter().copied());
        let removed: Vec<NodeId> = matched.iter().flat_map(|&(a, b)| [a, b]).collect();
        g.remove_vertices(&removed);
        survivors.push(g.num_vertices());
    }
    pairs.sort_unstable();
    GreedyRun {
        outcome: MatchingOutcome {
            pairs,
            rounds: cycles * ROUNDS_PER_CYCLE,
            iterations: cycles,
            maximal: true,
        },
        survivors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_maximal, is_maximal_in};
    use asm_congest::SplitRng;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn empty_graph() {
        let out = det_greedy(&[]);
        assert!(out.maximal);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn single_edge_one_cycle() {
        let out = det_greedy(&[e(4, 2)]);
        assert_eq!(out.pairs, vec![e(2, 4)]);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.rounds, 2);
    }

    #[test]
    fn path_serializes_into_cycles() {
        // Path 0-1-2-3-4-5: cycle 1 matches (0,1) (min edge); 2 becomes
        // isolated-from-0's-side... then (2,3), then (4,5).
        let edges: Vec<_> = (0..5).map(|i| e(i, i + 1)).collect();
        let out = det_greedy(&edges);
        assert_eq!(out.pairs, vec![e(0, 1), e(2, 3), e(4, 5)]);
        assert!(out.maximal);
    }

    #[test]
    fn matches_at_least_one_edge_per_cycle() {
        let mut rng = SplitRng::new(5);
        for _ in 0..10 {
            let edges: Vec<_> = (0u32..40)
                .flat_map(|u| (u + 1..40).map(move |v| (u, v)))
                .filter(|_| rng.next_bool(0.1))
                .map(|(u, v)| e(u, v))
                .collect();
            let out = det_greedy(&edges);
            assert!(is_maximal_in(&edges, &out.pairs));
            assert!(out.iterations <= out.pairs.len() as u64 + 1);
        }
    }

    #[test]
    fn agrees_with_sequential_greedy_on_keys() {
        // Both greedily prefer low edge keys; on a star they agree exactly.
        let edges = vec![e(0, 5), e(0, 3), e(0, 9)];
        assert_eq!(det_greedy(&edges).pairs, greedy_maximal(&edges));
    }

    #[test]
    fn rounds_scale_with_cycles() {
        let edges: Vec<_> = (0..7).map(|i| e(i, i + 1)).collect();
        let out = det_greedy(&edges);
        assert_eq!(out.rounds, out.iterations * ROUNDS_PER_CYCLE);
    }
}
