//! Pluggable maximal-matching backends.

use crate::{
    bipartite_proposal, det_greedy, det_greedy_run, hkp_oracle, israeli_itai, panconesi_rizzi,
    MatchingOutcome,
};
use asm_congest::{NodeId, SplitRng};
use serde::{Deserialize, Serialize};

/// One backend invocation with its per-round progression exposed.
///
/// The iterative matchers (`DetGreedy`, `IsraeliItai`) report how many
/// vertices were still active before each top-level iteration; the
/// conformance oracles use the series to check monotone progress and
/// that truncation flags (`outcome.maximal`) agree with the residual
/// count. Backends without an iterative graph-level form (`HkpOracle`,
/// `BipartiteProposal`, `PanconesiRizzi`) leave the series empty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendRun {
    /// Final matching outcome, as [`MatcherBackend::run`] returns.
    pub outcome: MatchingOutcome,
    /// `survivors[i]` = active vertices before iteration `i`; the final
    /// entry records the count after the last executed iteration. Empty
    /// for untraced backends.
    pub survivors: Vec<usize>,
}

/// The maximal-matching subroutine used inside `ProposalRound` (step 3).
///
/// | Backend | Deterministic? | Maximal? | Rounds |
/// |---|---|---|---|
/// | [`MatcherBackend::HkpOracle`] | yes | yes | charged `⌈log₂ n⌉⁴` (paper's Theorem 2 bound) |
/// | [`MatcherBackend::DetGreedy`] | yes | yes | measured, `O(n)` worst case |
/// | [`MatcherBackend::BipartiteProposal`] | yes | yes | measured, `O(Δ_left)` |
/// | [`MatcherBackend::PanconesiRizzi`] | yes | yes | measured, `O(Δ + log* n)` |
/// | [`MatcherBackend::IsraeliItai`] | no | w.h.p. | measured, ≤ 4·`max_iterations` |
///
/// The first two instantiate the deterministic `ASM` of Theorems 3–4; the
/// third instantiates `RandASM` (Theorem 5) and, with a small iteration
/// budget, the `AMM` subroutine of `AlmostRegularASM` (Theorem 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatcherBackend {
    /// Sequentially computed maximal matching charged at the HKP
    /// `O(log⁴ n)` round bound (see DESIGN.md §4).
    HkpOracle,
    /// Real deterministic distributed greedy matcher, measured rounds.
    DetGreedy,
    /// Real deterministic bipartite proposal matcher (left side = the
    /// first endpoint of each edge), `O(Δ_left)` measured rounds.
    BipartiteProposal,
    /// Panconesi–Rizzi forest-decomposition matcher, deterministic
    /// `O(Δ + log* n)` rounds.
    PanconesiRizzi,
    /// Truncated Israeli–Itai with the given `MatchingRound` budget.
    IsraeliItai {
        /// Maximum number of `MatchingRound` iterations per invocation.
        max_iterations: u64,
    },
}

impl MatcherBackend {
    /// Runs the backend on the subgraph `edges`.
    ///
    /// * `n_global` — total network size (used by the charged HKP bound).
    /// * `rng`, `tag_base` — randomness root and a caller-unique tag for
    ///   this invocation (only Israeli–Itai draws from it).
    pub fn run(
        &self,
        n_global: usize,
        edges: &[(NodeId, NodeId)],
        rng: &SplitRng,
        tag_base: u64,
    ) -> MatchingOutcome {
        match *self {
            MatcherBackend::HkpOracle => hkp_oracle(n_global, edges),
            MatcherBackend::DetGreedy => det_greedy(edges),
            MatcherBackend::BipartiteProposal => {
                let left: std::collections::HashSet<_> = edges.iter().map(|&(l, _)| l).collect();
                bipartite_proposal(edges, |v| left.contains(&v))
            }
            MatcherBackend::PanconesiRizzi => panconesi_rizzi(edges),
            MatcherBackend::IsraeliItai { max_iterations } => {
                israeli_itai(edges, max_iterations, rng, tag_base).outcome
            }
        }
    }

    /// As [`MatcherBackend::run`], but also exposing the per-round
    /// survivor series where the backend has one (see [`BackendRun`]).
    ///
    /// Guaranteed to produce the same [`MatchingOutcome`] as `run` for
    /// the same arguments.
    pub fn run_traced(
        &self,
        n_global: usize,
        edges: &[(NodeId, NodeId)],
        rng: &SplitRng,
        tag_base: u64,
    ) -> BackendRun {
        match *self {
            MatcherBackend::DetGreedy => {
                let r = det_greedy_run(edges);
                BackendRun {
                    outcome: r.outcome,
                    survivors: r.survivors,
                }
            }
            MatcherBackend::IsraeliItai { max_iterations } => {
                let r = israeli_itai(edges, max_iterations, rng, tag_base);
                BackendRun {
                    outcome: r.outcome,
                    survivors: r.survivors,
                }
            }
            other => BackendRun {
                outcome: other.run(n_global, edges, rng, tag_base),
                survivors: Vec::new(),
            },
        }
    }

    /// Whether the backend guarantees maximality (vs. with high
    /// probability only).
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, MatcherBackend::IsraeliItai { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_maximal_in;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn all_backends_produce_valid_matchings() {
        let edges = vec![e(0, 4), e(4, 1), e(1, 5), e(5, 2), e(2, 6)];
        let rng = SplitRng::new(1);
        for backend in [
            MatcherBackend::HkpOracle,
            MatcherBackend::DetGreedy,
            MatcherBackend::PanconesiRizzi,
            MatcherBackend::IsraeliItai {
                max_iterations: 100,
            },
        ] {
            let out = backend.run(16, &edges, &rng, 0);
            assert!(out.maximal, "{backend:?}");
            assert!(is_maximal_in(&edges, &out.pairs), "{backend:?}");
        }
    }

    #[test]
    fn bipartite_proposal_backend_on_oriented_edges() {
        // The BipartiteProposal backend takes the *first* endpoint of
        // each edge as the proposing side (how ASM emits G0: (man, woman)).
        let edges = vec![e(0, 10), e(1, 10), e(1, 11), e(2, 12)];
        let out = MatcherBackend::BipartiteProposal.run(16, &edges, &SplitRng::new(0), 0);
        assert!(out.maximal);
        assert!(is_maximal_in(&edges, &out.pairs));
    }

    #[test]
    fn truncated_ii_flags_incompleteness() {
        // A graph big enough that 0 iterations leave residual edges.
        let edges: Vec<_> = (0..10).map(|i| e(i, i + 10)).collect();
        let out =
            MatcherBackend::IsraeliItai { max_iterations: 0 }.run(32, &edges, &SplitRng::new(1), 0);
        assert!(!out.maximal);
        assert!(out.pairs.is_empty());
    }

    #[test]
    fn determinism_flags() {
        assert!(MatcherBackend::HkpOracle.is_deterministic());
        assert!(MatcherBackend::DetGreedy.is_deterministic());
        assert!(MatcherBackend::BipartiteProposal.is_deterministic());
        assert!(MatcherBackend::PanconesiRizzi.is_deterministic());
        assert!(!MatcherBackend::IsraeliItai { max_iterations: 1 }.is_deterministic());
    }

    #[test]
    fn hkp_rounds_depend_on_global_n_only() {
        let edges = vec![e(0, 1)];
        let small = MatcherBackend::HkpOracle.run(4, &edges, &SplitRng::new(0), 0);
        let large = MatcherBackend::HkpOracle.run(1024, &edges, &SplitRng::new(0), 0);
        assert!(large.rounds > small.rounds);
        assert_eq!(small.pairs, large.pairs);
    }
}
