//! Almost-maximal matchings: `AMM(η, δ)` (Definition 4, Corollary 2).
//!
//! `AlmostRegularASM` (Theorem 6) does not need true maximality — it
//! tolerates an η-fraction of vertices violating maximality, provided the
//! violators *remove themselves from play*. Corollary 2 obtains this by
//! truncating Israeli–Itai after `O(log(η⁻¹δ⁻¹))` rounds: by Lemma 8 and
//! Markov's inequality, `Pr(|V_s| ≥ η·n) ≤ cˢ/η`.

use crate::israeli_itai::{israeli_itai, IiRun};
use asm_congest::{NodeId, SplitRng};

/// Number of `MatchingRound` iterations for `AMM(η, δ)` (Corollary 2):
/// smallest `s` with `cˢ/η ≤ δ`, i.e. `s = ⌈log(η⁻¹δ⁻¹)/log(c⁻¹)⌉`.
///
/// `c` is the Lemma 8 decay constant (see
/// [`crate::iterations_for_maximal`] for discussion).
///
/// # Panics
///
/// Panics unless `0 < c < 1` and `η, δ ∈ (0, 1]`.
pub fn iterations_for_amm(eta: f64, delta: f64, c: f64) -> u64 {
    assert!(0.0 < c && c < 1.0, "decay constant must be in (0, 1)");
    assert!(0.0 < eta && eta <= 1.0, "eta must be in (0, 1]");
    assert!(0.0 < delta && delta <= 1.0, "delta must be in (0, 1]");
    let needed = (1.0 / (eta * delta)).ln() / (1.0 / c).ln();
    needed.ceil().max(1.0) as u64
}

/// Runs `AMM(η, δ)`: a truncated Israeli–Itai that finds a
/// `(1 − η)`-maximal matching with probability at least `1 − δ`
/// (Corollary 2), in `O(log(η⁻¹δ⁻¹))` rounds **independent of the graph
/// size**.
///
/// The returned [`IiRun::survivors`] series ends with the number of
/// vertices still violating maximality; experiment F2 checks it against
/// `η·|V₀|`.
///
/// # Examples
///
/// ```
/// use asm_congest::{NodeId, SplitRng};
/// use asm_maximal::amm;
///
/// let e = |a, b| (NodeId::new(a), NodeId::new(b));
/// let edges: Vec<_> = (0u32..50).map(|i| e(i, 50 + i % 25)).collect();
/// let run = amm(&edges, 0.05, 0.05, 0.6, &SplitRng::new(3), 0);
/// // Round cost depends only on eta, delta, c — not on |V|.
/// assert!(run.outcome.rounds <= 4 * 12);
/// ```
pub fn amm(
    edges: &[(NodeId, NodeId)],
    eta: f64,
    delta: f64,
    c: f64,
    rng: &SplitRng,
    tag_base: u64,
) -> IiRun {
    let s = iterations_for_amm(eta, delta, c);
    israeli_itai(edges, s, rng, tag_base)
}

/// Convenience: the vertices of `edges` left violating maximality by
/// `pairs` (unmatched with an unmatched neighbor), as a fraction of the
/// vertex count of the subgraph.
pub fn violator_fraction(edges: &[(NodeId, NodeId)], pairs: &[(NodeId, NodeId)]) -> f64 {
    use std::collections::HashSet;
    let vertices: HashSet<NodeId> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    if vertices.is_empty() {
        return 0.0;
    }
    crate::maximality_violators(edges, pairs).len() as f64 / vertices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    fn random_bipartite(n: u32, d: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut rng = SplitRng::new(seed);
        (0..n)
            .flat_map(|u| {
                let mut out = Vec::new();
                for _ in 0..d {
                    out.push((u, n + rng.next_range(n as usize) as u32));
                }
                out
            })
            .map(|(u, v)| e(u, v))
            .collect()
    }

    #[test]
    fn iteration_count_independent_of_n() {
        let s = iterations_for_amm(0.01, 0.01, 0.5);
        assert_eq!(s, 14); // ceil(ln(10^4)/ln 2)
                           // Same budget regardless of how large the graph is.
        let small = amm(
            &random_bipartite(20, 3, 1),
            0.01,
            0.01,
            0.5,
            &SplitRng::new(1),
            0,
        );
        let large = amm(
            &random_bipartite(500, 3, 1),
            0.01,
            0.01,
            0.5,
            &SplitRng::new(1),
            0,
        );
        assert!(small.outcome.iterations <= s);
        assert!(large.outcome.iterations <= s);
    }

    #[test]
    fn violators_shrink_below_eta_usually() {
        // With eta = 0.1, delta = 0.2 and a measured-realistic c = 0.6, the
        // violator fraction should be below eta for most seeds.
        let mut successes = 0;
        let trials = 20;
        for seed in 0..trials {
            let edges = random_bipartite(100, 4, seed);
            let run = amm(&edges, 0.1, 0.2, 0.6, &SplitRng::new(seed + 100), 0);
            if violator_fraction(&edges, &run.outcome.pairs) <= 0.1 {
                successes += 1;
            }
        }
        assert!(
            successes >= trials * 4 / 5,
            "only {successes}/{trials} runs met the eta budget"
        );
    }

    #[test]
    fn violator_fraction_bounds() {
        let edges = vec![e(0, 1), e(2, 3)];
        assert_eq!(violator_fraction(&edges, &[]), 1.0);
        assert_eq!(violator_fraction(&edges, &[e(0, 1), e(2, 3)]), 0.0);
        assert_eq!(violator_fraction(&edges, &[e(0, 1)]), 0.5);
        assert_eq!(violator_fraction(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "eta must be in")]
    fn zero_eta_panics() {
        iterations_for_amm(0.0, 0.1, 0.5);
    }
}
