//! Israeli & Itai's randomized distributed matching (Appendix A,
//! Algorithm 4), graph-level simulation.
//!
//! One `MatchingRound` costs [`ROUNDS_PER_MATCHING_ROUND`] CONGEST rounds:
//! PICK (step 1), CHOSEN (step 2), SELECT (step 3) and MATCHED/removal
//! (step 4). Iterating until the graph is empty yields a maximal matching;
//! Lemma 8 shows the expected number of surviving vertices decays
//! geometrically, so `O(log(n/η))` iterations suffice with probability
//! `1 − η` (Corollary 1).
//!
//! All random choices are drawn from per-node [`SplitRng`] streams keyed by
//! `(node id, iteration tag)` in a fixed order (pick → choose → select), so
//! this simulation is *replayable*: the message-passing implementation in
//! [`crate::protocols`] makes identical choices and produces an identical
//! matching — a property the test suite checks.

use crate::{MatchingOutcome, SubGraph};
use asm_congest::{NodeId, SplitRng};
use std::collections::HashMap;

/// CONGEST rounds per `MatchingRound` (PICK, CHOSEN, SELECT, MATCHED).
pub const ROUNDS_PER_MATCHING_ROUND: u64 = 4;

/// Result of an Israeli–Itai run, including the per-iteration survivor
/// series used by experiment F1 to estimate the decay constant of Lemma 8.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IiRun {
    /// Matching found, rounds consumed, maximality flag.
    pub outcome: MatchingOutcome,
    /// `survivors[i]` = number of vertices remaining *before* iteration
    /// `i`; `survivors[0] = |V₀|`, and a final entry records the count
    /// after the last executed iteration.
    pub survivors: Vec<usize>,
}

/// Executes one `MatchingRound` on `g` (mutating it per step 4) and returns
/// the pairs matched this round.
///
/// `tag` must be globally unique per invocation (e.g. a running iteration
/// counter); node `v`'s randomness for this round is
/// `rng.split(v.raw(), tag)`.
pub fn matching_round(g: &mut SubGraph, rng: &SplitRng, tag: u64) -> Vec<(NodeId, NodeId)> {
    let vertices = g.vertices_sorted();
    let mut node_rng: HashMap<NodeId, SplitRng> = vertices
        .iter()
        .map(|&v| (v, rng.split(v.raw() as u64, tag)))
        .collect();

    // Step 1: every vertex picks a uniformly random neighbor.
    let mut picks: HashMap<NodeId, NodeId> = HashMap::new();
    for &v in &vertices {
        let nbrs = g.neighbors(v);
        debug_assert!(!nbrs.is_empty(), "SubGraph drops isolated vertices");
        let r = node_rng.get_mut(&v).expect("rng created above");
        picks.insert(v, nbrs[r.next_range(nbrs.len())]);
    }

    // Step 2: every vertex with incoming picks keeps one uniformly at
    // random. Incoming pickers are enumerated in ascending id order — the
    // order a CONGEST inbox presents them.
    let mut incoming: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &v in &vertices {
        incoming.entry(picks[&v]).or_default().push(v);
    }
    let mut gprime: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &v in &vertices {
        if let Some(pickers) = incoming.get(&v) {
            let r = node_rng.get_mut(&v).expect("rng created above");
            let chosen = pickers[r.next_range(pickers.len())];
            gprime.entry(v).or_default().push(chosen);
            gprime.entry(chosen).or_default().push(v);
        }
    }
    for nbrs in gprime.values_mut() {
        nbrs.sort_unstable();
        nbrs.dedup();
    }

    // Step 3: every vertex incident to G' selects one incident edge.
    let mut selects: HashMap<NodeId, NodeId> = HashMap::new();
    for &v in &vertices {
        if let Some(nbrs) = gprime.get(&v) {
            let r = node_rng.get_mut(&v).expect("rng created above");
            selects.insert(v, nbrs[r.next_range(nbrs.len())]);
        }
    }

    // Step 4: mutually selected edges are matched; matched and newly
    // isolated vertices leave the graph.
    let mut matched: Vec<(NodeId, NodeId)> = Vec::new();
    for (&v, &u) in &selects {
        if v < u && selects.get(&u) == Some(&v) {
            matched.push((v, u));
        }
    }
    matched.sort_unstable();
    let removed: Vec<NodeId> = matched.iter().flat_map(|&(a, b)| [a, b]).collect();
    g.remove_vertices(&removed);
    matched
}

/// Runs Israeli–Itai for at most `max_iterations` `MatchingRound`s,
/// starting the per-iteration tags at `tag_base`.
///
/// Stops early once the graph is empty (the matching is then maximal);
/// [`MatchingOutcome::rounds`] reports 4 rounds per *executed* iteration —
/// in a deployment, nodes detect local isolation and go silent, so the
/// remaining schedule carries no traffic.
///
/// # Examples
///
/// ```
/// use asm_congest::{NodeId, SplitRng};
/// use asm_maximal::{israeli_itai, is_maximal_in};
///
/// let e = |a, b| (NodeId::new(a), NodeId::new(b));
/// let edges: Vec<_> = (0..20).map(|i| e(i, (i + 1) % 21)).collect();
/// let run = israeli_itai(&edges, 100, &SplitRng::new(5), 0);
/// assert!(run.outcome.maximal);
/// assert!(is_maximal_in(&edges, &run.outcome.pairs));
/// ```
pub fn israeli_itai(
    edges: &[(NodeId, NodeId)],
    max_iterations: u64,
    rng: &SplitRng,
    tag_base: u64,
) -> IiRun {
    let mut g = SubGraph::from_edges(edges);
    let mut pairs = Vec::new();
    let mut survivors = vec![g.num_vertices()];
    let mut iterations = 0;
    while !g.is_empty() && iterations < max_iterations {
        let matched = matching_round(&mut g, rng, tag_base + iterations);
        pairs.extend(matched);
        iterations += 1;
        survivors.push(g.num_vertices());
    }
    pairs.sort_unstable();
    IiRun {
        outcome: MatchingOutcome {
            pairs,
            rounds: iterations * ROUNDS_PER_MATCHING_ROUND,
            iterations,
            maximal: g.is_empty(),
        },
        survivors,
    }
}

/// Number of `MatchingRound` iterations sufficient for maximality with
/// probability `1 − η` (Corollary 1): `log(n/η) / log(1/c)`, where `c` is
/// the per-iteration survivor decay constant of Lemma 8.
///
/// The paper leaves `c` abstract; experiment F1 measures `c ≈ 0.45–0.6` on
/// our workloads. Callers pass their own (conservative) estimate.
///
/// # Panics
///
/// Panics unless `0 < c < 1`, `eta > 0` and `n > 0`.
pub fn iterations_for_maximal(n: usize, eta: f64, c: f64) -> u64 {
    assert!(n > 0, "n must be positive");
    assert!(eta > 0.0, "eta must be positive");
    assert!(0.0 < c && c < 1.0, "decay constant must be in (0, 1)");
    let needed = (n as f64 / eta).ln() / (1.0 / c).ln();
    needed.ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_maximal_in;

    fn e(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId::new(a), NodeId::new(b))
    }

    fn random_graph(n: u32, p: f64, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut rng = SplitRng::new(seed);
        (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .filter(|_| rng.next_bool(p))
            .map(|(u, v)| (e(u, v).0, e(u, v).1))
            .collect()
    }

    #[test]
    fn produces_maximal_matching_on_random_graphs() {
        for seed in 0..10 {
            let edges = random_graph(40, 0.1, seed);
            let run = israeli_itai(&edges, 1000, &SplitRng::new(seed), 0);
            assert!(run.outcome.maximal);
            assert!(is_maximal_in(&edges, &run.outcome.pairs), "seed {seed}");
        }
    }

    #[test]
    fn single_edge_matches_in_one_iteration() {
        let edges = vec![e(0, 1)];
        let run = israeli_itai(&edges, 10, &SplitRng::new(1), 0);
        // Both endpoints must pick, choose, and select each other.
        assert_eq!(run.outcome.pairs, vec![e(0, 1)]);
        assert_eq!(run.outcome.iterations, 1);
        assert_eq!(run.outcome.rounds, ROUNDS_PER_MATCHING_ROUND);
    }

    #[test]
    fn empty_graph_is_trivially_maximal() {
        let run = israeli_itai(&[], 10, &SplitRng::new(1), 0);
        assert!(run.outcome.maximal);
        assert!(run.outcome.is_empty());
        assert_eq!(run.outcome.iterations, 0);
    }

    #[test]
    fn truncation_reports_non_maximal() {
        // A big dense graph cannot be finished in 1 iteration.
        let edges = random_graph(60, 0.5, 3);
        let run = israeli_itai(&edges, 1, &SplitRng::new(3), 0);
        assert_eq!(run.outcome.iterations, 1);
        assert!(!run.outcome.maximal);
        assert!(!is_maximal_in(&edges, &run.outcome.pairs));
    }

    #[test]
    fn survivors_strictly_decrease_until_empty() {
        let edges = random_graph(50, 0.2, 9);
        let run = israeli_itai(&edges, 1000, &SplitRng::new(9), 0);
        let s = &run.survivors;
        assert_eq!(*s.last().unwrap(), 0);
        for w in s.windows(2) {
            assert!(w[1] <= w[0], "survivor counts must be non-increasing");
        }
    }

    #[test]
    fn deterministic_given_seed_and_tag() {
        let edges = random_graph(30, 0.3, 4);
        let a = israeli_itai(&edges, 100, &SplitRng::new(11), 7);
        let b = israeli_itai(&edges, 100, &SplitRng::new(11), 7);
        assert_eq!(a, b);
        let c = israeli_itai(&edges, 100, &SplitRng::new(11), 8);
        // Different tag gives (almost surely) a different trajectory.
        assert!(a.outcome.pairs != c.outcome.pairs || a.survivors != c.survivors);
    }

    #[test]
    fn decay_is_geometric_on_average() {
        // Lemma 8: E|V_{i+1}| <= c |V_i| for an absolute c < 1. Measure the
        // mean per-iteration ratio over a few dense graphs.
        let mut ratios = Vec::new();
        for seed in 0..5 {
            let edges = random_graph(100, 0.2, seed);
            let run = israeli_itai(&edges, 1000, &SplitRng::new(seed), 0);
            for w in run.survivors.windows(2) {
                if w[0] >= 20 {
                    ratios.push(w[1] as f64 / w[0] as f64);
                }
            }
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 0.9, "mean decay ratio {mean} should be well below 1");
    }

    #[test]
    fn iterations_for_maximal_formula() {
        assert_eq!(iterations_for_maximal(1, 1.0, 0.5), 1);
        // log2(1024/0.5) = 11 with c = 0.5.
        assert_eq!(iterations_for_maximal(1024, 0.5, 0.5), 11);
        assert!(iterations_for_maximal(1024, 0.5, 0.9) > 11);
    }

    #[test]
    #[should_panic(expected = "decay constant")]
    fn bad_decay_constant_panics() {
        iterations_for_maximal(10, 0.1, 1.0);
    }
}
