//! # asm-maximal: distributed maximal and almost-maximal matchings
//!
//! The maximal-matching subroutines that `ProposalRound` (Algorithm 1 of
//! Ostrovsky & Rosenbaum, PODC 2015) invokes in step 3, in two synchronized
//! forms each:
//!
//! * **graph-level simulations** — [`israeli_itai`], [`det_greedy`],
//!   [`hkp_oracle`], [`amm`] — fast, used by the vector engine of
//!   `asm-core` and by the benchmark harness;
//! * **message-passing state machines** — [`protocols::IiNode`],
//!   [`protocols::GreedyNode`] — embeddable in CONGEST processes, making
//!   *identical* choices to the simulations given the same seed.
//!
//! Backends (see [`MatcherBackend`]):
//!
//! | paper | here |
//! |---|---|
//! | Hańćkowiak–Karoński–Panconesi `O(log⁴ n)` deterministic \[6\] | [`hkp_oracle`] (charged oracle) and [`det_greedy`] (real protocol) — see DESIGN.md §4 |
//! | Israeli–Itai `MatchingRound` \[8\], Appendix A | [`israeli_itai`] |
//! | `AMM(η, δ)` (Corollary 2) | [`amm`] |
//!
//! # Examples
//!
//! ```
//! use asm_congest::{NodeId, SplitRng};
//! use asm_maximal::{israeli_itai, iterations_for_maximal, is_maximal_in};
//!
//! let e = |a, b| (NodeId::new(a), NodeId::new(b));
//! let edges: Vec<_> = (0u32..16).map(|i| e(i, 16 + (i * 7) % 16)).collect();
//! let budget = iterations_for_maximal(32, 0.01, 0.6);
//! let run = israeli_itai(&edges, budget, &SplitRng::new(1), 0);
//! assert!(is_maximal_in(&edges, &run.outcome.pairs));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amm;
mod backend;
mod bipartite;
mod det_greedy;
mod hkp_oracle;
mod israeli_itai;
mod outcome;
mod panconesi_rizzi;
pub mod protocols;
mod sequential;
mod subgraph;

pub use amm::{amm, iterations_for_amm, violator_fraction};
pub use backend::{BackendRun, MatcherBackend};
pub use bipartite::{bipartite_proposal, ROUNDS_PER_PROPOSAL_CYCLE};
pub use det_greedy::{det_greedy, det_greedy_run, GreedyRun, ROUNDS_PER_CYCLE};
pub use hkp_oracle::{hkp_charged_rounds, hkp_oracle};
pub use israeli_itai::{
    israeli_itai, iterations_for_maximal, matching_round, IiRun, ROUNDS_PER_MATCHING_ROUND,
};
pub use outcome::{is_maximal_in, maximality_violators, MatchingOutcome};
pub(crate) use panconesi_rizzi::cv_schedule_len;
pub use panconesi_rizzi::panconesi_rizzi;
pub use sequential::greedy_maximal;
pub use subgraph::SubGraph;
