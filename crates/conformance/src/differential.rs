//! The differential runner: one seeded case, both engines, all oracles.
//!
//! A [`DiffCase`] pins everything that determines a run — the instance
//! recipe ([`GeneratorConfig`]), the algorithm, the matcher backend, the
//! approximation parameters, and the seed. [`run_case`] executes the fast
//! vector engine and (where the backend has a message-passing form) the
//! CONGEST engine on that case, diffs their [`RunSummary`]s field by
//! field, and applies the [`crate::oracle`] checkers to the result.
//!
//! Any disagreement or oracle violation comes back as a
//! [`ConformanceFailure`] — which serializes directly into a
//! [`crate::ReplayCase`] for offline reproduction.

use crate::oracle::{
    check_bad_men_budget, check_blocking_budget, check_matching, check_mm_maximality,
    check_partition, check_payload_budget, Violation,
};
use asm_congest::NetStats;
use asm_core::congest::{
    almost_regular_asm_congest_with, asm_congest_with, rand_asm_congest_with, CongestRunError,
    ExecOptions,
};
use asm_core::{
    almost_regular_asm, asm, rand_asm, AlmostRegularParams, AsmConfig, RandAsmParams, RunSummary,
};
use asm_instance::generators::GeneratorConfig;
use asm_instance::Instance;
use asm_maximal::MatcherBackend;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's algorithms a case runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Deterministic `ASM` (Theorems 3–4); honors [`DiffCase::backend`].
    Asm,
    /// `RandASM` (Theorem 5); the backend is the truncated Israeli–Itai
    /// the theorem prescribes, so [`DiffCase::backend`] is ignored.
    RandAsm,
    /// `AlmostRegularASM` (Theorem 6); backend ignored as for `RandAsm`.
    AlmostRegular,
}

/// A fully pinned differential execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffCase {
    /// Instance recipe (family + parameters + generator seed).
    pub generator: GeneratorConfig,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Matcher backend (`Asm` only; see [`Algorithm`]).
    pub backend: MatcherBackend,
    /// Blocking-pair budget `ε`.
    pub epsilon: f64,
    /// Failure probability `δ` for the randomized variants.
    pub delta: f64,
    /// Algorithm seed (independent of the generator seed).
    pub seed: u64,
}

impl DiffCase {
    /// A deterministic-`ASM` case with the theorem-default `δ`.
    pub fn asm(generator: GeneratorConfig, backend: MatcherBackend, epsilon: f64) -> Self {
        DiffCase {
            generator,
            algorithm: Algorithm::Asm,
            backend,
            epsilon,
            delta: 0.1,
            seed: 0,
        }
    }

    /// Replaces the algorithm seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether every guarantee this case exercises is deterministic, so
    /// the stability oracles may be asserted per-run rather than
    /// aggregated over seeds.
    pub fn is_deterministic(&self) -> bool {
        self.algorithm == Algorithm::Asm && self.backend.is_deterministic()
    }

    /// Builds the instance this case runs on.
    pub fn instance(&self) -> Instance {
        self.generator.build()
    }
}

impl fmt::Display for DiffCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} on {} via {:?}, eps={}, delta={}, seed={}",
            self.algorithm, self.generator, self.backend, self.epsilon, self.delta, self.seed
        )
    }
}

/// Successful differential run: the agreed-on summary plus what only one
/// engine can report.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// The summary both engines agreed on (the fast engine's copy).
    pub summary: RunSummary,
    /// CONGEST network statistics; `None` when the backend has no
    /// message-passing form (`HkpOracle` runs the fast engine only).
    pub congest_stats: Option<NetStats>,
    /// Whether the `ε`/`δ` budgets held — always `true` for cases where
    /// [`DiffCase::is_deterministic`]; informational for randomized
    /// cases, whose guarantees are per-seed-probabilistic.
    pub budgets_met: bool,
}

/// A differential run that failed conformance: engine disagreement,
/// oracle violations, or an engine error.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConformanceFailure {
    /// The case that failed (sufficient to reproduce).
    pub case: DiffCase,
    /// Field-by-field engine disagreements, human-readable.
    pub engine_mismatches: Vec<String>,
    /// Broken paper invariants.
    pub oracle_violations: Vec<Violation>,
}

impl fmt::Display for ConformanceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conformance failure for case: {}", self.case)?;
        for m in &self.engine_mismatches {
            writeln!(f, "  engines disagree: {m}")?;
        }
        for v in &self.oracle_violations {
            writeln!(f, "  oracle violation: {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ConformanceFailure {}

/// Diffs two summaries field by field; returns human-readable mismatches.
pub fn diff_summaries(fast: &RunSummary, congest: &RunSummary) -> Vec<String> {
    let mut out = Vec::new();
    if fast.matching != congest.matching {
        out.push(format!(
            "matching: fast has {} pairs, congest {}; first differing pair {:?}",
            fast.matching.len(),
            congest.matching.len(),
            fast.matching
                .pairs()
                .find(|&(m, w)| congest.matching.partner(m) != Some(w))
                .or_else(|| congest
                    .matching
                    .pairs()
                    .find(|&(m, w)| fast.matching.partner(m) != Some(w))),
        ));
    }
    if fast.scheduled_proposal_rounds != congest.scheduled_proposal_rounds {
        out.push(format!(
            "scheduled_proposal_rounds: fast {} vs congest {}",
            fast.scheduled_proposal_rounds, congest.scheduled_proposal_rounds
        ));
    }
    if fast.executed_proposal_rounds != congest.executed_proposal_rounds {
        out.push(format!(
            "executed_proposal_rounds: fast {} vs congest {}",
            fast.executed_proposal_rounds, congest.executed_proposal_rounds
        ));
    }
    if fast.good_men != congest.good_men {
        out.push(format!(
            "good_men: fast {} vs congest {}",
            fast.good_men, congest.good_men
        ));
    }
    if fast.bad_men != congest.bad_men {
        out.push(format!(
            "bad_men: fast {:?} vs congest {:?}",
            fast.bad_men, congest.bad_men
        ));
    }
    if fast.removed_men != congest.removed_men {
        out.push(format!(
            "removed_men: fast {:?} vs congest {:?}",
            fast.removed_men, congest.removed_men
        ));
    }
    out
}

/// Executes `case` on both engines and applies every applicable oracle.
///
/// # Errors
///
/// Returns a [`ConformanceFailure`] when the engines disagree on any
/// [`RunSummary`] field, when any always-applicable oracle (validity,
/// partition, payload budget, deterministic-backend maximality) finds a
/// violation, or — for deterministic cases only — when the `ε`/`δ`
/// budgets are missed. Engine *errors* (invalid configuration and the
/// like) are reported the same way, as a mismatch entry.
// The Err carries the full reproducing case plus diagnostics by design;
// it is a cold path (a failure ends the test), so its size is irrelevant.
#[allow(clippy::result_large_err)]
pub fn run_case(case: &DiffCase) -> Result<DiffReport, ConformanceFailure> {
    run_case_with_exec(case, ExecOptions::serial())
}

/// [`run_case`] with an explicit CONGEST execution mode — the *backend
/// axis* for the parallel round-stepper: the fast engine is unchanged,
/// while the CONGEST side steps all nodes of a round across
/// `exec.workers` threads. Conformance is defined identically, so any
/// scheduling-dependent behavior in the parallel stepper surfaces as an
/// ordinary engine mismatch or oracle violation.
///
/// # Errors
///
/// As for [`run_case`].
#[allow(clippy::result_large_err)]
pub fn run_case_with_exec(
    case: &DiffCase,
    exec: ExecOptions,
) -> Result<DiffReport, ConformanceFailure> {
    let inst = case.instance();
    let mut mismatches: Vec<String> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();

    let fail = |mismatches, violations| ConformanceFailure {
        case: case.clone(),
        engine_mismatches: mismatches,
        oracle_violations: violations,
    };

    // Fast engine.
    let (fast_summary, fast_report) = match case.algorithm {
        Algorithm::Asm => {
            let config = AsmConfig::new(case.epsilon)
                .with_seed(case.seed)
                .with_backend(case.backend);
            match asm(&inst, &config) {
                Ok(r) => (RunSummary::from(&r), Some(r)),
                Err(e) => return Err(fail(vec![format!("fast engine error: {e}")], violations)),
            }
        }
        Algorithm::RandAsm => {
            let params = RandAsmParams::new(case.epsilon, case.delta).with_seed(case.seed);
            match rand_asm(&inst, &params) {
                Ok(r) => (RunSummary::from(&r), Some(r)),
                Err(e) => return Err(fail(vec![format!("fast engine error: {e}")], violations)),
            }
        }
        Algorithm::AlmostRegular => {
            let params = AlmostRegularParams::new(case.epsilon, case.delta).with_seed(case.seed);
            match almost_regular_asm(&inst, &params) {
                Ok(r) => (RunSummary::from(&r), Some(r)),
                Err(e) => return Err(fail(vec![format!("fast engine error: {e}")], violations)),
            }
        }
    };

    // CONGEST engine; `HkpOracle` must be *rejected* there — silently
    // accepting it would itself be a conformance bug.
    let congest_result = match case.algorithm {
        Algorithm::Asm => {
            let config = AsmConfig::new(case.epsilon)
                .with_seed(case.seed)
                .with_backend(case.backend);
            Some(asm_congest_with(&inst, &config, exec))
        }
        Algorithm::RandAsm => {
            let params = RandAsmParams::new(case.epsilon, case.delta).with_seed(case.seed);
            Some(rand_asm_congest_with(&inst, &params, exec))
        }
        Algorithm::AlmostRegular => {
            let params = AlmostRegularParams::new(case.epsilon, case.delta).with_seed(case.seed);
            Some(almost_regular_asm_congest_with(&inst, &params, exec))
        }
    };

    let fast_only = case.algorithm == Algorithm::Asm && case.backend == MatcherBackend::HkpOracle;
    let congest_stats = match congest_result {
        Some(Ok(report)) if fast_only => {
            mismatches.push(format!(
                "CONGEST engine accepted the sequential {:?} backend",
                case.backend
            ));
            Some(report.stats)
        }
        Some(Ok(report)) => {
            mismatches.extend(diff_summaries(&fast_summary, &RunSummary::from(&report)));
            violations.extend(check_payload_budget(
                inst.ids().num_players(),
                &report.stats,
            ));
            Some(report.stats)
        }
        Some(Err(CongestRunError::UnsupportedBackend(_))) if fast_only => None,
        Some(Err(e)) => {
            mismatches.push(format!("CONGEST engine error: {e}"));
            None
        }
        None => None,
    };

    // Oracles on the agreed summary.
    let invalid = check_matching(&inst, &fast_summary);
    let is_valid = invalid.is_none();
    violations.extend(invalid);
    violations.extend(check_partition(&inst, &fast_summary));
    if let Some(report) = &fast_report {
        violations.extend(check_mm_maximality(report, case.backend));
    }
    // Stability analysis requires a valid matching (it walks preference
    // ranks); an invalid one already failed above.
    let budgets_met = is_valid
        && check_blocking_budget(&inst, &fast_summary, case.epsilon).is_none()
        && check_bad_men_budget(&inst, &fast_summary, effective_delta(case)).is_none();
    if case.is_deterministic() && !budgets_met {
        violations.extend(check_blocking_budget(&inst, &fast_summary, case.epsilon));
        violations.extend(check_bad_men_budget(
            &inst,
            &fast_summary,
            effective_delta(case),
        ));
    }

    if mismatches.is_empty() && violations.is_empty() {
        Ok(DiffReport {
            summary: fast_summary,
            congest_stats,
            budgets_met,
        })
    } else {
        Err(fail(mismatches, violations))
    }
}

/// The bad-men budget a case's run actually promises: `ASM` derives `δ`
/// from `ε` (DESIGN.md §3); the randomized variants take it verbatim.
fn effective_delta(case: &DiffCase) -> f64 {
    match case.algorithm {
        Algorithm::Asm => AsmConfig::new(case.epsilon).delta(),
        Algorithm::RandAsm | Algorithm::AlmostRegular => case.delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_greedy_case_conforms_end_to_end() {
        let case = DiffCase::asm(
            GeneratorConfig::Complete { n: 10, seed: 3 },
            MatcherBackend::DetGreedy,
            1.0,
        );
        let report = run_case(&case).unwrap();
        assert!(report.budgets_met);
        assert!(report.congest_stats.is_some());
    }

    #[test]
    fn hkp_case_is_fast_only() {
        let case = DiffCase::asm(
            GeneratorConfig::Regular {
                n: 10,
                d: 3,
                seed: 1,
            },
            MatcherBackend::HkpOracle,
            1.0,
        );
        let report = run_case(&case).unwrap();
        assert!(report.congest_stats.is_none());
    }

    #[test]
    fn rand_asm_case_agrees_across_engines() {
        let case = DiffCase {
            generator: GeneratorConfig::Complete { n: 10, seed: 4 },
            algorithm: Algorithm::RandAsm,
            backend: MatcherBackend::DetGreedy, // ignored
            epsilon: 1.0,
            delta: 0.1,
            seed: 7,
        };
        run_case(&case).unwrap();
    }

    #[test]
    fn diff_summaries_pinpoints_fields() {
        let case = DiffCase::asm(
            GeneratorConfig::Complete { n: 6, seed: 1 },
            MatcherBackend::DetGreedy,
            1.0,
        );
        let report = run_case(&case).unwrap();
        let mut other = report.summary.clone();
        other.good_men += 1;
        other.executed_proposal_rounds += 5;
        let diffs = diff_summaries(&report.summary, &other);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs.iter().any(|d| d.contains("good_men")));
    }

    #[test]
    fn failure_display_names_the_case() {
        let case = DiffCase::asm(
            GeneratorConfig::Chain { n: 4 },
            MatcherBackend::DetGreedy,
            0.5,
        );
        let failure = ConformanceFailure {
            case,
            engine_mismatches: vec!["matching: differs".into()],
            oracle_violations: vec![],
        };
        let text = failure.to_string();
        assert!(text.contains("chain(n=4)"), "{text}");
        assert!(text.contains("engines disagree"), "{text}");
    }
}
