//! A deliberately broken engine, for proving the oracles have teeth.
//!
//! Each [`Mutation`] simulates a distinct *class* of engine bug by
//! corrupting a correct [`RunSummary`] the way that bug would: dropping a
//! pair an engine forgot to commit, crossing two women's partners,
//! miscounting the good men, and so on. The mutation smoke test asserts
//! that for every mutation, at least one oracle fires — if a checker ever
//! regresses into vacuity, the corruption it was responsible for slips
//! through and the smoke test fails.

use asm_core::RunSummary;
use asm_instance::Instance;
use std::fmt;

/// One class of simulated engine bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Silently drop a matched pair (engine lost an ACCEPT): creates
    /// blocking pairs and a good-man accounting hole.
    DropPair,
    /// Swap the partners of two matched men (engine crossed its wires):
    /// on incomplete instances the crossed pairs are usually non-edges.
    SwapPartners,
    /// Report one more good man than exist (off-by-one in termination
    /// accounting).
    InflateGoodMen,
    /// Report a matched man as bad (good/bad classification bug).
    MarkMatchedManBad,
    /// Drop the bad-men list without reclassifying them (engine "forgot"
    /// its failures).
    ClearBadMen,
}

impl Mutation {
    /// Every mutation, for exhaustive smoke testing.
    pub fn all() -> [Mutation; 5] {
        [
            Mutation::DropPair,
            Mutation::SwapPartners,
            Mutation::InflateGoodMen,
            Mutation::MarkMatchedManBad,
            Mutation::ClearBadMen,
        ]
    }

    /// Applies the corruption to a copy of `summary`.
    ///
    /// Returns `None` when the summary has no material to corrupt (e.g.
    /// `DropPair` on an empty matching, `ClearBadMen` with no bad men) —
    /// the smoke test picks instances where every mutation applies.
    pub fn apply(&self, inst: &Instance, summary: &RunSummary) -> Option<RunSummary> {
        let ids = inst.ids();
        let mut out = summary.clone();
        match self {
            Mutation::DropPair => {
                let (u, _) = out.matching.pairs().next()?;
                out.matching.remove(u);
            }
            Mutation::SwapPartners => {
                let men: Vec<_> = out
                    .matching
                    .pairs()
                    .map(|(u, v)| if ids.is_man(u) { u } else { v })
                    .take(2)
                    .collect();
                let [a, b] = men[..] else { return None };
                let wa = out.matching.remove(a)?;
                let wb = out.matching.remove(b)?;
                out.matching.add_pair(a, wb).ok()?;
                out.matching.add_pair(b, wa).ok()?;
            }
            Mutation::InflateGoodMen => out.good_men += 1,
            Mutation::MarkMatchedManBad => {
                let m = out
                    .matching
                    .pairs()
                    .map(|(u, v)| if ids.is_man(u) { u } else { v })
                    .next()?;
                out.bad_men.push(m);
            }
            Mutation::ClearBadMen => {
                if out.bad_men.is_empty() {
                    return None;
                }
                out.bad_men.clear();
            }
        }
        Some(out)
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_core::{asm, AsmConfig};
    use asm_instance::generators;
    use asm_maximal::MatcherBackend;

    #[test]
    fn mutations_change_the_summary() {
        let inst = generators::complete(10, 3);
        let config = AsmConfig::new(0.5).with_backend(MatcherBackend::DetGreedy);
        let summary = RunSummary::from(&asm(&inst, &config).unwrap());
        for mutation in [
            Mutation::DropPair,
            Mutation::SwapPartners,
            Mutation::InflateGoodMen,
            Mutation::MarkMatchedManBad,
        ] {
            let corrupted = mutation.apply(&inst, &summary).expect("applies here");
            assert_ne!(corrupted, summary, "{mutation} must corrupt something");
        }
    }

    #[test]
    fn inapplicable_mutations_return_none() {
        let inst = generators::erdos_renyi(3, 3, 0.0, 1); // no edges
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let summary = RunSummary::from(&asm(&inst, &config).unwrap());
        assert_eq!(Mutation::DropPair.apply(&inst, &summary), None);
        assert_eq!(Mutation::ClearBadMen.apply(&inst, &summary), None);
    }
}
