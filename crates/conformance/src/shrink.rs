//! Domain-aware shrinking of failing differential cases.
//!
//! The vendored proptest stand-in does not shrink (see `vendor/README.md`),
//! so minimization lives here, where it can exploit what it knows about
//! the instance-generator parameter space: a divergence on
//! `erdos_renyi(40×40, p=0.5)` usually survives halving `n` — and a
//! 6-player reproduction is worth far more than a 40-player one.
//!
//! [`shrink_case`] is greedy: it repeatedly proposes simpler variants of
//! the case (smaller `n`, smaller degree, zero seed, …), keeps the first
//! variant that still fails, and stops at a fixpoint. Every accepted step
//! strictly reduces a size measure, so termination is guaranteed.

use crate::differential::DiffCase;
use asm_instance::generators::GeneratorConfig;

/// Strictly simpler variants of `g`, most aggressive first.
fn generator_candidates(g: &GeneratorConfig) -> Vec<GeneratorConfig> {
    use GeneratorConfig as G;
    let mut out = Vec::new();
    let mut shrink_n = |rebuild: &dyn Fn(usize) -> G, n: usize| {
        for smaller in [n / 2, n.saturating_sub(1)] {
            if smaller >= 1 && smaller < n {
                out.push(rebuild(smaller));
            }
        }
    };
    match *g {
        G::Complete { n, seed } => shrink_n(&|n| G::Complete { n, seed }, n),
        G::ErdosRenyi {
            num_women,
            num_men,
            p,
            seed,
        } => {
            // Shrink each side independently so asymmetric instances
            // stay asymmetric (and the total strictly decreases).
            for w in [num_women / 2, num_women.saturating_sub(1)] {
                if w >= 1 && w < num_women {
                    out.push(G::ErdosRenyi {
                        num_women: w,
                        num_men,
                        p,
                        seed,
                    });
                }
            }
            for m in [num_men / 2, num_men.saturating_sub(1)] {
                if m >= 1 && m < num_men {
                    out.push(G::ErdosRenyi {
                        num_women,
                        num_men: m,
                        p,
                        seed,
                    });
                }
            }
            if p > 0.1 {
                out.push(G::ErdosRenyi {
                    num_women,
                    num_men,
                    p: p / 2.0,
                    seed,
                });
            }
        }
        G::Regular { n, d, seed } => {
            shrink_n(
                &|n| G::Regular {
                    n,
                    d: d.min(n),
                    seed,
                },
                n,
            );
            if d > 1 {
                out.push(G::Regular { n, d: d - 1, seed });
            }
        }
        G::AlmostRegular {
            n,
            d_min,
            alpha,
            seed,
        } => {
            shrink_n(
                &|n| G::AlmostRegular {
                    n,
                    d_min: d_min.min(n.max(1)),
                    alpha,
                    seed,
                },
                n,
            );
            if d_min > 1 {
                out.push(G::AlmostRegular {
                    n,
                    d_min: d_min - 1,
                    alpha,
                    seed,
                });
            }
        }
        G::Zipf { n, d, s, seed } => {
            shrink_n(
                &|n| G::Zipf {
                    n,
                    d: d.min(n),
                    s,
                    seed,
                },
                n,
            );
            if d > 1 {
                out.push(G::Zipf {
                    n,
                    d: d - 1,
                    s,
                    seed,
                });
            }
        }
        G::Chain { n } => shrink_n(&|n| G::Chain { n }, n),
        G::MasterList { n, seed } => shrink_n(&|n| G::MasterList { n, seed }, n),
        G::NoisyMaster { n, noise, seed } => {
            shrink_n(&|n| G::NoisyMaster { n, noise, seed }, n);
            if noise > 0.0 {
                out.push(G::NoisyMaster {
                    n,
                    noise: 0.0,
                    seed,
                });
            }
        }
        G::Geometric { n, d, seed } => {
            shrink_n(
                &|n| G::Geometric {
                    n,
                    d: d.min(n),
                    seed,
                },
                n,
            );
            if d > 1 {
                out.push(G::Geometric { n, d: d - 1, seed });
            }
        }
    }
    out
}

/// A size measure that every accepted shrink strictly decreases.
fn size(case: &DiffCase) -> u64 {
    use GeneratorConfig as G;
    let (n, aux) = match case.generator {
        G::Complete { n, .. } | G::Chain { n } | G::MasterList { n, .. } => (n, 0),
        G::ErdosRenyi {
            num_women,
            num_men,
            p,
            ..
        } => (num_women + num_men, (p * 1000.0) as usize),
        G::Regular { n, d, .. } | G::Zipf { n, d, .. } | G::Geometric { n, d, .. } => (n, d),
        G::AlmostRegular { n, d_min, .. } => (n, d_min),
        G::NoisyMaster { n, noise, .. } => (n, (noise * 1000.0) as usize),
    };
    (n as u64) * 1_000_000 + aux as u64 + if case.seed == 0 { 0 } else { 1 }
}

/// Candidate simplifications of a whole case: simpler generator, or the
/// canonical seed.
fn candidates(case: &DiffCase) -> Vec<DiffCase> {
    let mut out: Vec<DiffCase> = generator_candidates(&case.generator)
        .into_iter()
        .map(|generator| DiffCase {
            generator,
            ..case.clone()
        })
        .collect();
    if case.seed != 0 {
        out.push(DiffCase {
            seed: 0,
            ..case.clone()
        });
    }
    out
}

/// Greedily shrinks `case` to a minimal variant for which `fails` still
/// returns `true`. `fails(&case)` must hold on entry (otherwise `case`
/// is returned unchanged). At most `max_steps` failing re-executions are
/// spent; pass `usize::MAX` for unbounded.
pub fn shrink_case<F>(case: &DiffCase, fails: F, max_steps: usize) -> DiffCase
where
    F: Fn(&DiffCase) -> bool,
{
    let mut current = case.clone();
    let mut budget = max_steps;
    'outer: loop {
        for candidate in candidates(&current) {
            debug_assert!(size(&candidate) < size(&current), "shrinks must shrink");
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break; // fixpoint: no simpler variant still fails
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::Algorithm;
    use asm_maximal::MatcherBackend;

    fn case_with(generator: GeneratorConfig, seed: u64) -> DiffCase {
        DiffCase {
            generator,
            algorithm: Algorithm::Asm,
            backend: MatcherBackend::DetGreedy,
            epsilon: 1.0,
            delta: 0.1,
            seed,
        }
    }

    #[test]
    fn shrinks_n_to_the_failure_threshold() {
        // Synthetic predicate: "fails" whenever the instance has >= 6
        // players per side. The shrinker should land exactly on 6.
        let start = case_with(GeneratorConfig::Complete { n: 48, seed: 9 }, 3);
        let min = shrink_case(
            &start,
            |c| matches!(c.generator, GeneratorConfig::Complete { n, .. } if n >= 6),
            10_000,
        );
        assert_eq!(
            min.generator,
            GeneratorConfig::Complete { n: 6, seed: 9 },
            "greedy shrink finds the boundary"
        );
        assert_eq!(min.seed, 0, "seed canonicalizes when irrelevant");
    }

    #[test]
    fn returns_input_when_nothing_simpler_fails() {
        let start = case_with(GeneratorConfig::Chain { n: 2 }, 0);
        let min = shrink_case(&start, |c| c == &start, 100);
        assert_eq!(min, start);
    }

    #[test]
    fn respects_the_step_budget() {
        let start = case_with(GeneratorConfig::Complete { n: 1024, seed: 0 }, 0);
        let min = shrink_case(&start, |_| true, 1);
        // One accepted step: n halves once and the loop stops.
        assert_eq!(min.generator, GeneratorConfig::Complete { n: 512, seed: 0 });
    }

    #[test]
    fn every_candidate_strictly_shrinks() {
        for config in GeneratorConfig::all_families(16, 5) {
            let case = case_with(config, 5);
            for cand in candidates(&case) {
                assert!(
                    size(&cand) < size(&case),
                    "{} -> {} does not shrink",
                    case.generator,
                    cand.generator
                );
            }
        }
    }

    #[test]
    fn real_divergence_predicate_composes() {
        // Shrinking with the real runner as the predicate: a case that
        // *passes* shrinks to itself (the predicate never fires).
        let start = case_with(GeneratorConfig::Complete { n: 8, seed: 2 }, 1);
        let min = shrink_case(&start, |c| crate::run_case(c).is_err(), 50);
        assert_eq!(min, start);
    }
}
