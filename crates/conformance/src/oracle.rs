//! Oracle checkers for the paper's run invariants.
//!
//! Each checker takes the instance plus what an engine reported and
//! returns `None` (invariant holds) or a [`Violation`] naming the broken
//! guarantee with the numbers that break it. The checkers are pure —
//! they never re-run an engine — so they apply equally to the fast
//! engine's [`AsmReport`], the CONGEST engine's
//! [`asm_core::congest::CongestReport`], or a deliberately corrupted
//! [`RunSummary`] (the mutation smoke tests in [`crate::mutate`]).
//!
//! | Checker | Paper guarantee |
//! |---|---|
//! | [`check_matching`] | the output is a matching along instance edges |
//! | [`check_blocking_budget`] | ≤ `ε·\|E\|` blocking pairs (Theorem 3) |
//! | [`check_bad_men_budget`] | ≤ `δ`-fraction bad men (Lemma 6) |
//! | [`check_partition`] | good/bad/removed partitions the men |
//! | [`check_payload_budget`] | every message fits `O(log n)` bits |
//! | [`check_mm_maximality`] | deterministic matchers never truncate |

use asm_congest::NetStats;
use asm_core::congest::{payload_bit_budget, CongestReport};
use asm_core::{AsmReport, RunSummary};
use asm_instance::Instance;
use asm_matching::{verify_matching, StabilityReport};
use asm_maximal::MatcherBackend;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One broken run invariant, with the numbers that broke it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The reported pairs are not a matching along instance edges.
    InvalidMatching {
        /// The verifier's diagnosis.
        detail: String,
    },
    /// More than `ε·|E|` blocking pairs (Theorem 3 / 5 / 6 budget).
    BlockingBudgetExceeded {
        /// Blocking pairs counted.
        blocking_pairs: usize,
        /// Edges in the instance.
        num_edges: usize,
        /// The `ε` the run was configured with.
        epsilon: f64,
    },
    /// More than a `δ` fraction of men ended bad (Lemma 6).
    BadMenBudgetExceeded {
        /// Bad men reported.
        bad_men: usize,
        /// Men in the instance.
        num_men: usize,
        /// The `δ` the run was configured with.
        delta: f64,
    },
    /// The reported good/bad/removed sets do not partition the men.
    PartitionMismatch {
        /// What is inconsistent.
        detail: String,
    },
    /// A message exceeded the CONGEST `O(log n)` payload allowance.
    PayloadBudgetExceeded {
        /// Largest payload observed, in bits.
        max_message_bits: usize,
        /// The allowance for this network size.
        budget: usize,
    },
    /// A deterministic matcher backend reported truncated (non-maximal)
    /// invocations.
    NonmaximalMm {
        /// Number of truncated invocations.
        count: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::InvalidMatching { detail } => write!(f, "invalid matching: {detail}"),
            Violation::BlockingBudgetExceeded {
                blocking_pairs,
                num_edges,
                epsilon,
            } => write!(
                f,
                "{blocking_pairs} blocking pairs exceed eps*|E| = {epsilon}*{num_edges}"
            ),
            Violation::BadMenBudgetExceeded {
                bad_men,
                num_men,
                delta,
            } => write!(
                f,
                "{bad_men} bad men of {num_men} exceed the delta = {delta} fraction"
            ),
            Violation::PartitionMismatch { detail } => {
                write!(f, "good/bad/removed partition broken: {detail}")
            }
            Violation::PayloadBudgetExceeded {
                max_message_bits,
                budget,
            } => write!(
                f,
                "a {max_message_bits}-bit payload exceeds the {budget}-bit O(log n) allowance"
            ),
            Violation::NonmaximalMm { count } => write!(
                f,
                "{count} maximal-matching invocations returned non-maximal results \
                 under a deterministic backend"
            ),
        }
    }
}

/// Checks that `summary.matching` is a matching along edges of `inst`
/// (each player at most once, every pair an acceptable edge, men matched
/// to women).
pub fn check_matching(inst: &Instance, summary: &RunSummary) -> Option<Violation> {
    verify_matching(inst, &summary.matching)
        .err()
        .map(|e| Violation::InvalidMatching {
            detail: e.to_string(),
        })
}

/// Checks Theorem 3's budget: at most `ε·|E|` blocking pairs.
///
/// Only a *guarantee* for deterministic runs (`ASM` with a deterministic
/// backend); randomized variants meet it with probability `1 − δ`, so
/// callers must aggregate over seeds instead of asserting per-seed.
pub fn check_blocking_budget(
    inst: &Instance,
    summary: &RunSummary,
    epsilon: f64,
) -> Option<Violation> {
    let st = StabilityReport::analyze(inst, &summary.matching);
    if st.is_one_minus_eps_stable(epsilon) {
        None
    } else {
        Some(Violation::BlockingBudgetExceeded {
            blocking_pairs: st.blocking_pairs,
            num_edges: st.num_edges,
            epsilon,
        })
    }
}

/// Checks Lemma 6's budget: at most a `δ` fraction of men end bad.
pub fn check_bad_men_budget(
    inst: &Instance,
    summary: &RunSummary,
    delta: f64,
) -> Option<Violation> {
    let num_men = inst.ids().num_men();
    let bad = summary.bad_men.len();
    if num_men == 0 || bad as f64 <= delta * num_men as f64 {
        None
    } else {
        Some(Violation::BadMenBudgetExceeded {
            bad_men: bad,
            num_men,
            delta,
        })
    }
}

/// Checks that the report's accounting is internally consistent: bad and
/// removed entries are men, bad men are unmatched and not removed, and
/// `good + bad + (removed ∧ unmatched)` covers every man exactly once.
pub fn check_partition(inst: &Instance, summary: &RunSummary) -> Option<Violation> {
    let ids = inst.ids();
    let mismatch = |detail: String| Some(Violation::PartitionMismatch { detail });

    for &m in summary.bad_men.iter().chain(summary.removed_men.iter()) {
        if !ids.is_man(m) {
            return mismatch(format!("{m} is reported bad/removed but is not a man"));
        }
    }
    for &m in &summary.bad_men {
        if summary.matching.is_matched(m) {
            return mismatch(format!("bad man {m} is matched"));
        }
        if summary.removed_men.contains(&m) {
            return mismatch(format!("man {m} is both bad and removed"));
        }
    }
    for (u, v) in summary.matching.pairs() {
        if ids.gender(u) == ids.gender(v) {
            return mismatch(format!("pair ({u}, {v}) matches two same-side players"));
        }
    }
    let removed_unmatched = summary
        .removed_men
        .iter()
        .filter(|&&m| !summary.matching.is_matched(m))
        .count();
    let accounted = summary.good_men + summary.bad_men.len() + removed_unmatched;
    if accounted != ids.num_men() {
        return mismatch(format!(
            "{} good + {} bad + {} removed-unmatched = {} men accounted, instance has {}",
            summary.good_men,
            summary.bad_men.len(),
            removed_unmatched,
            accounted,
            ids.num_men()
        ));
    }
    None
}

/// Checks the CONGEST model's payload allowance: every measured message
/// fit in [`payload_bit_budget`]`(num_players)` bits.
pub fn check_payload_budget(num_players: usize, stats: &NetStats) -> Option<Violation> {
    let budget = payload_bit_budget(num_players);
    if stats.max_message_bits <= budget {
        None
    } else {
        Some(Violation::PayloadBudgetExceeded {
            max_message_bits: stats.max_message_bits,
            budget,
        })
    }
}

/// Checks that a deterministic matcher backend never reported a truncated
/// (non-maximal) invocation. Vacuous for randomized backends.
pub fn check_mm_maximality(report: &AsmReport, backend: MatcherBackend) -> Option<Violation> {
    if backend.is_deterministic() && report.mm_nonmaximal > 0 {
        Some(Violation::NonmaximalMm {
            count: report.mm_nonmaximal,
        })
    } else {
        None
    }
}

/// Runs every summary-level oracle. `epsilon`/`delta` bound the
/// stability and bad-men budgets; pass `None` to skip those two (the
/// right call for randomized variants judged per-seed — see
/// [`check_blocking_budget`]).
pub fn check_summary(
    inst: &Instance,
    summary: &RunSummary,
    epsilon: Option<f64>,
    delta: Option<f64>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let invalid = check_matching(inst, summary);
    let is_valid = invalid.is_none();
    violations.extend(invalid);
    violations.extend(check_partition(inst, summary));
    // Stability analysis is only defined over valid matchings (it walks
    // preference ranks), so the budget is skipped when validity already
    // failed — the InvalidMatching violation subsumes it.
    if let (Some(eps), true) = (epsilon, is_valid) {
        violations.extend(check_blocking_budget(inst, summary, eps));
    }
    if let Some(d) = delta {
        violations.extend(check_bad_men_budget(inst, summary, d));
    }
    violations
}

/// Runs every oracle applicable to a CONGEST-engine transcript — the
/// entry point for runs executed *outside* this process (the distributed
/// orchestrator assembles a [`CongestReport`] from node replies and
/// feeds it here).
///
/// Covers the summary-level oracles of [`check_summary`] (validity,
/// ε·|E| blocking budget, player partition, optional δ bad-men budget)
/// plus the CONGEST payload budget over the measured message sizes.
pub fn check_congest_run(
    inst: &Instance,
    report: &CongestReport,
    epsilon: Option<f64>,
    delta: Option<f64>,
) -> Vec<Violation> {
    let summary = RunSummary::from(report);
    let mut violations = check_summary(inst, &summary, epsilon, delta);
    violations.extend(check_payload_budget(
        inst.ids().num_players(),
        &report.stats,
    ));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_core::{asm, AsmConfig};
    use asm_instance::generators;

    fn clean_run(n: usize, seed: u64) -> (Instance, RunSummary, AsmReport) {
        let inst = generators::complete(n, seed);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm(&inst, &config).unwrap();
        let summary = RunSummary::from(&report);
        (inst, summary, report)
    }

    #[test]
    fn clean_run_passes_every_oracle() {
        let (inst, summary, report) = clean_run(12, 4);
        assert_eq!(check_summary(&inst, &summary, Some(1.0), Some(0.125)), []);
        assert_eq!(
            check_mm_maximality(&report, MatcherBackend::DetGreedy),
            None
        );
    }

    #[test]
    fn matched_bad_man_is_a_partition_violation() {
        let (inst, mut summary, _) = clean_run(8, 1);
        let m = summary
            .matching
            .pairs()
            .map(|(u, v)| if inst.ids().is_man(u) { u } else { v })
            .next()
            .unwrap();
        summary.bad_men.push(m);
        let v = check_partition(&inst, &summary).unwrap();
        assert!(matches!(v, Violation::PartitionMismatch { .. }), "{v}");
    }

    #[test]
    fn miscounted_good_men_is_a_partition_violation() {
        let (inst, mut summary, _) = clean_run(8, 2);
        summary.good_men += 1;
        assert!(check_partition(&inst, &summary).is_some());
    }

    #[test]
    fn woman_in_bad_set_is_a_partition_violation() {
        let (inst, mut summary, _) = clean_run(8, 3);
        summary.bad_men.push(inst.ids().woman(0));
        assert!(check_partition(&inst, &summary).is_some());
    }

    #[test]
    fn blocking_budget_flags_an_emptied_matching() {
        let (inst, mut summary, _) = clean_run(12, 5);
        // A complete instance with an empty matching: every edge blocks.
        summary.matching = asm_matching::Matching::new(inst.ids().num_players());
        let v = check_blocking_budget(&inst, &summary, 0.5).unwrap();
        assert!(matches!(v, Violation::BlockingBudgetExceeded { .. }), "{v}");
    }

    #[test]
    fn bad_men_budget_uses_the_fraction() {
        let (inst, mut summary, _) = clean_run(8, 6);
        summary.matching = asm_matching::Matching::new(inst.ids().num_players());
        summary.bad_men = inst.ids().men().collect();
        summary.good_men = 0;
        assert!(check_bad_men_budget(&inst, &summary, 0.5).is_some());
        assert!(check_bad_men_budget(&inst, &summary, 1.0).is_none());
    }

    #[test]
    fn payload_budget_accepts_engine_traffic_and_rejects_fat_messages() {
        let inst = generators::complete(10, 7);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm_core::congest::asm_congest(&inst, &config).unwrap();
        let n = inst.ids().num_players();
        assert_eq!(check_payload_budget(n, &report.stats), None);

        let mut fat = report.stats.clone();
        fat.max_message_bits = 10_000;
        assert!(check_payload_budget(n, &fat).is_some());
    }

    #[test]
    fn congest_run_oracle_passes_clean_transcripts_and_flags_corrupt_ones() {
        let inst = generators::complete(10, 8);
        let config = AsmConfig::new(1.0).with_backend(MatcherBackend::DetGreedy);
        let report = asm_core::congest::asm_congest(&inst, &config).unwrap();
        assert_eq!(check_congest_run(&inst, &report, Some(1.0), Some(0.2)), []);

        let mut fat = report.clone();
        fat.stats.max_message_bits = 10_000;
        let violations = check_congest_run(&inst, &fat, Some(1.0), None);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::PayloadBudgetExceeded { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn violations_render_their_numbers() {
        let v = Violation::BlockingBudgetExceeded {
            blocking_pairs: 9,
            num_edges: 10,
            epsilon: 0.5,
        };
        let s = v.to_string();
        assert!(s.contains('9') && s.contains("0.5"), "{s}");
    }
}
