//! # asm-conformance: cross-engine conformance harness
//!
//! The repository implements every algorithm of Ostrovsky & Rosenbaum
//! (PODC 2015) twice — once on the fast vector engine, once as real
//! message-passing CONGEST processes — with a standing promise that the
//! two agree seed-for-seed (DESIGN.md §3). This crate is the harness
//! that *enforces* the promise, plus the paper's guarantees, as
//! executable checks:
//!
//! * **[`oracle`]** — pure checkers over `(Instance, RunSummary)`
//!   asserting the paper's invariants: the output is a valid matching,
//!   blocking pairs fit the `ε·|E|` budget (Theorem 3), bad men fit the
//!   `δ` fraction (Lemma 6), good/bad/removed accounting partitions the
//!   men, and CONGEST payloads fit the `O(log n)` allowance.
//! * **[`differential`]** — [`run_case`] executes one pinned
//!   [`DiffCase`] (generator config + algorithm + backend + seed) on
//!   both engines, diffs the [`asm_core::RunSummary`]s field by field,
//!   and applies the oracles; any disagreement is a
//!   [`ConformanceFailure`].
//! * **[`replay`]** — failures serialize to JSON [`ReplayCase`]s;
//!   `ASM_REPLAY=<path> cargo test -p asm-conformance -- --ignored replay`
//!   reproduces one deterministically, and the golden corpus in
//!   `cases/` is replayed by the regular suite.
//! * **[`shrink`]** — greedy, generator-aware minimization of failing
//!   cases (the vendored proptest stand-in does not shrink).
//! * **[`mutate`]** — a deliberately broken engine whose corruptions
//!   must each be caught by at least one oracle.
//!
//! # Examples
//!
//! ```
//! use asm_conformance::{assert_conforms, DiffCase};
//! use asm_instance::generators::GeneratorConfig;
//! use asm_maximal::MatcherBackend;
//!
//! let case = DiffCase::asm(
//!     GeneratorConfig::Regular { n: 12, d: 4, seed: 7 },
//!     MatcherBackend::DetGreedy,
//!     1.0,
//! );
//! let report = assert_conforms(case); // panics (with a replay file) on divergence
//! assert!(report.budgets_met);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod mutate;
pub mod oracle;
pub mod replay;
pub mod shrink;

pub use differential::{
    diff_summaries, run_case, run_case_with_exec, Algorithm, ConformanceFailure, DiffCase,
    DiffReport,
};
pub use mutate::Mutation;
pub use oracle::{check_congest_run, check_summary, Violation};
pub use replay::{
    assert_conforms, assert_conforms_with_exec, emit_failure, load_cases, replay_out_dir,
    ReplayCase,
};
pub use shrink::shrink_case;

use std::path::PathBuf;

/// The committed golden corpus directory (`crates/conformance/cases/`).
pub fn golden_corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cases")
}
