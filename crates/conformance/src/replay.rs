//! Deterministic replay of conformance failures.
//!
//! Every [`ConformanceFailure`] pins the full recipe of its run — the
//! generator config, algorithm, backend, parameters, and seed — so a
//! failure observed anywhere (CI fuzzing, a laptop, a future session)
//! reproduces bit-for-bit from a small JSON file. The flow:
//!
//! 1. a differential or fuzz test hits a failure and calls
//!    [`emit_failure`], which writes `replay-<slug>.json` under
//!    [`replay_out_dir`] and panics with the path;
//! 2. `ASM_REPLAY=<path> cargo test -p asm-conformance -- --ignored replay`
//!    re-runs exactly that case;
//! 3. once fixed, the case can be promoted into the golden corpus
//!    (`crates/conformance/cases/`), which the regular test suite replays
//!    forever after.

use crate::differential::{run_case, ConformanceFailure, DiffCase, DiffReport};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A serialized conformance case: everything needed to reproduce one
/// differential run, plus a human note on why it is interesting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayCase {
    /// Why this case exists (what it once broke, or what it pins).
    pub description: String,
    /// The pinned differential run.
    pub case: DiffCase,
}

impl ReplayCase {
    /// Wraps a case with a description.
    pub fn new(description: impl Into<String>, case: DiffCase) -> Self {
        ReplayCase {
            description: description.into(),
            case,
        }
    }

    /// Serializes to pretty JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("replay cases always serialize")
    }

    /// Parses the on-disk format.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed JSON or a JSON
    /// shape that is not a `ReplayCase`.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Re-executes the pinned case through the differential runner.
    ///
    /// # Errors
    ///
    /// Propagates the [`ConformanceFailure`] when the case still fails.
    #[allow(clippy::result_large_err)]
    pub fn run(&self) -> Result<DiffReport, ConformanceFailure> {
        run_case(&self.case)
    }
}

/// Where emitted replay files go: `$ASM_CONFORMANCE_REPLAY_DIR`, or
/// `target/conformance-replays` relative to the current directory.
pub fn replay_out_dir() -> PathBuf {
    match std::env::var_os("ASM_CONFORMANCE_REPLAY_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target").join("conformance-replays"),
    }
}

/// Serializes a failure to a JSON replay file under [`replay_out_dir`].
///
/// Returns the path written. The file name encodes the generator family
/// and seed so repeated runs of the same failing case overwrite rather
/// than accumulate.
///
/// # Errors
///
/// Returns the I/O error if the directory or file cannot be written.
pub fn emit_failure(failure: &ConformanceFailure) -> io::Result<PathBuf> {
    let dir = replay_out_dir();
    fs::create_dir_all(&dir)?;
    let case = ReplayCase::new(failure.to_string(), failure.case.clone());
    let name = format!(
        "replay-{}-{:?}-{}-s{}.json",
        failure.case.generator.family(),
        failure.case.algorithm,
        backend_slug(&failure.case),
        failure.case.seed
    )
    .to_lowercase();
    let path = dir.join(name);
    fs::write(&path, case.to_json())?;
    Ok(path)
}

fn backend_slug(case: &DiffCase) -> String {
    format!("{:?}", case.backend)
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect()
}

/// Loads every `*.json` replay case in `dir`, sorted by file name.
///
/// # Errors
///
/// Returns an I/O error for an unreadable directory or file, or an
/// `InvalidData` error naming the file that failed to parse.
pub fn load_cases(dir: &Path) -> io::Result<Vec<(PathBuf, ReplayCase)>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let case = ReplayCase::from_json(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        out.push((path, case));
    }
    Ok(out)
}

/// Runs `case` and, on failure, writes a replay file and panics with the
/// failure details plus the replay path — the assertion the conformance
/// tests are built on.
///
/// # Panics
///
/// Panics with the serialized failure when the case does not conform.
pub fn assert_conforms(case: DiffCase) -> DiffReport {
    assert_conforms_with_exec(case, asm_core::congest::ExecOptions::serial())
}

/// [`assert_conforms`] against the parallel CONGEST round-stepper: the
/// same oracle stack, with the engine stepping each round's nodes across
/// `exec.workers` threads.
///
/// # Panics
///
/// As for [`assert_conforms`].
pub fn assert_conforms_with_exec(
    case: DiffCase,
    exec: asm_core::congest::ExecOptions,
) -> DiffReport {
    match crate::differential::run_case_with_exec(&case, exec) {
        Ok(report) => report,
        Err(failure) => {
            let where_written = match emit_failure(&failure) {
                Ok(path) => format!("replay case written to {}", path.display()),
                Err(e) => format!("(could not write replay case: {e})"),
            };
            panic!("{failure}{where_written}\nreproduce with: ASM_REPLAY=<path> cargo test -p asm-conformance -- --ignored replay");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::Algorithm;
    use asm_instance::generators::GeneratorConfig;
    use asm_maximal::MatcherBackend;

    fn sample() -> ReplayCase {
        ReplayCase::new(
            "exercises the zipf family",
            DiffCase {
                generator: GeneratorConfig::Zipf {
                    n: 10,
                    d: 3,
                    s: 1.2,
                    seed: 5,
                },
                algorithm: Algorithm::Asm,
                backend: MatcherBackend::IsraeliItai { max_iterations: 48 },
                epsilon: 1.0,
                delta: 0.1,
                seed: 2,
            },
        )
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let case = sample();
        let back = ReplayCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        assert!(ReplayCase::from_json("{\"description\": 3}").is_err());
        assert!(ReplayCase::from_json("not json").is_err());
    }

    #[test]
    fn replayed_case_builds_the_same_instance() {
        let case = sample();
        let back = ReplayCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back.case.instance(), case.case.instance());
    }

    #[test]
    fn emit_failure_writes_a_loadable_file() {
        let dir = std::env::temp_dir().join(format!("asm-replay-test-{}", std::process::id()));
        std::env::set_var("ASM_CONFORMANCE_REPLAY_DIR", &dir);
        let failure = ConformanceFailure {
            case: sample().case,
            engine_mismatches: vec!["synthetic".into()],
            oracle_violations: vec![],
        };
        let path = emit_failure(&failure).unwrap();
        std::env::remove_var("ASM_CONFORMANCE_REPLAY_DIR");

        let loaded = load_cases(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, path);
        assert_eq!(loaded[0].1.case, failure.case);
        fs::remove_dir_all(&dir).ok();
    }
}
