//! The standing differential sweep: every generator family, both
//! engines, every protocol backend — run through [`assert_conforms`],
//! which applies the full oracle stack and writes a replay file on any
//! divergence.

use asm_conformance::differential::Algorithm;
use asm_conformance::{assert_conforms, run_case, DiffCase};
use asm_instance::generators::GeneratorConfig;
use asm_maximal::MatcherBackend;

/// Backends with a message-passing form, i.e. runnable on both engines.
fn protocol_backends() -> [MatcherBackend; 4] {
    [
        MatcherBackend::DetGreedy,
        MatcherBackend::BipartiteProposal,
        MatcherBackend::PanconesiRizzi,
        MatcherBackend::IsraeliItai { max_iterations: 48 },
    ]
}

#[test]
fn every_family_conforms_under_every_protocol_backend() {
    let families = GeneratorConfig::all_families(14, 11);
    assert!(families.len() >= 5, "sweep must span >= 5 families");
    for generator in families {
        for backend in protocol_backends() {
            let case = DiffCase::asm(generator.clone(), backend, 1.0).with_seed(3);
            let report = assert_conforms(case);
            assert!(
                report.congest_stats.is_some(),
                "{generator} via {backend:?} must run on the CONGEST engine"
            );
        }
    }
}

#[test]
fn hkp_oracle_runs_fast_engine_only_across_families() {
    for generator in GeneratorConfig::all_families(12, 7) {
        let case = DiffCase::asm(generator.clone(), MatcherBackend::HkpOracle, 1.0);
        let report = assert_conforms(case);
        assert!(
            report.congest_stats.is_none(),
            "{generator}: the sequential HKP oracle must be rejected by CONGEST"
        );
    }
}

#[test]
fn rand_asm_is_seed_deterministic_across_engines() {
    let generators = [
        GeneratorConfig::Complete { n: 10, seed: 4 },
        GeneratorConfig::ErdosRenyi {
            num_women: 12,
            num_men: 12,
            p: 0.5,
            seed: 9,
        },
        GeneratorConfig::Regular {
            n: 12,
            d: 4,
            seed: 2,
        },
    ];
    for generator in generators {
        for seed in [0, 1, 7, 19, 101] {
            let case = DiffCase {
                generator: generator.clone(),
                algorithm: Algorithm::RandAsm,
                backend: MatcherBackend::DetGreedy, // ignored by RandASM
                epsilon: 1.0,
                delta: 0.1,
                seed,
            };
            assert_conforms(case);
        }
    }
}

#[test]
fn almost_regular_asm_engines_agree() {
    let generators = [
        GeneratorConfig::AlmostRegular {
            n: 14,
            d_min: 3,
            alpha: 2.0,
            seed: 6,
        },
        GeneratorConfig::Regular {
            n: 12,
            d: 4,
            seed: 8,
        },
        GeneratorConfig::Complete { n: 10, seed: 1 },
    ];
    for generator in generators {
        for seed in 0..3 {
            let case = DiffCase {
                generator: generator.clone(),
                algorithm: Algorithm::AlmostRegular,
                backend: MatcherBackend::DetGreedy, // ignored
                epsilon: 1.0,
                delta: 0.1,
                seed,
            };
            assert_conforms(case);
        }
    }
}

#[test]
fn deterministic_budgets_hold_across_epsilon() {
    // Theorem 3's eps*|E| budget and the derived delta bad-men budget are
    // hard guarantees for deterministic ASM; assert them at several
    // approximation levels over the whole family sweep.
    for epsilon in [2.0, 1.0, 0.5] {
        for generator in GeneratorConfig::all_families(12, 5) {
            let case = DiffCase::asm(generator.clone(), MatcherBackend::DetGreedy, epsilon);
            let report = assert_conforms(case);
            assert!(
                report.budgets_met,
                "{generator} at eps={epsilon} missed a deterministic budget"
            );
        }
    }
}

#[test]
fn randomized_runs_report_budget_status_without_asserting_it() {
    // Randomized variants promise the budgets only with probability
    // 1 - delta, so run_case records the status instead of failing; over
    // a handful of seeds at generous eps, most runs should meet them.
    let mut met = 0;
    let mut total = 0;
    for seed in 0..8 {
        let case = DiffCase {
            generator: GeneratorConfig::Complete { n: 12, seed: 3 },
            algorithm: Algorithm::RandAsm,
            backend: MatcherBackend::DetGreedy,
            epsilon: 2.0,
            delta: 0.2,
            seed,
        };
        total += 1;
        if run_case(&case)
            .expect("engines must still agree")
            .budgets_met
        {
            met += 1;
        }
    }
    assert!(
        met * 2 > total,
        "only {met}/{total} randomized runs met the budgets at eps=2.0"
    );
}
