//! Differential fuzzing: random `DiffCase`s drawn by proptest, shrunk by
//! the domain-aware [`shrink_case`] when one fails (the vendored proptest
//! stand-in does not shrink), and serialized to a replay file so the
//! failure reproduces offline.
//!
//! The bounded `random_cases_conform` property runs in the regular suite;
//! `nightly_differential_fuzz` is `#[ignore]`d and meant for the
//! scheduled CI job:
//!
//! ```text
//! cargo test -p asm-conformance --test fuzz -- --ignored nightly_differential_fuzz
//! ```

use asm_conformance::differential::Algorithm;
use asm_conformance::{emit_failure, run_case, shrink_case, DiffCase};
use asm_instance::generators::GeneratorConfig;
use asm_maximal::MatcherBackend;
use proptest::prelude::*;

/// Decodes raw fuzz integers into a fully pinned case.
fn build_case(
    family: usize,
    n: usize,
    gseed: u64,
    algorithm: usize,
    backend: usize,
    eps_idx: usize,
    seed: u64,
) -> DiffCase {
    let families = GeneratorConfig::all_families(n, gseed);
    let generator = families[family % families.len()].clone();
    let algorithm = match algorithm % 3 {
        0 => Algorithm::Asm,
        1 => Algorithm::RandAsm,
        _ => Algorithm::AlmostRegular,
    };
    let backend = match backend % 4 {
        0 => MatcherBackend::DetGreedy,
        1 => MatcherBackend::BipartiteProposal,
        2 => MatcherBackend::PanconesiRizzi,
        _ => MatcherBackend::IsraeliItai { max_iterations: 48 },
    };
    DiffCase {
        generator,
        algorithm,
        backend,
        epsilon: [2.0, 1.0, 0.5][eps_idx % 3],
        delta: 0.2,
        seed,
    }
}

/// Runs one fuzz case; on divergence, shrinks it, writes a replay file,
/// and panics with the minimized failure.
fn check(case: DiffCase) {
    if run_case(&case).is_ok() {
        return;
    }
    let minimal = shrink_case(&case, |c| run_case(c).is_err(), 200);
    let failure = run_case(&minimal).expect_err("shrinking preserves failure");
    let written = match emit_failure(&failure) {
        Ok(path) => format!("replay case written to {}", path.display()),
        Err(e) => format!("(could not write replay case: {e})"),
    };
    panic!(
        "fuzz case diverged; minimized from [{case}] to:\n{failure}{written}\n\
         reproduce with: ASM_REPLAY=<path> cargo test -p asm-conformance -- --ignored replay"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_cases_conform(
        family in 0usize..16,
        n in 4usize..16,
        gseed in 0u64..1_000,
        algorithm in 0usize..3,
        backend in 0usize..4,
        eps_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        check(build_case(family, n, gseed, algorithm, backend, eps_idx, seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    #[ignore = "nightly-scale fuzzing; run via --ignored nightly_differential_fuzz"]
    fn nightly_differential_fuzz(
        family in 0usize..16,
        n in 4usize..40,
        gseed in 0u64..100_000,
        algorithm in 0usize..3,
        backend in 0usize..4,
        eps_idx in 0usize..3,
        seed in 0u64..100_000,
    ) {
        check(build_case(family, n, gseed, algorithm, backend, eps_idx, seed));
    }
}
