//! Mutation smoke tests: prove the oracles have teeth.
//!
//! Each [`Mutation`] corrupts a correct run the way a distinct class of
//! engine bug would. For every mutation there is a pinned scenario
//! (instance family + eps chosen so the corruption is observable) on
//! which at least one oracle must fire — if a checker regresses into
//! vacuity, its mutation slips through and this suite fails.

use asm_conformance::{check_summary, Mutation};
use asm_core::{asm, AsmConfig, RunSummary};
use asm_instance::generators::GeneratorConfig;
use asm_instance::Instance;
use asm_maximal::MatcherBackend;

fn clean_run(generator: &GeneratorConfig, epsilon: f64) -> (Instance, RunSummary) {
    let inst = generator.build();
    let config = AsmConfig::new(epsilon).with_backend(MatcherBackend::DetGreedy);
    let summary = RunSummary::from(&asm(&inst, &config).unwrap());
    (inst, summary)
}

/// Asserts the mutation applies on the scenario, the clean run passes,
/// and the corrupted run is caught.
fn assert_caught(mutation: Mutation, generator: GeneratorConfig, epsilon: f64) {
    let (inst, summary) = clean_run(&generator, epsilon);
    let delta = AsmConfig::new(epsilon).delta();
    assert_eq!(
        check_summary(&inst, &summary, Some(epsilon), Some(delta)),
        [],
        "{mutation}: the uncorrupted run must be clean on {generator}"
    );
    let corrupted = mutation
        .apply(&inst, &summary)
        .unwrap_or_else(|| panic!("{mutation} must apply on {generator}"));
    let violations = check_summary(&inst, &corrupted, Some(epsilon), Some(delta));
    assert!(
        !violations.is_empty(),
        "{mutation} on {generator} escaped every oracle"
    );
}

#[test]
fn dropped_pair_is_caught() {
    // eps*|E| < 1 on a complete instance: with k = ceil(8/eps) far above
    // every degree, ASM degenerates to exact Gale-Shapley, so the clean
    // run has zero blocking pairs — and the dropped pair itself blocks.
    assert_caught(
        Mutation::DropPair,
        GeneratorConfig::Complete { n: 12, seed: 3 },
        0.005,
    );
}

#[test]
fn swapped_partners_are_caught() {
    // On the chain instance most cross-pairings are non-edges, so the
    // crossed matching fails validity outright.
    assert_caught(
        Mutation::SwapPartners,
        GeneratorConfig::Chain { n: 12 },
        1.0,
    );
}

#[test]
fn inflated_good_men_are_caught() {
    assert_caught(
        Mutation::InflateGoodMen,
        GeneratorConfig::Regular {
            n: 12,
            d: 4,
            seed: 1,
        },
        1.0,
    );
}

#[test]
fn matched_man_reported_bad_is_caught() {
    assert_caught(
        Mutation::MarkMatchedManBad,
        GeneratorConfig::Complete { n: 10, seed: 5 },
        1.0,
    );
}

#[test]
fn cleared_bad_men_are_caught() {
    // Needs a run that actually produces bad men: the adversarial chain
    // at coarse quantiles (k = 4) strands one man below the final gate.
    let generator = GeneratorConfig::Chain { n: 64 };
    let (inst, summary) = clean_run(&generator, 2.0);
    assert!(
        !summary.bad_men.is_empty(),
        "{generator} at eps=2.0 must produce a bad man for this smoke test"
    );
    let corrupted = Mutation::ClearBadMen.apply(&inst, &summary).unwrap();
    let violations = check_summary(&inst, &corrupted, None, None);
    assert!(
        !violations.is_empty(),
        "ClearBadMen on {generator} escaped every oracle"
    );
}

#[test]
fn every_mutation_has_a_scenario_above() {
    // Completeness guard: if a new Mutation variant is added, this count
    // forces a matching smoke test.
    assert_eq!(Mutation::all().len(), 5);
}
