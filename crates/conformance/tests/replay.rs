//! The golden corpus and the replay entry point.
//!
//! * `golden_corpus_loads_and_conforms` replays every committed case in
//!   `crates/conformance/cases/` on every regular test run.
//! * `replay` (`#[ignore]`d) re-runs one emitted failure file:
//!   `ASM_REPLAY=<path> cargo test -p asm-conformance -- --ignored replay`
//!   (without `ASM_REPLAY` it replays the whole corpus).
//! * `regen_golden_corpus` (`#[ignore]`d, gated on
//!   `ASM_CONFORMANCE_REGEN=1`) rewrites the corpus from the pinned list
//!   below, keeping the on-disk JSON in sync with the serde format.

use asm_conformance::differential::Algorithm;
use asm_conformance::{golden_corpus_dir, load_cases, DiffCase, ReplayCase};
use asm_instance::generators::GeneratorConfig;
use asm_maximal::MatcherBackend;
use std::path::Path;

/// The pinned corpus: one case per generator family plus the randomized
/// algorithms and a tight-epsilon run. Descriptions say what each pins.
fn corpus() -> Vec<ReplayCase> {
    let asm = |desc: &str, generator, backend, epsilon: f64, seed: u64| {
        ReplayCase::new(
            desc,
            DiffCase::asm(generator, backend, epsilon).with_seed(seed),
        )
    };
    vec![
        asm(
            "complete instance, deterministic greedy MM: the baseline cross-engine case",
            GeneratorConfig::Complete { n: 12, seed: 1 },
            MatcherBackend::DetGreedy,
            1.0,
            0,
        ),
        asm(
            "sparse Erdos-Renyi, proposal-based MM: exercises partial lists",
            GeneratorConfig::ErdosRenyi {
                num_women: 14,
                num_men: 14,
                p: 0.4,
                seed: 2,
            },
            MatcherBackend::BipartiteProposal,
            0.5,
            3,
        ),
        asm(
            "regular instance, Panconesi-Rizzi MM: randomized backend seed lockstep",
            GeneratorConfig::Regular {
                n: 12,
                d: 4,
                seed: 3,
            },
            MatcherBackend::PanconesiRizzi,
            1.0,
            7,
        ),
        asm(
            "almost-regular instance, truncated Israeli-Itai MM",
            GeneratorConfig::AlmostRegular {
                n: 14,
                d_min: 3,
                alpha: 2.0,
                seed: 4,
            },
            MatcherBackend::IsraeliItai { max_iterations: 48 },
            1.0,
            5,
        ),
        asm(
            "zipf-skewed degrees: hub women stress quantile gating",
            GeneratorConfig::Zipf {
                n: 14,
                d: 4,
                s: 1.2,
                seed: 5,
            },
            MatcherBackend::DetGreedy,
            0.5,
            1,
        ),
        asm(
            "adversarial chain: worst-case preference structure",
            GeneratorConfig::Chain { n: 12 },
            MatcherBackend::BipartiteProposal,
            2.0,
            0,
        ),
        asm(
            "master-list preferences with a tight epsilon (large k, near-exact GS)",
            GeneratorConfig::MasterList { n: 10, seed: 6 },
            MatcherBackend::DetGreedy,
            0.25,
            0,
        ),
        ReplayCase::new(
            "RandASM on noisy master-list prefs: randomized algorithm seed lockstep",
            DiffCase {
                generator: GeneratorConfig::NoisyMaster {
                    n: 12,
                    noise: 2.0,
                    seed: 7,
                },
                algorithm: Algorithm::RandAsm,
                backend: MatcherBackend::DetGreedy, // ignored by RandASM
                epsilon: 1.0,
                delta: 0.1,
                seed: 5,
            },
        ),
        ReplayCase::new(
            "AlmostRegularASM on geometric instance: Theorem 6 path across engines",
            DiffCase {
                generator: GeneratorConfig::Geometric {
                    n: 14,
                    d: 4,
                    seed: 8,
                },
                algorithm: Algorithm::AlmostRegular,
                backend: MatcherBackend::DetGreedy, // ignored
                epsilon: 1.0,
                delta: 0.1,
                seed: 2,
            },
        ),
        ReplayCase::new(
            "RandASM on a complete instance at generous epsilon",
            DiffCase {
                generator: GeneratorConfig::Complete { n: 10, seed: 9 },
                algorithm: Algorithm::RandAsm,
                backend: MatcherBackend::DetGreedy, // ignored
                epsilon: 2.0,
                delta: 0.2,
                seed: 9,
            },
        ),
    ]
}

fn replay_file(path: &Path) {
    // Test binaries run with cwd = crates/conformance; accept paths
    // relative to the workspace root too, since that is where users
    // invoke cargo from.
    let workspace_relative = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    let path: &Path = if path.exists() || path.is_absolute() {
        path
    } else {
        &workspace_relative
    };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read replay file {}: {e}", path.display()));
    let case = ReplayCase::from_json(&text)
        .unwrap_or_else(|e| panic!("cannot parse replay file {}: {e}", path.display()));
    println!("replaying {}: {}", path.display(), case.description);
    case.run()
        .unwrap_or_else(|failure| panic!("{}: still fails\n{failure}", path.display()));
    println!("  ok - case now conforms");
}

#[test]
fn golden_corpus_loads_and_conforms() {
    let dir = golden_corpus_dir();
    let cases = load_cases(&dir)
        .unwrap_or_else(|e| panic!("golden corpus unreadable at {}: {e}", dir.display()));
    assert!(
        cases.len() >= 10,
        "golden corpus has {} cases, expected >= 10 (regenerate with \
         ASM_CONFORMANCE_REGEN=1 cargo test -p asm-conformance -- --ignored regen)",
        cases.len()
    );
    for (path, case) in cases {
        case.run()
            .unwrap_or_else(|failure| panic!("{}: {failure}", path.display()));
    }
}

#[test]
fn golden_corpus_matches_the_pinned_list() {
    // The committed JSON must stay in sync with `corpus()` — a serde
    // format change or an edited pinned case shows up here.
    let on_disk = load_cases(&golden_corpus_dir()).unwrap();
    let pinned = corpus();
    assert_eq!(on_disk.len(), pinned.len(), "corpus size drifted");
    for ((path, loaded), expected) in on_disk.iter().zip(&pinned) {
        assert_eq!(
            &loaded.case,
            &expected.case,
            "{} drifted from the pinned list",
            path.display()
        );
    }
}

#[test]
#[ignore = "replay one failure: ASM_REPLAY=<path> cargo test -p asm-conformance -- --ignored replay"]
fn replay() {
    match std::env::var_os("ASM_REPLAY") {
        Some(path) => replay_file(Path::new(&path)),
        None => {
            // No file given: replay the whole golden corpus verbosely.
            for (path, _) in load_cases(&golden_corpus_dir()).unwrap() {
                replay_file(&path);
            }
        }
    }
}

#[test]
#[ignore = "rewrites crates/conformance/cases/; run with ASM_CONFORMANCE_REGEN=1"]
fn regen_golden_corpus() {
    if std::env::var_os("ASM_CONFORMANCE_REGEN").is_none() {
        eprintln!("ASM_CONFORMANCE_REGEN not set; refusing to rewrite the corpus");
        return;
    }
    let dir = golden_corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (i, case) in corpus().into_iter().enumerate() {
        case.run()
            .unwrap_or_else(|failure| panic!("pinned case {i} does not conform: {failure}"));
        let name = format!(
            "{:02}-{}-{}.json",
            i,
            case.case.generator.family(),
            format!("{:?}", case.case.algorithm).to_lowercase()
        );
        let path = dir.join(name);
        std::fs::write(&path, case.to_json()).unwrap();
        println!("wrote {}", path.display());
    }
}
