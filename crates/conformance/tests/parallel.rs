//! Conformance of the **parallel CONGEST round-stepper**: the new
//! execution-mode axis of the differential runner.
//!
//! The parallel stepper (`Network::step_par`) computes all nodes of a
//! round concurrently and merges their outgoing messages in node-id
//! order. These tests drive it through the full oracle stack across
//! every generator family, and pin the determinism contract: the
//! resulting `RunSummary` — and the network statistics — are identical
//! for 1, 2, and 8 workers.

use asm_conformance::differential::Algorithm;
use asm_conformance::{assert_conforms_with_exec, run_case_with_exec, DiffCase};
use asm_core::congest::ExecOptions;
use asm_core::RunSummary;
use asm_instance::generators::GeneratorConfig;
use asm_maximal::MatcherBackend;

/// Backends with a message-passing form, i.e. runnable on both engines.
fn protocol_backends() -> [MatcherBackend; 4] {
    [
        MatcherBackend::DetGreedy,
        MatcherBackend::BipartiteProposal,
        MatcherBackend::PanconesiRizzi,
        MatcherBackend::IsraeliItai { max_iterations: 48 },
    ]
}

#[test]
fn every_family_conforms_on_the_parallel_stepper() {
    let exec = ExecOptions::with_workers(4);
    let families = GeneratorConfig::all_families(14, 11);
    assert!(families.len() >= 5, "sweep must span >= 5 families");
    for generator in families {
        for backend in protocol_backends() {
            let case = DiffCase::asm(generator.clone(), backend, 1.0).with_seed(3);
            let report = assert_conforms_with_exec(case, exec);
            assert!(
                report.congest_stats.is_some(),
                "{generator} via {backend:?} must run on the parallel CONGEST stepper"
            );
        }
    }
}

#[test]
fn randomized_algorithms_conform_on_the_parallel_stepper() {
    let exec = ExecOptions::with_workers(4);
    for algorithm in [Algorithm::RandAsm, Algorithm::AlmostRegular] {
        for seed in 0..3 {
            let case = DiffCase {
                generator: GeneratorConfig::Regular {
                    n: 12,
                    d: 4,
                    seed: 8,
                },
                algorithm,
                backend: MatcherBackend::DetGreedy, // ignored
                epsilon: 1.0,
                delta: 0.1,
                seed,
            };
            assert_conforms_with_exec(case, exec);
        }
    }
}

/// The determinism contract: identical `RunSummary` (and identical
/// network statistics) across 1/2/8 worker configurations, per family
/// and per algorithm.
#[test]
fn run_summary_is_identical_across_1_2_8_workers() {
    for generator in GeneratorConfig::all_families(12, 7) {
        for algorithm in [Algorithm::Asm, Algorithm::RandAsm, Algorithm::AlmostRegular] {
            let case = DiffCase {
                generator: generator.clone(),
                algorithm,
                backend: MatcherBackend::DetGreedy,
                epsilon: 1.0,
                delta: 0.1,
                seed: 5,
            };
            let runs: Vec<(RunSummary, _)> = [1usize, 2, 8]
                .iter()
                .map(|&workers| {
                    let report = run_case_with_exec(&case, ExecOptions::with_workers(workers))
                        .unwrap_or_else(|f| panic!("workers={workers}: {f}"));
                    (report.summary, report.congest_stats)
                })
                .collect();
            for (summary, stats) in &runs[1..] {
                assert_eq!(
                    summary, &runs[0].0,
                    "{generator} / {algorithm:?}: RunSummary depends on worker count"
                );
                assert_eq!(
                    stats, &runs[0].1,
                    "{generator} / {algorithm:?}: NetStats depend on worker count"
                );
            }
        }
    }
}
