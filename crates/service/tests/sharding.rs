//! Sharding invariants, property-tested across shard counts:
//!
//! 1. **Routing is content-determined** — identical instances always
//!    land on the same shard, whatever else is in flight, so a repeat
//!    request finds its cache entry at every shard count.
//! 2. **Cache behavior is shard-transparent** — the number of cache
//!    hits for a workload is the same at 1, 2, 4, and 8 shards.
//! 3. **The books balance** — per-shard counters sum exactly to the
//!    aggregate snapshot (with `queue_peak` aggregating by max).

use asm_instance::generators::GeneratorConfig;
use asm_service::{
    instance_hash, InstanceSpec, Op, Reply, Request, Service, ServiceConfig, SolveBody,
};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_spec() -> impl Strategy<Value = InstanceSpec> {
    (2usize..12, 1usize..4, any::<u64>()).prop_map(|(n, d, seed)| {
        InstanceSpec::Generator(GeneratorConfig::Regular {
            n,
            d: d.min(n),
            seed,
        })
    })
}

fn solve_line(id: u64, spec: InstanceSpec) -> String {
    serde_json::to_string(&Request {
        id: Some(id),
        op: Op::Solve(SolveBody {
            instance: spec,
            algorithm: "gs".to_string(),
            eps: 0.5,
            delta: 0.1,
            seed: 1,
            backend: "greedy".to_string(),
            deadline_ms: 0,
            cycles: 0,
        }),
    })
    .unwrap()
}

fn service_with_shards(shards: usize) -> Arc<Service> {
    Service::start(ServiceConfig {
        workers: shards,
        queue_capacity: 16,
        cache_capacity: 32,
        worker_delay_ms: 0,
        shards,
    })
}

/// Runs the workload and returns (cache_hits, solved) from the metrics.
fn run_workload(shards: usize, specs: &[InstanceSpec]) -> (u64, u64) {
    let service = service_with_shards(shards);
    for (i, spec) in specs.iter().enumerate() {
        let out = service.handle_line(&solve_line(i as u64, spec.clone()));
        assert!(out.contains("\"reply\":\"solved\""), "{out}");
    }
    let snap = service.metrics().snapshot(0, 0);
    service.join();
    (snap.cache_hits, snap.solved)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical instances route identically at every shard count, and
    /// the route is a pure function of the content hash.
    #[test]
    fn identical_instances_land_on_the_same_shard(spec in arb_spec()) {
        for shards in [1usize, 2, 4, 8] {
            let service = service_with_shards(shards);
            let first = service.route(&spec);
            prop_assert!(first < shards);
            // A clone (same content) and a rebuilt spec route the same.
            prop_assert_eq!(service.route(&spec.clone()), first);
            prop_assert_eq!(
                (instance_hash(&spec) % shards as u64) as usize,
                first,
                "route must be hash % shards"
            );
            service.join();
        }
    }

    /// A workload with repeats gets the same number of cache hits at
    /// every shard count: routing by content hash keeps every repeat on
    /// the shard that cached it.
    #[test]
    fn cache_hits_are_unaffected_by_shard_count(
        specs in proptest::collection::vec(arb_spec(), 1..8),
        repeats in 1usize..3,
    ) {
        // Workload: each distinct spec `repeats + 1` times, interleaved.
        let mut workload = Vec::new();
        for _ in 0..=repeats {
            workload.extend(specs.iter().cloned());
        }
        let baseline = run_workload(1, &workload);
        prop_assert_eq!(baseline.1, workload.len() as u64);
        for shards in [2usize, 4, 8] {
            let got = run_workload(shards, &workload);
            prop_assert_eq!(got, baseline, "shards={}", shards);
        }
    }

    /// Per-shard books sum exactly to the aggregate snapshot.
    #[test]
    fn shard_counters_sum_to_the_aggregate(
        specs in proptest::collection::vec(arb_spec(), 1..10),
        shard_pick in 0usize..3,
    ) {
        let shards = [2usize, 4, 8][shard_pick];
        let service = service_with_shards(shards);
        // Solve each spec twice so hits and misses both accumulate.
        for (i, spec) in specs.iter().chain(specs.iter()).enumerate() {
            service.handle_line(&solve_line(i as u64, spec.clone()));
        }
        let out = service.handle_line("{\"id\":99,\"op\":\"metrics\"}");
        let resp: asm_service::Response = serde_json::from_str(&out).unwrap();
        let Reply::Metrics(snap) = resp.reply else {
            panic!("expected metrics, got {out}");
        };
        service.join();
        prop_assert_eq!(snap.shards.len(), shards);
        let sum = |f: fn(&asm_service::ShardSnapshot) -> u64| {
            snap.shards.iter().map(f).sum::<u64>()
        };
        prop_assert_eq!(sum(|s| s.solved), snap.solved);
        prop_assert_eq!(sum(|s| s.analyzed), snap.analyzed);
        prop_assert_eq!(sum(|s| s.overloaded), snap.overloaded);
        prop_assert_eq!(sum(|s| s.deadline_exceeded), snap.deadline_exceeded);
        prop_assert_eq!(sum(|s| s.cache_hits), snap.cache_hits);
        prop_assert_eq!(sum(|s| s.cache_misses), snap.cache_misses);
        prop_assert_eq!(sum(|s| s.cache_entries), snap.cache_entries);
        prop_assert_eq!(sum(|s| s.rounds_total), snap.rounds_total);
        prop_assert_eq!(sum(|s| s.messages_total), snap.messages_total);
        prop_assert_eq!(sum(|s| s.blocking_pairs_total), snap.blocking_pairs_total);
        prop_assert_eq!(sum(|s| s.matched_total), snap.matched_total);
        let peak = snap.shards.iter().map(|s| s.queue_peak).max().unwrap_or(0);
        prop_assert_eq!(peak, snap.queue_peak);
    }
}
