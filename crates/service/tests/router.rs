//! Router-tier battery: routing parity with in-process shards, batch
//! merge ordering, at-most-once retry, probe state machine, merged
//! metrics reconciliation, one-backend byte identity, shutdown
//! broadcast, and a failover fault battery (seed-rotated via
//! `ASM_ROUTER_FAULT_ITERS`, which the nightly workflow raises to 10).
//!
//! The file also hosts the router golden corpus
//! (`crates/service/cases_router/`): byte-pinned replay of a routed
//! `solve_batch` and a merged `metrics` against real backends. To
//! regenerate after an intentional protocol change:
//!
//! ```text
//! cargo test -p asm-service --test router -- --ignored regen
//! ```

use asm_instance::generators::GeneratorConfig;
use asm_service::{
    instance_hash, serve, BackendState, BatchItemResult, FrameHandler, InstanceSpec, Op, Reply,
    Request, Response, Router, RouterConfig, Service, ServiceConfig, SolveBody,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

fn spec(seed: u64) -> InstanceSpec {
    InstanceSpec::Generator(GeneratorConfig::Regular { n: 8, d: 3, seed })
}

fn solve_line(id: u64, seed: u64) -> String {
    serde_json::to_string(&Request {
        id: Some(id),
        op: Op::Solve(SolveBody {
            instance: spec(seed),
            algorithm: "gs".to_string(),
            eps: 0.5,
            delta: 0.1,
            seed: 1,
            backend: "greedy".to_string(),
            deadline_ms: 0,
            cycles: 0,
        }),
    })
    .unwrap()
}

fn backend_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 64,
        worker_delay_ms: 0,
        shards: 1,
    }
}

/// A router over `addrs` with probing disabled (tests drive
/// [`Router::probe_all`] directly for deterministic transitions) and
/// fail-fast timeouts.
fn router_over(addrs: &[SocketAddr], down_after: u32) -> Arc<Router> {
    Router::start(RouterConfig {
        backends: addrs.iter().map(|a| a.to_string()).collect(),
        probe_interval_ms: 0,
        down_after,
        connect_timeout_ms: 1000,
        read_timeout_ms: 5000,
        ..RouterConfig::default()
    })
    .unwrap()
}

/// One request/response exchange on a fresh TCP connection.
fn tcp_exchange(addr: SocketAddr, line: &str) -> String {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim_end().to_string()
}

fn metrics_of(out: &str) -> asm_service::MetricsSnapshot {
    let resp: Response = serde_json::from_str(out).unwrap();
    match resp.reply {
        Reply::Metrics(snap) => *snap,
        other => panic!("expected metrics, got `{}`: {out}", other.tag()),
    }
}

// ---------------------------------------------------------------- routing

/// The router's `instance_hash % backends` is the *same* partition the
/// service applies to its in-process shards: an instance lands on router
/// slice i exactly when a 3-shard service would run it on shard i.
#[test]
fn hash_slice_routing_matches_in_process_shard_routing() {
    let service = Service::start(ServiceConfig {
        shards: 3,
        workers: 3,
        ..backend_config()
    });
    // Backends never dialed: routing is a pure function of the spec.
    let unreachable: Vec<SocketAddr> = (0..3).map(|_| "127.0.0.1:1".parse().unwrap()).collect();
    let router = router_over(&unreachable, 3);
    for seed in 0..64 {
        let s = spec(seed);
        assert_eq!(
            router.route_index(&s),
            service.route(&s),
            "seed {seed}: router slice and service shard disagree"
        );
        assert_eq!(
            router.route_index(&s),
            (instance_hash(&s) % 3) as usize,
            "seed {seed}: route must be hash % backends"
        );
    }
    router.join_work();
    service.join();
}

/// A batch fanned out across two real backends merges back in request
/// order: item i of the batch reply matches what routing item i alone
/// produces.
#[test]
fn batch_merges_per_backend_groups_in_request_order() {
    let b0 = serve("127.0.0.1:0", backend_config()).unwrap();
    let b1 = serve("127.0.0.1:0", backend_config()).unwrap();
    let router = router_over(&[b0.addr(), b1.addr()], 3);

    let seeds: Vec<u64> = (1..=6).collect();
    let spread: Vec<usize> = seeds
        .iter()
        .map(|&s| router.route_index(&spec(s)))
        .collect();
    assert!(
        spread.contains(&0) && spread.contains(&1),
        "seeds 1..=6 should span both backends, got {spread:?}"
    );

    let items: Vec<String> = seeds
        .iter()
        .map(|&s| {
            let line = solve_line(0, s);
            let req: Request = serde_json::from_str(&line).unwrap();
            let Op::Solve(body) = req.op else {
                unreachable!()
            };
            serde_json::to_string(&body).unwrap()
        })
        .collect();
    let batch = format!(
        "{{\"id\":42,\"op\":\"solve_batch\",\"body\":{{\"items\":[{}]}}}}",
        items.join(",")
    );
    let out = router.handle_line(&batch);
    let resp: Response = serde_json::from_str(&out).unwrap();
    assert_eq!(resp.id, Some(42));
    let Reply::SolvedBatch(batch_result) = resp.reply else {
        panic!("expected solved_batch: {out}");
    };
    assert_eq!(batch_result.items.len(), seeds.len());

    for (i, &seed) in seeds.iter().enumerate() {
        let single = router.handle_line(&solve_line(100 + i as u64, seed));
        let resp: Response = serde_json::from_str(&single).unwrap();
        let Reply::Solved(direct) = resp.reply else {
            panic!("expected solved: {single}");
        };
        let BatchItemResult::Solved(item) = &batch_result.items[i] else {
            panic!("item {i} not solved: {:?}", batch_result.items[i].tag());
        };
        assert_eq!(
            item.matching, direct.matching,
            "batch item {i} (seed {seed}) out of request order"
        );
        assert_eq!(item.rounds, direct.rounds, "item {i} rounds");
    }

    let snap = router.router_snapshot();
    // One routed increment per backend group touched by the batch, plus
    // the six singles.
    assert_eq!(snap.routed, 2 + 6, "routed: {snap:?}");
    assert_eq!(snap.failovers, 0);
    router.join_work();
    for h in [b0, b1] {
        h.shutdown();
        h.wait();
    }
}

// ------------------------------------------------------- retry semantics

/// A scripted raw-TCP "backend": answers one line per scripted reply,
/// closing the connection after entries marked `close_after`. Lets the
/// test kill a *pooled* connection deterministically.
fn scripted_backend(script: Vec<(&'static str, bool)>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    thread::spawn(move || {
        let mut script = script.into_iter();
        'conn: loop {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            loop {
                let Some((reply, close_after)) = script.next() else {
                    return;
                };
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    continue 'conn;
                }
                (&stream).write_all(reply.as_bytes()).unwrap();
                (&stream).write_all(b"\n").unwrap();
                if close_after {
                    continue 'conn; // drop this connection, accept anew
                }
            }
        }
    });
    addr
}

/// When a pooled backend connection dies mid-request the router retries
/// exactly once on a fresh connection — and relays the backend's bytes
/// verbatim (the replies here are not even JSON).
#[test]
fn pooled_connection_death_retries_exactly_once() {
    let addr = scripted_backend(vec![("RAW-REPLY-1", true), ("RAW-REPLY-2", false)]);
    let router = router_over(&[addr], 3);
    // First solve dials fresh, pools the connection; the backend then
    // closes it, so the second solve finds a dead pooled connection.
    assert_eq!(router.handle_line(&solve_line(1, 7)), "RAW-REPLY-1");
    assert_eq!(router.handle_line(&solve_line(2, 9)), "RAW-REPLY-2");
    let snap = router.router_snapshot();
    assert_eq!(snap.retried, 1, "exactly one retry: {snap:?}");
    assert_eq!(snap.routed, 2);
    assert_eq!(snap.failovers, 0, "a successful retry is not a failover");
    assert_eq!(router.backend_states(), vec![BackendState::Up]);
    router.join_work();
}

// ------------------------------------------------------ probe transitions

/// up → suspect → down under failed probes, and back up when the
/// backend returns on the same address (recovery restores its slice).
#[test]
fn probe_state_machine_walks_up_suspect_down_and_recovers() {
    let backend = serve("127.0.0.1:0", backend_config()).unwrap();
    let addr = backend.addr();
    let router = router_over(&[addr], 2);
    let timeout = Duration::from_millis(500);

    router.probe_all(timeout);
    assert_eq!(router.backend_states(), vec![BackendState::Up]);

    backend.shutdown();
    backend.wait();
    router.probe_all(timeout);
    assert_eq!(router.backend_states(), vec![BackendState::Suspect]);
    router.probe_all(timeout);
    assert_eq!(router.backend_states(), vec![BackendState::Down]);

    // Rebind the same port (retry: the OS may briefly hold it).
    let mut revived = None;
    for _ in 0..100 {
        match serve(&addr.to_string(), backend_config()) {
            Ok(handle) => {
                revived = Some(handle);
                break;
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
    let revived = revived.expect("could not rebind the backend port");
    router.probe_all(timeout);
    assert_eq!(router.backend_states(), vec![BackendState::Up]);

    let snap = router.router_snapshot();
    assert_eq!(snap.probes, 4);
    assert_eq!(snap.probe_failures, 2);
    assert_eq!(snap.to_suspect, 1);
    assert_eq!(snap.to_down, 1);
    assert_eq!(snap.recoveries, 1);
    router.join_work();
    revived.shutdown();
    revived.wait();
}

/// A draining backend answers `health` with `accepting:false`, which a
/// probe must treat as failure — its slice has to fail over even though
/// the socket still accepts.
#[test]
fn probes_fail_a_draining_backend() {
    let backend = serve("127.0.0.1:0", backend_config()).unwrap();
    let router = router_over(&[backend.addr()], 1);
    assert_eq!(
        tcp_exchange(backend.addr(), "{\"id\":1,\"op\":\"shutdown\"}"),
        "{\"id\":1,\"reply\":\"shutting_down\"}"
    );
    router.probe_all(Duration::from_millis(500));
    assert_eq!(router.backend_states(), vec![BackendState::Down]);
    router.join_work();
    backend.wait();
}

// --------------------------------------------------------- merged metrics

/// The merged `metrics` reply reconciles three ways: aggregates equal
/// the sum of the per-backend array, the array equals each backend's own
/// books, and the router block matches what was routed.
#[test]
fn merged_metrics_reconciles_against_backend_tallies() {
    let b0 = serve("127.0.0.1:0", backend_config()).unwrap();
    let b1 = serve("127.0.0.1:0", backend_config()).unwrap();
    let router = router_over(&[b0.addr(), b1.addr()], 3);

    // Seeds 1,2,3 then 1,2 again: five solves, two of them cache hits.
    for (i, seed) in [1u64, 2, 3, 1, 2].into_iter().enumerate() {
        let out = router.handle_line(&solve_line(i as u64, seed));
        assert!(out.contains("\"reply\":\"solved\""), "{out}");
    }
    let merged = metrics_of(&router.handle_line("{\"id\":9,\"op\":\"metrics\"}"));

    assert_eq!(merged.solved, 5);
    assert_eq!(merged.cache_hits, 2);
    assert_eq!(merged.cache_misses, 3);
    assert_eq!(merged.backends.len(), 2);
    assert!(
        merged.router.is_some(),
        "merged reply must carry the router block"
    );

    // Aggregates are exactly the sum of the per-backend array.
    let sum =
        |f: fn(&asm_service::BackendSnapshot) -> u64| merged.backends.iter().map(f).sum::<u64>();
    assert_eq!(sum(|b| b.solved), merged.solved);
    assert_eq!(sum(|b| b.cache_hits), merged.cache_hits);
    assert_eq!(sum(|b| b.cache_misses), merged.cache_misses);
    assert_eq!(sum(|b| b.matched_total), merged.matched_total);
    assert_eq!(sum(|b| b.rounds_total), merged.rounds_total);
    assert_eq!(sum(|b| b.messages_total), merged.messages_total);
    assert_eq!(
        sum(|b| b.overloaded) + merged.router.as_ref().unwrap().sheds,
        merged.overloaded
    );
    let peak = merged.backends.iter().map(|b| b.queue_peak).max().unwrap();
    assert_eq!(peak, merged.queue_peak);

    // The array equals each backend's own books, fetched directly.
    for (i, handle) in [&b0, &b1].into_iter().enumerate() {
        let direct = metrics_of(&tcp_exchange(
            handle.addr(),
            "{\"id\":0,\"op\":\"metrics\"}",
        ));
        let slice = &merged.backends[i];
        assert_eq!(slice.backend, i as u64);
        assert_eq!(slice.state, "up");
        assert_eq!(slice.solved, direct.solved, "backend {i} solved");
        assert_eq!(slice.cache_hits, direct.cache_hits, "backend {i} hits");
        assert_eq!(
            slice.cache_misses, direct.cache_misses,
            "backend {i} misses"
        );
        assert_eq!(
            slice.matched_total, direct.matched_total,
            "backend {i} matched"
        );
    }

    // Both backends did real work (seeds 1..=3 span both slices).
    assert!(
        merged.backends.iter().all(|b| b.solved > 0),
        "{:?}",
        merged.backends
    );

    let snap = merged.router.unwrap();
    assert_eq!(snap.routed, 5);
    assert_eq!(snap.received, 6);
    assert_eq!(snap.sheds, 0);
    assert_eq!(snap.failovers, 0);

    router.join_work();
    for h in [b0, b1] {
        h.shutdown();
        h.wait();
    }
}

// ----------------------------------------------------- one-backend parity

/// With one backend, every data-path response through the router is
/// byte-identical to the backend's own: the differential test behind the
/// golden cases. (`metrics` is the documented exception — the router
/// adds its own books.)
#[test]
fn one_backend_routing_is_byte_identical_to_direct() {
    let direct = Service::start(backend_config());
    let backend = serve("127.0.0.1:0", backend_config()).unwrap();
    let router = router_over(&[backend.addr()], 3);

    let sequence: Vec<String> = vec![
        solve_line(1, 7),
        solve_line(2, 7), // identical repeat: served from the cache
        r#"{"id":3,"op":"analyze","body":{"instance":{"Generator":{"Regular":{"n":4,"d":2,"seed":3}}},"matching":{"partner":[null,null,null,null,null,null,null,null]},"eps":0.5}}"#.to_string(),
        solve_line(4, 9).replacen("\"algorithm\":\"gs\"", "\"algorithm\":\"quantum\"", 1),
        "{not json".to_string(),
        format!(
            "{{\"id\":5,\"op\":\"solve_batch\",\"body\":{{\"items\":[{0},{0},{1}]}}}}",
            extract_body(&solve_line(0, 11)),
            extract_body(&solve_line(0, 13)),
        ),
        "{\"id\":6,\"op\":\"solve_batch\",\"body\":{\"items\":[]}}".to_string(),
        "{\"id\":7,\"op\":\"health\"}".to_string(),
    ];
    for (i, line) in sequence.iter().enumerate() {
        let want = direct.handle_line(line);
        let got = router.handle_line(line);
        assert_eq!(got, want, "step {i}: routed bytes drifted from direct");
    }
    router.join_work();
    direct.join();
    backend.shutdown();
    backend.wait();
}

/// The `body` object of a rendered solve request line.
fn extract_body(line: &str) -> String {
    let req: Request = serde_json::from_str(line).unwrap();
    let Op::Solve(body) = req.op else {
        unreachable!()
    };
    serde_json::to_string(&body).unwrap()
}

// ------------------------------------------------------ shutdown broadcast

/// `shutdown` to the router drains the whole tier: the router refuses
/// new work and every backend receives a forwarded `shutdown`, so their
/// own drains complete.
#[test]
fn shutdown_broadcast_drains_every_backend() {
    let b0 = serve("127.0.0.1:0", backend_config()).unwrap();
    let b1 = serve("127.0.0.1:0", backend_config()).unwrap();
    let router = router_over(&[b0.addr(), b1.addr()], 3);
    assert!(router
        .handle_line(&solve_line(1, 5))
        .contains("\"reply\":\"solved\""));
    assert_eq!(
        router.handle_line("{\"id\":2,\"op\":\"shutdown\"}"),
        "{\"id\":2,\"reply\":\"shutting_down\"}"
    );
    // join_work joins the forwarders, so the broadcast has been sent.
    router.join_work();
    // Both backends saw the forwarded shutdown: wait() returns.
    assert!(b0.wait() >= 1);
    assert!(b1.wait() >= 1);
}

/// End-to-end over TCP: `serve_router` frames, routes, and drains
/// through the same reactor as the service.
#[test]
fn serve_router_end_to_end_over_tcp() {
    let backend = serve("127.0.0.1:0", backend_config()).unwrap();
    let handle = asm_service::serve_router(
        "127.0.0.1:0",
        RouterConfig {
            backends: vec![backend.addr().to_string()],
            probe_interval_ms: 0,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let out = tcp_exchange(handle.addr(), &solve_line(1, 3));
    assert!(out.contains("\"reply\":\"solved\""), "{out}");
    let out = tcp_exchange(handle.addr(), "{\"id\":2,\"op\":\"health\"}");
    assert!(out.contains("\"accepting\":true"), "{out}");
    let out = tcp_exchange(handle.addr(), "{\"id\":3,\"op\":\"shutdown\"}");
    assert_eq!(out, "{\"id\":3,\"reply\":\"shutting_down\"}");
    assert_eq!(handle.wait(), 3);
    backend.wait();
}

// -------------------------------------------------------- failover battery

/// A byte-forwarding TCP proxy with a kill switch: killing it severs
/// every live connection and refuses new ones — the in-process stand-in
/// for SIGKILLing a backend (the CI smoke job does the real thing).
struct TcpProxy {
    addr: SocketAddr,
    kill: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl TcpProxy {
    fn start(upstream: SocketAddr) -> TcpProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let kill = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let kill2 = Arc::clone(&kill);
        let conns2 = Arc::clone(&conns);
        thread::spawn(move || loop {
            if kill2.load(Ordering::SeqCst) {
                for conn in conns2.lock().unwrap().drain(..) {
                    let _ = conn.shutdown(Shutdown::Both);
                }
                return; // listener drops: further dials are refused
            }
            match listener.accept() {
                Ok((client, _)) => {
                    let Ok(server) = TcpStream::connect(upstream) else {
                        continue;
                    };
                    let mut tracked = conns2.lock().unwrap();
                    tracked.push(client.try_clone().unwrap());
                    tracked.push(server.try_clone().unwrap());
                    drop(tracked);
                    let (mut c_in, mut c_out) = (client.try_clone().unwrap(), client);
                    let (mut s_in, mut s_out) = (server.try_clone().unwrap(), server);
                    thread::spawn(move || {
                        let _ = std::io::copy(&mut c_in, &mut s_out);
                        let _ = s_out.shutdown(Shutdown::Both);
                    });
                    thread::spawn(move || {
                        let _ = std::io::copy(&mut s_in, &mut c_out);
                        let _ = c_out.shutdown(Shutdown::Both);
                    });
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return,
            }
        });
        TcpProxy { addr, kill, conns }
    }

    fn kill(&self) {
        self.kill.store(true, Ordering::SeqCst);
        // Sever immediately too — the acceptor loop may be mid-sleep.
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// Kill one of two backends mid-run: every request must still be
/// answered `solved` (zero protocol errors), the dead backend's slice
/// fails over, and the state machine marks it down. Seed-rotated:
/// `ASM_ROUTER_FAULT_ITERS` (nightly sets 10) re-runs the battery with
/// shifted instance seeds.
#[test]
fn failover_battery_reroutes_after_backend_death() {
    let iters: u64 = std::env::var("ASM_ROUTER_FAULT_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    for iter in 0..iters {
        let base = 1000 * iter;
        let b0 = serve("127.0.0.1:0", backend_config()).unwrap();
        let b1 = serve("127.0.0.1:0", backend_config()).unwrap();
        let proxy = TcpProxy::start(b0.addr());
        // down_after 1: the first failed exchange takes the slice over.
        let router = router_over(&[proxy.addr, b1.addr()], 1);

        for i in 0..8u64 {
            let out = router.handle_line(&solve_line(i, base + i));
            assert!(
                out.contains("\"reply\":\"solved\""),
                "iter {iter} pre-kill: {out}"
            );
        }
        proxy.kill();
        let mut answered = 0u64;
        for i in 8..40u64 {
            let out = router.handle_line(&solve_line(i, base + i));
            let resp: Response = serde_json::from_str(&out)
                .unwrap_or_else(|e| panic!("iter {iter} protocol error after kill: {e}: {out}"));
            assert!(
                matches!(resp.reply, Reply::Solved(_)),
                "iter {iter} post-kill request not solved: {out}"
            );
            answered += 1;
            if router.router_snapshot().failovers > 0 && answered >= 8 {
                break;
            }
        }
        let snap = router.router_snapshot();
        assert!(
            snap.failovers > 0,
            "iter {iter}: no failover recorded: {snap:?}"
        );
        assert_eq!(
            router.backend_states()[0],
            BackendState::Down,
            "iter {iter}: killed backend not marked down"
        );
        assert_eq!(router.backend_states()[1], BackendState::Up);
        router.join_work();
        b1.shutdown();
        b1.wait();
        b0.shutdown();
        b0.wait();
    }
}

// ------------------------------------------------------------ golden corpus

/// Byte-pinned router cases: scripted exchanges against a router over
/// freshly served backends. Mirrors `tests/golden.rs`; the corpus lives
/// in `crates/service/cases_router/`. `BackendSnapshot` carries no
/// address field precisely so these bytes pin despite port-0 backends.
mod golden {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::path::PathBuf;

    #[derive(Clone, Debug, Serialize, Deserialize)]
    struct RouterGoldenCase {
        description: String,
        backends: Vec<CaseBackend>,
        down_after: u64,
        steps: Vec<Step>,
    }

    #[derive(Clone, Debug, Serialize, Deserialize)]
    struct CaseBackend {
        workers: u64,
        queue_capacity: u64,
        cache_capacity: u64,
        worker_delay_ms: u64,
        shards: u64,
    }

    #[derive(Clone, Debug, Serialize, Deserialize)]
    struct Step {
        send: String,
        expect: String,
    }

    impl CaseBackend {
        fn to_service_config(&self) -> ServiceConfig {
            ServiceConfig {
                workers: self.workers as usize,
                queue_capacity: self.queue_capacity as usize,
                cache_capacity: self.cache_capacity as usize,
                worker_delay_ms: self.worker_delay_ms,
                shards: self.shards as usize,
            }
        }
    }

    fn cases_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cases_router")
    }

    fn default_backend() -> CaseBackend {
        CaseBackend {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            worker_delay_ms: 0,
            shards: 1,
        }
    }

    /// One golden scenario: (file stem, backends, down_after,
    /// description, request lines).
    type Case = (
        &'static str,
        Vec<CaseBackend>,
        u64,
        &'static str,
        Vec<String>,
    );

    /// The scripted corpus.
    fn corpus() -> Vec<Case> {
        vec![
            (
                "routed_solve_batch",
                vec![default_backend(), default_backend()],
                3,
                "a batch fanned across two backends merges per-item outcomes in request order; the duplicate hits its slice's cache, the invalid item errors in place",
                vec![format!(
                    "{{\"id\":1,\"op\":\"solve_batch\",\"body\":{{\"items\":[{},{},{},{}]}}}}",
                    extract_body(&solve_line(0, 7)),
                    extract_body(&solve_line(0, 9)),
                    extract_body(&solve_line(0, 7)),
                    extract_body(&solve_line(0, 11))
                        .replacen("\"algorithm\":\"gs\"", "\"algorithm\":\"quantum\"", 1),
                )],
            ),
            (
                "merged_metrics",
                vec![
                    // 70 ms worker delay pins every solve's latency in
                    // one stable log₂ bucket, as in the service corpus.
                    CaseBackend {
                        worker_delay_ms: 70,
                        ..default_backend()
                    },
                    CaseBackend {
                        worker_delay_ms: 70,
                        ..default_backend()
                    },
                ],
                3,
                "merged metrics across two backends: counters add, queue_peak and latency quantiles max, per-backend array plus router block",
                vec![
                    solve_line(1, 1),
                    solve_line(2, 2),
                    solve_line(3, 3),
                    solve_line(4, 1),
                    "{\"id\":5,\"op\":\"health\"}".to_string(),
                    "{\"id\":6,\"op\":\"metrics\"}".to_string(),
                ],
            ),
        ]
    }

    /// Replays a case against fresh backends + router, returning the
    /// actual response lines.
    fn run_case(backends: &[CaseBackend], down_after: u64, sends: &[String]) -> Vec<String> {
        let handles: Vec<_> = backends
            .iter()
            .map(|b| serve("127.0.0.1:0", b.to_service_config()).unwrap())
            .collect();
        let addrs: Vec<SocketAddr> = handles.iter().map(|h| h.addr()).collect();
        let router = router_over(&addrs, down_after as u32);
        let replies: Vec<String> = sends.iter().map(|line| router.handle_line(line)).collect();
        router.join_work();
        for handle in handles {
            handle.shutdown();
            handle.wait();
        }
        replies
    }

    #[test]
    fn router_golden_corpus_matches_byte_for_byte() {
        let dir = cases_dir();
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .expect("crates/service/cases_router/ exists (run the ignored `regen` test)")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".json"))
            .collect();
        names.sort();
        assert!(!names.is_empty(), "router golden corpus is empty");
        for name in names {
            let text = std::fs::read_to_string(dir.join(&name)).unwrap();
            let case: RouterGoldenCase = serde_json::from_str(&text)
                .unwrap_or_else(|err| panic!("{name}: unparseable case file: {err}"));
            let sends: Vec<String> = case.steps.iter().map(|s| s.send.clone()).collect();
            let actual = run_case(&case.backends, case.down_after, &sends);
            for (i, (step, got)) in case.steps.iter().zip(&actual).enumerate() {
                assert_eq!(
                    got, &step.expect,
                    "{name} step {i} ({}): routed response drifted from the golden corpus",
                    case.description
                );
            }
            assert_eq!(case.steps.len(), actual.len(), "{name}: step count");
        }
    }

    #[test]
    fn corpus_files_cover_every_scripted_case() {
        let dir = cases_dir();
        for (stem, _, _, _, _) in corpus() {
            assert!(
                dir.join(format!("{stem}.json")).exists(),
                "missing router golden file for case `{stem}` — run the ignored `regen` test"
            );
        }
    }

    /// Regenerates the router corpus. Ignored by default: run explicitly
    /// after an intentional protocol change, then review the diff.
    #[test]
    #[ignore = "rewrites the router golden corpus; run explicitly after protocol changes"]
    fn regen() {
        let dir = cases_dir();
        std::fs::create_dir_all(&dir).unwrap();
        for (stem, backends, down_after, description, sends) in corpus() {
            let expects = run_case(&backends, down_after, &sends);
            let case = RouterGoldenCase {
                description: description.to_string(),
                backends,
                down_after,
                steps: sends
                    .into_iter()
                    .zip(expects)
                    .map(|(send, expect)| Step { send, expect })
                    .collect(),
            };
            let path = dir.join(format!("{stem}.json"));
            let mut text = serde_json::to_string_pretty(&case).unwrap();
            text.push('\n');
            std::fs::write(&path, text).unwrap();
            println!("wrote {}", path.display());
        }
    }
}
