//! Golden-corpus replay through a real TCP socket.
//!
//! `tests/golden.rs` pins the protocol at the [`Service::handle_line`]
//! boundary; this suite replays the same case files through
//! [`serve`] and a real socket, so the reactor's framing, ordered
//! outbox, and drain behavior are byte-pinned end-to-end. Any
//! divergence between the two suites is a bug in the transport, not the
//! protocol.
//!
//! The `pipelined` case is additionally replayed with both frames in a
//! single `write` call — one TCP segment — proving the reactor splits
//! coalesced frames and answers them in request order.

use asm_service::{serve, ServiceConfig};
use serde::{content_get, Content, Deserialize};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

#[derive(Clone, Debug, Deserialize)]
struct GoldenCase {
    description: String,
    config: CaseConfig,
    steps: Vec<Step>,
}

#[derive(Clone, Debug, Deserialize)]
struct Step {
    send: String,
    expect: String,
}

/// `ServiceConfig` mirror matching the case-file schema (`shards`
/// omitted means 1) — same shape `tests/golden.rs` writes.
#[derive(Clone, Debug)]
struct CaseConfig {
    workers: u64,
    queue_capacity: u64,
    cache_capacity: u64,
    worker_delay_ms: u64,
    shards: u64,
}

impl Deserialize for CaseConfig {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a config object"))?;
        let field = |name: &str| {
            content_get(map, name)
                .ok_or_else(|| serde::Error::custom(format!("missing config field `{name}`")))
        };
        Ok(CaseConfig {
            workers: u64::from_content(field("workers")?)?,
            queue_capacity: u64::from_content(field("queue_capacity")?)?,
            cache_capacity: u64::from_content(field("cache_capacity")?)?,
            worker_delay_ms: u64::from_content(field("worker_delay_ms")?)?,
            shards: match content_get(map, "shards") {
                Some(c) => u64::from_content(c)?,
                None => 1,
            },
        })
    }
}

impl CaseConfig {
    fn to_service_config(&self) -> ServiceConfig {
        ServiceConfig {
            workers: self.workers as usize,
            queue_capacity: self.queue_capacity as usize,
            cache_capacity: self.cache_capacity as usize,
            worker_delay_ms: self.worker_delay_ms,
            shards: self.shards as usize,
        }
    }
}

fn load_cases() -> Vec<(String, GoldenCase)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cases");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("crates/service/cases/ exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let text = std::fs::read_to_string(dir.join(&name)).unwrap();
            let case: GoldenCase = serde_json::from_str(&text)
                .unwrap_or_else(|err| panic!("{name}: unparseable case file: {err}"));
            (name, case)
        })
        .collect()
}

#[test]
fn golden_corpus_replays_byte_for_byte_over_a_socket() {
    let cases = load_cases();
    assert!(cases.len() >= 15, "corpus shrank: {} cases", cases.len());
    for (name, case) in cases {
        let handle = serve("127.0.0.1:0", case.config.to_service_config()).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for (i, step) in case.steps.iter().enumerate() {
            writer.write_all(step.send.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            assert_eq!(
                response.trim_end_matches('\n'),
                step.expect,
                "{name} step {i} ({}): socket response drifted from the golden corpus",
                case.description
            );
        }
        drop(writer);
        drop(reader);
        handle.shutdown();
        handle.wait();
    }
}

#[test]
fn pipelined_case_coalesced_into_one_segment_answers_in_order() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cases");
    let text = std::fs::read_to_string(dir.join("pipelined.json")).unwrap();
    let case: GoldenCase = serde_json::from_str(&text).unwrap();
    assert_eq!(case.steps.len(), 2, "pipelined case scripts two frames");

    let handle = serve("127.0.0.1:0", case.config.to_service_config()).unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Both frames in one write: the reactor reads them in one segment
    // and must split and answer them in request order.
    let mut segment = String::new();
    for step in &case.steps {
        segment.push_str(&step.send);
        segment.push('\n');
    }
    writer.write_all(segment.as_bytes()).unwrap();
    writer.flush().unwrap();

    for (i, step) in case.steps.iter().enumerate() {
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert_eq!(
            response.trim_end_matches('\n'),
            step.expect,
            "pipelined step {i}: out-of-order or drifted response"
        );
    }
    drop(writer);
    drop(reader);
    handle.shutdown();
    assert_eq!(handle.wait(), 2);
}
