//! Fault-injection battery for the connection reactor.
//!
//! The golden suites pin what the reactor answers; this suite pins how
//! it behaves when the transport misbehaves — frames arriving a byte at
//! a time, many frames coalesced into one segment, clients vanishing
//! mid-frame, slow readers that would buffer the server into the
//! ground, and disconnects racing the drain. Every case ends by
//! checking that the metrics books still reconcile: each received frame
//! is accounted to exactly one outcome, and per-shard books sum to the
//! aggregates.

use asm_service::{serve, serve_with, MetricsSnapshot, ReactorConfig, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn config(worker_delay_ms: u64) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        cache_capacity: 8,
        worker_delay_ms,
        shards: 1,
    }
}

fn solve_frame(id: u64, seed: u64) -> String {
    format!(
        r#"{{"id":{id},"op":"solve","body":{{"instance":{{"Generator":{{"Regular":{{"n":8,"d":3,"seed":{seed}}}}}}},"algorithm":"asm","eps":0.5,"delta":0.1,"seed":42,"backend":"greedy","deadline_ms":0,"cycles":0}}}}"#
    )
}

/// Every received single-op frame must be booked to exactly one
/// outcome, and any per-shard books must sum to the aggregates.
fn assert_books_reconcile(snapshot: &MetricsSnapshot) {
    let outcomes = snapshot.malformed
        + snapshot.solved
        + snapshot.analyzed
        + snapshot.health
        + snapshot.metrics
        + snapshot.shutdown
        + snapshot.overloaded
        + snapshot.deadline_exceeded
        + snapshot.errors;
    assert_eq!(
        snapshot.received, outcomes,
        "books do not reconcile: received {} vs outcomes {}",
        snapshot.received, outcomes
    );
    if !snapshot.shards.is_empty() {
        let sum = |f: fn(&asm_service::ShardSnapshot) -> u64| -> u64 {
            snapshot.shards.iter().map(f).sum()
        };
        assert_eq!(sum(|s| s.solved), snapshot.solved, "shard solved sum");
        assert_eq!(sum(|s| s.analyzed), snapshot.analyzed, "shard analyzed sum");
        assert_eq!(
            sum(|s| s.overloaded),
            snapshot.overloaded,
            "shard overloaded sum"
        );
        assert_eq!(
            sum(|s| s.deadline_exceeded),
            snapshot.deadline_exceeded,
            "shard deadline sum"
        );
    }
}

#[test]
fn partial_frames_arriving_byte_at_a_time_are_reassembled() {
    let handle = serve("127.0.0.1:0", config(0)).unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // One byte per segment: the reactor must buffer the partial frame
    // across sweeps and only dispatch at the newline.
    let frame = b"{\"id\":1,\"op\":\"health\"}\n";
    for byte in frame {
        writer.write_all(std::slice::from_ref(byte)).unwrap();
        writer.flush().unwrap();
    }
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("{\"id\":1,"), "{reply}");
    assert!(reply.contains("\"reply\":\"health\""), "{reply}");

    // A solve split mid-JSON with a pause between the halves.
    let frame = format!("{}\n", solve_frame(2, 7));
    let (a, b) = frame.as_bytes().split_at(frame.len() / 2);
    writer.write_all(a).unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(5));
    writer.write_all(b).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"reply\":\"solved\""), "{reply}");

    drop(writer);
    drop(reader);
    handle.shutdown();
    let snapshot = handle.service().metrics().snapshot(0, 0);
    assert_eq!(snapshot.received, 2);
    assert_eq!(snapshot.health, 1);
    assert_eq!(snapshot.solved, 1);
    assert_books_reconcile(&snapshot);
    handle.wait();
}

#[test]
fn pipelined_mixed_frames_answer_in_request_order() {
    // A 20 ms worker delay guarantees the solve replies are still
    // pending when the inline-answered health is dispatched — the
    // ordered outbox must hold the health reply back.
    let handle = serve("127.0.0.1:0", config(20)).unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let segment = format!(
        "{}\n{}\n{}\n",
        solve_frame(1, 7),
        "{\"id\":2,\"op\":\"health\"}",
        solve_frame(3, 9)
    );
    writer.write_all(segment.as_bytes()).unwrap();
    writer.flush().unwrap();

    let expect = [
        (1, "\"reply\":\"solved\""),
        (2, "\"reply\":\"health\""),
        (3, "\"reply\":\"solved\""),
    ];
    for (id, kind) in expect {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.starts_with(&format!("{{\"id\":{id},")),
            "expected id {id} next (replies must be in request order), got: {reply}"
        );
        assert!(reply.contains(kind), "{reply}");
    }

    drop(writer);
    drop(reader);
    handle.shutdown();
    let snapshot = handle.service().metrics().snapshot(0, 0);
    assert_eq!(snapshot.received, 3);
    assert_eq!(snapshot.solved, 2);
    assert_eq!(snapshot.health, 1);
    assert_books_reconcile(&snapshot);
    handle.wait();
}

#[test]
fn mid_frame_disconnect_discards_the_partial_frame() {
    let handle = serve("127.0.0.1:0", config(0)).unwrap();
    let counters = std::sync::Arc::clone(handle.reactor_counters());

    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(b"{\"id\":1,\"op\":\"hea").unwrap();
        stream.flush().unwrap();
        // Drop mid-frame: no newline ever arrives.
    }

    // The reactor must notice the EOF and retire the connection.
    let deadline = Instant::now() + Duration::from_secs(2);
    while counters.get(&counters.open_connections) != 0 {
        assert!(
            Instant::now() < deadline,
            "reactor never culled the half-frame connection"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The truncated frame is not a frame: nothing was received, nothing
    // booked. A fresh client is unaffected.
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"id\":2,\"op\":\"health\"}\n").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"reply\":\"health\""), "{reply}");

    drop(writer);
    drop(reader);
    handle.shutdown();
    let snapshot = handle.service().metrics().snapshot(0, 0);
    assert_eq!(snapshot.received, 1, "the partial frame must not count");
    assert_eq!(snapshot.malformed, 0);
    assert_eq!(snapshot.health, 1);
    assert_books_reconcile(&snapshot);
    handle.wait();
}

#[test]
fn slow_reader_backpressure_bounds_server_buffering() {
    // Tiny limits make the stall observable: at most 4 unanswered
    // frames per connection, so the server buffers at most 4 replies no
    // matter how many frames the client pipelines.
    let reactor_config = ReactorConfig {
        write_high_water: 4096,
        max_outstanding: 4,
        ..ReactorConfig::default()
    };
    let handle = serve_with("127.0.0.1:0", config(2), reactor_config).unwrap();
    let counters = std::sync::Arc::clone(handle.reactor_counters());
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    const FRAMES: u64 = 64;
    let mut segment = String::new();
    for id in 0..FRAMES {
        segment.push_str(&solve_frame(id, 7));
        segment.push('\n');
    }
    // Pipeline everything without reading a single reply.
    writer.write_all(segment.as_bytes()).unwrap();
    writer.flush().unwrap();

    // Now drain: every reply, in request order.
    for id in 0..FRAMES {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.starts_with(&format!("{{\"id\":{id},")),
            "expected id {id} next, got: {reply}"
        );
        assert!(reply.contains("\"reply\":\"solved\""), "{reply}");
    }

    assert!(
        counters.get(&counters.backpressure_stalls) > 0,
        "64 pipelined frames against max_outstanding=4 must stall reads"
    );
    // Bounded buffering: the write buffer never held anywhere near all
    // 64 replies — only the high-water mark plus one stall window.
    let peak = counters.get(&counters.write_buffer_peak);
    assert!(peak < 64 * 1024, "write buffer peaked at {peak} bytes");

    drop(writer);
    drop(reader);
    handle.shutdown();
    let snapshot = handle.service().metrics().snapshot(0, 0);
    assert_eq!(snapshot.received, FRAMES);
    assert_eq!(snapshot.solved, FRAMES);
    assert_books_reconcile(&snapshot);
    handle.wait();
}

#[test]
fn abrupt_disconnect_during_drain_still_drains() {
    let handle = serve("127.0.0.1:0", config(50)).unwrap();

    // Client A admits a slow solve, then vanishes without reading.
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .write_all(format!("{}\n", solve_frame(1, 7)).as_bytes())
            .unwrap();
        stream.flush().unwrap();
        // Give the reactor a moment to read and admit the frame before
        // the connection dies.
        std::thread::sleep(Duration::from_millis(20));
    }

    // Client B shuts the server down while A's job is still running.
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for (line, expect) in [
        ("{\"id\":2,\"op\":\"health\"}", "\"reply\":\"health\""),
        (
            "{\"id\":3,\"op\":\"shutdown\"}",
            "\"reply\":\"shutting_down\"",
        ),
    ] {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains(expect), "{reply}");
    }
    drop(writer);
    drop(reader);

    // The drain must complete even though the solve's connection is
    // gone: the completion is discarded, not leaked and not hung on.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let service = std::sync::Arc::clone(handle.service());
    std::thread::spawn(move || {
        let served = handle.wait();
        let _ = done_tx.send(served);
    });
    let served = done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("wait() hung: drain never completed after the abrupt disconnect");
    assert_eq!(served, 3);

    let snapshot = service.metrics().snapshot(0, 0);
    assert_eq!(snapshot.received, 3);
    assert_eq!(snapshot.solved, 1, "the orphaned solve still completed");
    assert_eq!(snapshot.health, 1);
    assert_eq!(snapshot.shutdown, 1);
    assert_books_reconcile(&snapshot);
}

#[test]
fn shutdown_drains_within_five_milliseconds() {
    // The old accept loop slept in 5 ms poll intervals, so every drain
    // paid up to one interval of latency. The wake queue makes shutdown
    // immediate; best-of-three absorbs scheduler noise on loaded CI.
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let handle = serve("127.0.0.1:0", config(0)).unwrap();
        let start = Instant::now();
        handle.shutdown();
        handle.wait();
        best = best.min(start.elapsed());
    }
    assert!(
        best < Duration::from_millis(5),
        "drain took {best:?}; the shutdown wakeup must not sleep out a poll interval"
    );
}

#[test]
fn oversized_frame_without_newline_drops_the_connection() {
    let reactor_config = ReactorConfig {
        max_frame: 1024,
        ..ReactorConfig::default()
    };
    let handle = serve_with("127.0.0.1:0", config(0), reactor_config).unwrap();
    let counters = std::sync::Arc::clone(handle.reactor_counters());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // 4 KiB of newline-free garbage: the reactor must cut the
    // connection instead of buffering an unbounded frame.
    let garbage = vec![b'x'; 4096];
    let _ = stream.write_all(&garbage);
    let _ = stream.flush();
    let mut reply = Vec::new();
    let n = stream.read_to_end(&mut reply).unwrap_or(0);
    assert_eq!(n, 0, "no reply for an unterminated oversized frame");

    let deadline = Instant::now() + Duration::from_secs(2);
    while counters.get(&counters.open_connections) != 0 {
        assert!(Instant::now() < deadline, "oversized connection not culled");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(counters.get(&counters.resets) > 0);

    handle.shutdown();
    let snapshot = handle.service().metrics().snapshot(0, 0);
    assert_eq!(snapshot.received, 0, "garbage bytes are not frames");
    assert_books_reconcile(&snapshot);
    handle.wait();
}
