//! Golden wire-protocol corpus: every case file in `crates/service/cases/`
//! pins the exact response bytes for a scripted request sequence against
//! a freshly started service — the conformance-replay idea applied to the
//! wire protocol.
//!
//! To regenerate after an intentional protocol change:
//!
//! ```text
//! cargo test -p asm-service --test golden -- --ignored regen
//! ```
//!
//! then review the diff: every changed byte is a protocol change and
//! must be reflected in `docs/PROTOCOLS.md` (and the schema version
//! bumped if the shape of a body changed).

use asm_service::{Service, ServiceConfig};
use serde::{content_get, Content, Deserialize, Serialize};
use std::path::PathBuf;

/// One corpus file: a service configuration and a scripted exchange.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct GoldenCase {
    description: String,
    config: CaseConfig,
    steps: Vec<Step>,
}

/// `ServiceConfig` mirror with wire-friendly integer fields.
///
/// Serialized by hand so `shards` is omitted when it is `1`: the
/// pre-sharding case files carry no `shards` key, and `regen` must keep
/// rewriting them byte-identically.
#[derive(Clone, Debug)]
struct CaseConfig {
    workers: u64,
    queue_capacity: u64,
    cache_capacity: u64,
    worker_delay_ms: u64,
    shards: u64,
}

impl Serialize for CaseConfig {
    fn to_content(&self) -> Content {
        let mut map = vec![
            ("workers".to_string(), self.workers.to_content()),
            (
                "queue_capacity".to_string(),
                self.queue_capacity.to_content(),
            ),
            (
                "cache_capacity".to_string(),
                self.cache_capacity.to_content(),
            ),
            (
                "worker_delay_ms".to_string(),
                self.worker_delay_ms.to_content(),
            ),
        ];
        if self.shards != 1 {
            map.push(("shards".to_string(), self.shards.to_content()));
        }
        Content::Map(map)
    }
}

impl Deserialize for CaseConfig {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a config object"))?;
        let field = |name: &str| {
            content_get(map, name)
                .ok_or_else(|| serde::Error::custom(format!("missing config field `{name}`")))
        };
        Ok(CaseConfig {
            workers: u64::from_content(field("workers")?)?,
            queue_capacity: u64::from_content(field("queue_capacity")?)?,
            cache_capacity: u64::from_content(field("cache_capacity")?)?,
            worker_delay_ms: u64::from_content(field("worker_delay_ms")?)?,
            shards: match content_get(map, "shards") {
                Some(c) => u64::from_content(c)?,
                None => 1,
            },
        })
    }
}

impl CaseConfig {
    fn to_service_config(&self) -> ServiceConfig {
        ServiceConfig {
            workers: self.workers as usize,
            queue_capacity: self.queue_capacity as usize,
            cache_capacity: self.cache_capacity as usize,
            worker_delay_ms: self.worker_delay_ms,
            shards: self.shards as usize,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Step {
    send: String,
    expect: String,
}

fn cases_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cases")
}

fn default_config() -> CaseConfig {
    CaseConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        worker_delay_ms: 0,
        shards: 1,
    }
}

/// The body of [`SOLVE_REGULAR`], reused verbatim by the batch case.
const SOLVE_BODY: &str = r#"{"instance":{"Generator":{"Regular":{"n":8,"d":3,"seed":7}}},"algorithm":"asm","eps":0.5,"delta":0.1,"seed":42,"backend":"greedy","deadline_ms":0,"cycles":0}"#;

const SOLVE_REGULAR: &str = r#"{"id":1,"op":"solve","body":{"instance":{"Generator":{"Regular":{"n":8,"d":3,"seed":7}}},"algorithm":"asm","eps":0.5,"delta":0.1,"seed":42,"backend":"greedy","deadline_ms":0,"cycles":0}}"#;

/// Shared opener for the market cases: a Regular(4,2,3) market `alpha`.
const MARKET_CREATE: &str = r#"{"id":1,"op":"market_create","body":{"market":"alpha","instance":{"Generator":{"Regular":{"n":4,"d":2,"seed":3}}},"eps":0.5}}"#;

/// The corpus: (file stem, config, description, request lines). The
/// expected bytes are whatever the service answers at regen time; the
/// checked-in files then pin them.
fn corpus() -> Vec<(&'static str, CaseConfig, &'static str, Vec<String>)> {
    let solve2 = SOLVE_REGULAR.replacen("\"id\":1", "\"id\":2", 1);
    let solve2_cached = solve2.clone();
    vec![
        (
            "health",
            default_config(),
            "health reports schema, capacity, and accepting on a fresh service",
            vec!["{\"id\":1,\"op\":\"health\"}".to_string()],
        ),
        (
            "metrics_fresh",
            default_config(),
            "metrics on a fresh service: all-zero counters except received/metrics",
            vec!["{\"id\":1,\"op\":\"metrics\"}".to_string()],
        ),
        (
            "solve_asm",
            default_config(),
            "deterministic ASM solve of a Regular(8,3,7) generator instance",
            vec![SOLVE_REGULAR.to_string()],
        ),
        (
            "solve_cached",
            default_config(),
            "an identical repeat solve is served from the cache (cached:true, same matching)",
            vec![SOLVE_REGULAR.to_string(), solve2.clone()],
        ),
        (
            "solve_uncached",
            CaseConfig {
                cache_capacity: 0,
                ..default_config()
            },
            "with cache_capacity 0 the repeat solve recomputes (cached stays false)",
            vec![SOLVE_REGULAR.to_string(), solve2],
        ),
        (
            "solve_gs_baselines",
            default_config(),
            "gs and truncated-gs solves (cycles budget honored)",
            vec![
                SOLVE_REGULAR.replacen("\"algorithm\":\"asm\"", "\"algorithm\":\"gs\"", 1),
                SOLVE_REGULAR
                    .replacen("\"id\":1", "\"id\":2", 1)
                    .replacen("\"algorithm\":\"asm\"", "\"algorithm\":\"truncated-gs\"", 1)
                    .replacen("\"cycles\":0", "\"cycles\":2", 1),
            ],
        ),
        (
            "analyze",
            default_config(),
            "analyze audits an inline matching against a generator instance",
            vec![
                r#"{"id":1,"op":"analyze","body":{"instance":{"Generator":{"Regular":{"n":4,"d":2,"seed":3}}},"matching":{"partner":[null,null,null,null,null,null,null,null]},"eps":0.5}}"#
                    .to_string(),
            ],
        ),
        (
            "overloaded",
            CaseConfig {
                queue_capacity: 0,
                ..default_config()
            },
            "a zero-capacity queue refuses every job with an explicit overloaded reply",
            vec![SOLVE_REGULAR.to_string()],
        ),
        (
            "deadline_exceeded",
            CaseConfig {
                worker_delay_ms: 30,
                ..default_config()
            },
            "a 5 ms queue-wait deadline under a 30 ms worker delay deterministically expires",
            vec![SOLVE_REGULAR.replacen("\"deadline_ms\":0", "\"deadline_ms\":5", 1)],
        ),
        (
            "malformed",
            default_config(),
            "unparseable frames get id:null malformed errors; valid frames still work after",
            vec![
                "{not json".to_string(),
                "{\"id\":1}".to_string(),
                "[1,2,3]".to_string(),
                "{\"id\":2,\"op\":\"health\"}".to_string(),
            ],
        ),
        (
            "invalid_params",
            default_config(),
            "unknown op / unknown algorithm / bad eps are invalid, not malformed",
            vec![
                "{\"id\":1,\"op\":\"dance\"}".to_string(),
                SOLVE_REGULAR.replacen("\"algorithm\":\"asm\"", "\"algorithm\":\"quantum\"", 1),
                SOLVE_REGULAR
                    .replacen("\"id\":1", "\"id\":2", 1)
                    .replacen("\"eps\":0.5", "\"eps\":-1.0", 1),
                SOLVE_REGULAR
                    .replacen("\"id\":1", "\"id\":3", 1)
                    .replacen("\"backend\":\"greedy\"", "\"backend\":\"magic\"", 1),
            ],
        ),
        (
            "shutdown_drain",
            default_config(),
            "shutdown acknowledges, then refuses new jobs while health keeps answering",
            vec![
                "{\"id\":1,\"op\":\"shutdown\"}".to_string(),
                SOLVE_REGULAR.replacen("\"id\":1", "\"id\":2", 1),
                "{\"id\":3,\"op\":\"health\"}".to_string(),
            ],
        ),
        (
            "solve_batch",
            CaseConfig {
                workers: 2,
                shards: 2,
                ..default_config()
            },
            "solve_batch on two shards: per-item outcomes in request order, duplicate hits the shard cache, invalid item errors without consuming capacity",
            vec![format!(
                "{{\"id\":1,\"op\":\"solve_batch\",\"body\":{{\"items\":[{},{},{},{}]}}}}",
                SOLVE_BODY,
                SOLVE_BODY.replacen("\"seed\":7", "\"seed\":9", 1),
                SOLVE_BODY,
                SOLVE_BODY.replacen("\"algorithm\":\"asm\"", "\"algorithm\":\"quantum\"", 1),
            )],
        ),
        (
            "pipelined",
            default_config(),
            "two solves pipelined in a single TCP segment answer in request order; the single worker completes the first before the second, so the repeat is cached",
            vec![SOLVE_REGULAR.to_string(), solve2_cached],
        ),
        (
            "market_create",
            default_config(),
            "market_create registers a persistent market; duplicate ids and bad eps are invalid",
            vec![
                MARKET_CREATE.to_string(),
                MARKET_CREATE.replacen("\"id\":1", "\"id\":2", 1),
                MARKET_CREATE
                    .replacen("\"id\":1", "\"id\":3", 1)
                    .replacen("\"market\":\"alpha\"", "\"market\":\"beta\"", 1)
                    .replacen("\"eps\":0.5", "\"eps\":0.0", 1),
            ],
        ),
        (
            "market_mutate",
            default_config(),
            "market_mutate applies ordered batches, tracks dirty sets and the epoch; unknown markets and invalid ops are invalid (the failed batch reports its applied prefix)",
            vec![
                MARKET_CREATE.to_string(),
                r#"{"id":2,"op":"market_mutate","body":{"market":"alpha","ops":[{"SetPrefs":{"side":"Women","index":0,"prefs":[1,0]}},{"RemoveAgent":{"side":"Men","index":3}}]}}"#
                    .to_string(),
                r#"{"id":3,"op":"market_mutate","body":{"market":"ghost","ops":[]}}"#.to_string(),
                r#"{"id":4,"op":"market_mutate","body":{"market":"alpha","ops":[{"AddAgent":{"side":"Men","prefs":[0,1]}},{"RemoveAgent":{"side":"Women","index":99}}]}}"#
                    .to_string(),
            ],
        ),
        (
            "market_resolve",
            default_config(),
            "resolve runs cold on the first solve, warm after a single-agent mutation (same stability, no fallback); unknown modes are invalid",
            vec![
                // A 16-agent market: removing one man dirties 3/16 of the
                // agents, safely under the 0.25 auto dirty limit, so the
                // second resolve exercises the warm path.
                MARKET_CREATE.replacen(
                    "\"Regular\":{\"n\":4,\"d\":2,\"seed\":3}",
                    "\"Regular\":{\"n\":8,\"d\":2,\"seed\":3}",
                    1,
                ),
                r#"{"id":2,"op":"resolve","body":{"market":"alpha","mode":"auto"}}"#.to_string(),
                r#"{"id":3,"op":"market_mutate","body":{"market":"alpha","ops":[{"RemoveAgent":{"side":"Men","index":0}}]}}"#
                    .to_string(),
                r#"{"id":4,"op":"resolve","body":{"market":"alpha","mode":"auto"}}"#.to_string(),
                r#"{"id":5,"op":"resolve","body":{"market":"alpha","mode":"lukewarm"}}"#.to_string(),
            ],
        ),
        (
            "market_drop",
            default_config(),
            "market_drop discards the market and its cached matching; later ops on it are invalid",
            vec![
                MARKET_CREATE.to_string(),
                r#"{"id":2,"op":"market_drop","body":{"market":"alpha"}}"#.to_string(),
                r#"{"id":3,"op":"resolve","body":{"market":"alpha","mode":"cold"}}"#.to_string(),
                r#"{"id":4,"op":"market_drop","body":{"market":"alpha"}}"#.to_string(),
            ],
        ),
        (
            "sharded_metrics",
            CaseConfig {
                workers: 4,
                shards: 4,
                // Large enough that every solve's enqueue→reply latency
                // falls in one stable log₂ bucket ([65536, 131072) µs).
                worker_delay_ms: 70,
                ..default_config()
            },
            "four shards: health reports the shard count, metrics carries per-shard books summing to the aggregates",
            vec![
                SOLVE_REGULAR.to_string(),
                SOLVE_REGULAR
                    .replacen("\"id\":1", "\"id\":2", 1)
                    .replacen("\"seed\":7", "\"seed\":9", 1),
                SOLVE_REGULAR.replacen("\"id\":1", "\"id\":3", 1),
                "{\"id\":4,\"op\":\"health\"}".to_string(),
                "{\"id\":5,\"op\":\"metrics\"}".to_string(),
            ],
        ),
    ]
}

/// Replays a case against a fresh service, returning actual responses.
fn run_case(config: &CaseConfig, sends: &[String]) -> Vec<String> {
    let service = Service::start(config.to_service_config());
    let replies: Vec<String> = sends.iter().map(|line| service.handle_line(line)).collect();
    service.join();
    replies
}

#[test]
fn golden_corpus_matches_byte_for_byte() {
    let dir = cases_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("crates/service/cases/ exists (run the ignored `regen` test)")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "golden corpus is empty");
    for name in names {
        let text = std::fs::read_to_string(dir.join(&name)).unwrap();
        let case: GoldenCase = serde_json::from_str(&text)
            .unwrap_or_else(|err| panic!("{name}: unparseable case file: {err}"));
        let actual = run_case(
            &case.config,
            &case
                .steps
                .iter()
                .map(|s| s.send.clone())
                .collect::<Vec<_>>(),
        );
        for (i, (step, got)) in case.steps.iter().zip(&actual).enumerate() {
            assert_eq!(
                got, &step.expect,
                "{name} step {i} ({}): response drifted from the golden corpus",
                case.description
            );
        }
        assert_eq!(case.steps.len(), actual.len(), "{name}: step count");
    }
}

#[test]
fn corpus_files_cover_every_scripted_case() {
    let dir = cases_dir();
    for (stem, _, _, _) in corpus() {
        assert!(
            dir.join(format!("{stem}.json")).exists(),
            "missing golden file for case `{stem}` — run the ignored `regen` test"
        );
    }
}

/// Regenerates the corpus. Ignored by default: run explicitly after an
/// intentional protocol change, then review the diff.
#[test]
#[ignore = "rewrites the golden corpus; run explicitly after protocol changes"]
fn regen() {
    let dir = cases_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (stem, config, description, sends) in corpus() {
        let expects = run_case(&config, &sends);
        let case = GoldenCase {
            description: description.to_string(),
            config,
            steps: sends
                .into_iter()
                .zip(expects)
                .map(|(send, expect)| Step { send, expect })
                .collect(),
        };
        let path = dir.join(format!("{stem}.json"));
        let mut text = serde_json::to_string_pretty(&case).unwrap();
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        println!("wrote {}", path.display());
    }
}
