//! The TCP layer: one reactor thread, any number of connections,
//! newline-delimited frames in and out.
//!
//! Deliberately thin: all protocol behaviour lives in
//! [`Service::handle_line_async`] (byte-identical to
//! [`Service::handle_line`](crate::service::Service::handle_line), which
//! the golden corpus pins), so this module only owns sockets and the
//! [`reactor`](crate::reactor) lifecycle. Connections no longer cost a
//! thread each: the reactor multiplexes every socket over nonblocking
//! I/O, and worker completions wake it through its condvar-backed wake
//! queue — including shutdown, which is immediate instead of waiting out
//! an accept-poll interval.
//!
//! [`ServerHandle::wait`] keeps the graceful-drain guarantee: accept
//! stopped (listener dropped, port free) → workers joined (every
//! accepted job answered) → every in-flight response line flushed.
//! Connections still open at that point keep being served control frames
//! (and refusals) by the detached reactor until they close.

use crate::metrics::ReactorCounters;
use crate::reactor::{spawn_reactor, ReactorConfig, WakeQueue};
use crate::service::{FrameHandler, Service, ServiceConfig};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// A running server: a [`FrameHandler`] plus its reactor thread. The
/// default handler is [`Service`] (what [`serve`] builds); the router
/// tier serves a [`Router`](crate::router::Router) through the same
/// handle via [`serve_router`](crate::router::serve_router).
pub struct ServerHandle<H: FrameHandler = Service> {
    handler: Arc<H>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Arc<WakeQueue>,
    counters: Arc<ReactorCounters>,
    drained_rx: mpsc::Receiver<()>,
    reactor_thread: Option<JoinHandle<()>>,
}

impl<H: FrameHandler> ServerHandle<H> {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared handler (for in-process probes in tests).
    pub fn service(&self) -> &Arc<H> {
        &self.handler
    }

    /// The reactor's I/O books: connection gauge, frame/wakeup/
    /// backpressure counters. Not part of the `metrics` wire reply.
    pub fn reactor_counters(&self) -> &Arc<ReactorCounters> {
        &self.counters
    }

    /// Asks the server to stop accepting connections and admitting jobs,
    /// as if a `shutdown` request had arrived. Takes effect immediately:
    /// the wake queue is poked, so the reactor does not sleep out a poll
    /// interval first. Idempotent.
    pub fn shutdown(&self) {
        self.handler.begin_shutdown();
        self.stop.store(true, Ordering::SeqCst);
        self.wake.poke();
    }

    /// Blocks until the server has fully drained: the listener is
    /// closed, every accepted job has been answered, and every in-flight
    /// response has been written. Returns the number of frames served.
    ///
    /// Callers normally send a `shutdown` request (or call
    /// [`shutdown`](ServerHandle::shutdown)) first; `wait` alone blocks
    /// until someone does.
    pub fn wait(mut self) -> u64 {
        // The reactor signals once stopping with nothing in flight. A
        // recv error means the reactor died; fall through and join.
        let _ = self.drained_rx.recv();
        // Workers exit once the (closed) queues are drained.
        self.handler.join_work();
        if let Some(reactor) = self.reactor_thread.take() {
            if reactor.is_finished() {
                let _ = reactor.join();
            }
            // Otherwise the reactor stays behind serving lingering
            // connections (control frames, refusals) until they close —
            // the same afterlife the per-connection threads used to have.
        }
        self.handler.frames_served()
    }
}

/// Binds `addr` and spawns a reactor serving `handler`: the shared back
/// half of [`serve`] and [`serve_router`](crate::router::serve_router).
pub(crate) fn spawn_server<H: FrameHandler>(
    addr: &str,
    handler: Arc<H>,
    reactor_config: ReactorConfig,
) -> io::Result<ServerHandle<H>> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let wake = WakeQueue::new();
    let counters = Arc::new(ReactorCounters::new());
    let (drained_tx, drained_rx) = mpsc::channel();
    let reactor_thread = spawn_reactor(
        listener,
        Arc::clone(&handler) as Arc<dyn FrameHandler>,
        Arc::clone(&stop),
        Arc::clone(&wake),
        Arc::clone(&counters),
        drained_tx,
        reactor_config,
    );
    Ok(ServerHandle {
        handler,
        addr,
        stop,
        wake,
        counters,
        drained_rx,
        reactor_thread: Some(reactor_thread),
    })
}

/// Binds `addr` and serves the protocol until a `shutdown` request (or
/// [`ServerHandle::shutdown`]) arrives. Uses the default
/// [`ReactorConfig`]; tests that need deterministic backpressure use
/// [`serve_with`].
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(addr: &str, config: ServiceConfig) -> io::Result<ServerHandle> {
    serve_with(addr, config, ReactorConfig::default())
}

/// [`serve`] with explicit reactor tunables (buffer high-water marks,
/// outstanding-frame limits, maximum frame size).
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_with(
    addr: &str,
    config: ServiceConfig,
    reactor_config: ReactorConfig,
) -> io::Result<ServerHandle> {
    spawn_server(addr, Service::start(config), reactor_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut out = Vec::new();
        for line in lines {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            out.push(response.trim_end().to_string());
        }
        out
    }

    #[test]
    fn serves_health_then_drains_on_shutdown() {
        let handle = serve("127.0.0.1:0", ServiceConfig::default()).unwrap();
        let addr = handle.addr();
        let replies = send_lines(
            addr,
            &[
                "{\"id\":1,\"op\":\"health\"}",
                "{\"id\":2,\"op\":\"metrics\"}",
                "{\"id\":3,\"op\":\"shutdown\"}",
            ],
        );
        assert!(
            replies[0].contains("\"reply\":\"health\""),
            "{}",
            replies[0]
        );
        assert!(
            replies[1].contains("\"reply\":\"metrics\""),
            "{}",
            replies[1]
        );
        assert!(
            replies[2].contains("\"reply\":\"shutting_down\""),
            "{}",
            replies[2]
        );
        let served = handle.wait();
        assert_eq!(served, 3);
        // The listener is gone: connecting may succeed briefly on some
        // stacks, but a fresh serve() can rebind the port.
        let rebound = serve(&addr.to_string(), ServiceConfig::default());
        if let Ok(rebound) = rebound {
            rebound.shutdown();
            rebound.wait();
        }
    }

    #[test]
    fn concurrent_connections_each_get_their_replies() {
        let handle = serve("127.0.0.1:0", ServiceConfig::default()).unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let line = format!("{{\"id\":{i},\"op\":\"health\"}}");
                    send_lines(addr, &[&line])
                })
            })
            .collect();
        for (i, thread) in threads.into_iter().enumerate() {
            let replies = thread.join().unwrap();
            assert!(
                replies[0].starts_with(&format!("{{\"id\":{i},")),
                "{}",
                replies[0]
            );
        }
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn malformed_line_gets_null_id_error_over_the_wire() {
        let handle = serve("127.0.0.1:0", ServiceConfig::default()).unwrap();
        let replies = send_lines(handle.addr(), &["this is not json"]);
        assert!(
            replies[0].starts_with("{\"id\":null,\"reply\":\"error\""),
            "{}",
            replies[0]
        );
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn reactor_counters_track_connections_and_frames() {
        let handle = serve("127.0.0.1:0", ServiceConfig::default()).unwrap();
        let replies = send_lines(
            handle.addr(),
            &[
                "{\"id\":1,\"op\":\"health\"}",
                "{\"id\":2,\"op\":\"health\"}",
            ],
        );
        assert_eq!(replies.len(), 2);
        let counters = Arc::clone(handle.reactor_counters());
        assert_eq!(counters.get(&counters.accepted), 1);
        assert_eq!(counters.get(&counters.frames), 2);
        handle.shutdown();
        handle.wait();
        assert_eq!(counters.get(&counters.open_connections), 0);
    }
}
