//! The TCP layer: a listener, one thread per connection, newline-delimited
//! frames in and out.
//!
//! Deliberately thin: all protocol behaviour lives in
//! [`Service::handle_line`], so this module only owns sockets and thread
//! lifecycle. The accept loop polls a shutdown flag with a non-blocking
//! listener (no self-connect tricks), and [`ServerHandle::wait`] provides
//! the graceful-drain guarantee: accept loop stopped → workers joined
//! (every accepted job answered) → every in-flight response line flushed.

use crate::service::{Service, ServiceConfig};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A running server: the service plus its accept thread.
pub struct ServerHandle {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    open_frames: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for in-process probes in tests).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Asks the server to stop accepting connections and admitting jobs,
    /// as if a `shutdown` request had arrived. Idempotent.
    pub fn shutdown(&self) {
        self.service.begin_shutdown();
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server has fully drained: the accept loop has
    /// exited, every accepted job has been answered, and every in-flight
    /// response has been written. Returns the number of frames served.
    ///
    /// Callers normally send a `shutdown` request (or call
    /// [`shutdown`](ServerHandle::shutdown)) first; `wait` alone blocks
    /// until someone does.
    pub fn wait(mut self) -> u64 {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Workers exit once the (closed) queue is drained.
        self.service.join();
        // Connection threads may still be writing their final lines.
        while self.open_frames.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.service.metrics().snapshot(0, 0).received
    }
}

/// Binds `addr` and serves the protocol until a `shutdown` request (or
/// [`ServerHandle::shutdown`]) arrives.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(addr: &str, config: ServiceConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let service = Service::start(config);
    let stop = Arc::new(AtomicBool::new(false));
    let open_frames = Arc::new(AtomicU64::new(0));

    let accept_thread = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let open_frames = Arc::clone(&open_frames);
        std::thread::Builder::new()
            .name("asm-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, &service, &stop, &open_frames);
            })
            .expect("spawning the accept thread")
    };

    Ok(ServerHandle {
        service,
        addr,
        stop,
        open_frames,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    open_frames: &Arc<AtomicU64>,
) {
    loop {
        // A `shutdown` request flips `accepting`; the handle's shutdown()
        // flips `stop`. Either ends the accept loop.
        if stop.load(Ordering::SeqCst) || !service.is_accepting() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(service);
                let open_frames = Arc::clone(open_frames);
                let _ = std::thread::Builder::new()
                    .name("asm-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &service, &open_frames);
                    });
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept errors (e.g. ECONNABORTED): keep serving.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Serves one connection: one request line in, one response line out,
/// until EOF. The frame counter brackets handle→write so `wait()` knows
/// when every response has hit the socket.
fn handle_connection(
    stream: TcpStream,
    service: &Arc<Service>,
    open_frames: &Arc<AtomicU64>,
) -> io::Result<()> {
    // Blocking I/O per connection (the listener's nonblocking flag is
    // per-socket on all tier-1 platforms, but set it explicitly: accepted
    // sockets can inherit O_NONBLOCK on some BSDs).
    stream.set_nonblocking(false)?;
    // One-line request/response frames must not sit in Nagle's buffer
    // waiting for a delayed ACK (~40 ms per exchange otherwise).
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        open_frames.fetch_add(1, Ordering::SeqCst);
        let response = service.handle_line(&line);
        let outcome = writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        open_frames.fetch_sub(1, Ordering::SeqCst);
        outcome?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut out = Vec::new();
        for line in lines {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            out.push(response.trim_end().to_string());
        }
        out
    }

    #[test]
    fn serves_health_then_drains_on_shutdown() {
        let handle = serve("127.0.0.1:0", ServiceConfig::default()).unwrap();
        let addr = handle.addr();
        let replies = send_lines(
            addr,
            &[
                "{\"id\":1,\"op\":\"health\"}",
                "{\"id\":2,\"op\":\"metrics\"}",
                "{\"id\":3,\"op\":\"shutdown\"}",
            ],
        );
        assert!(
            replies[0].contains("\"reply\":\"health\""),
            "{}",
            replies[0]
        );
        assert!(
            replies[1].contains("\"reply\":\"metrics\""),
            "{}",
            replies[1]
        );
        assert!(
            replies[2].contains("\"reply\":\"shutting_down\""),
            "{}",
            replies[2]
        );
        let served = handle.wait();
        assert_eq!(served, 3);
        // The listener is gone: connecting may succeed briefly on some
        // stacks, but a fresh serve() can rebind the port.
        let rebound = serve(&addr.to_string(), ServiceConfig::default());
        if let Ok(rebound) = rebound {
            rebound.shutdown();
            rebound.wait();
        }
    }

    #[test]
    fn concurrent_connections_each_get_their_replies() {
        let handle = serve("127.0.0.1:0", ServiceConfig::default()).unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let line = format!("{{\"id\":{i},\"op\":\"health\"}}");
                    send_lines(addr, &[&line])
                })
            })
            .collect();
        for (i, thread) in threads.into_iter().enumerate() {
            let replies = thread.join().unwrap();
            assert!(
                replies[0].starts_with(&format!("{{\"id\":{i},")),
                "{}",
                replies[0]
            );
        }
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn malformed_line_gets_null_id_error_over_the_wire() {
        let handle = serve("127.0.0.1:0", ServiceConfig::default()).unwrap();
        let replies = send_lines(handle.addr(), &["this is not json"]);
        assert!(
            replies[0].starts_with("{\"id\":null,\"reply\":\"error\""),
            "{}",
            replies[0]
        );
        handle.shutdown();
        handle.wait();
    }
}
