//! A std-only poll-based connection reactor: one thread, any number of
//! sockets.
//!
//! The crate forbids `unsafe` and vendors no libc, so there is no
//! `poll(2)`/`epoll(7)` to call. Instead the reactor runs a
//! **level-triggered readiness scan** over nonblocking sockets: each
//! sweep accepts pending connections, drains worker completions from a
//! condvar-backed wake queue, and gives every connection a chance to
//! flush buffered responses and read new bytes. When a sweep makes no
//! progress the reactor spins briefly (yielding), then parks on the wake
//! queue with a short timeout — so worker completions and shutdown wake
//! it *immediately* (the wake queue is the "wakeup pipe" of classic
//! reactors, built from a `Condvar` instead of a self-pipe), while new
//! sockets and new bytes are discovered within one poll interval.
//!
//! ## Framing
//!
//! Requests are newline-delimited: bytes accumulate in a per-connection
//! read buffer and every complete line becomes one frame (a trailing
//! `\r` is stripped; whitespace-only lines are ignored; invalid UTF-8
//! drops the connection, as the old per-connection `BufRead::lines` loop
//! did). A frame that grows past [`ReactorConfig::max_frame`] without a
//! newline drops the connection instead of buffering without bound.
//!
//! ## Response ordering
//!
//! The line protocol promises replies in request order per connection.
//! Control ops answer inline while solves complete asynchronously, so
//! each connection keeps an ordered *outbox* of response slots keyed by
//! frame sequence number; only the filled prefix is flushed. A fast
//! `health` pipelined behind a slow `solve` waits its turn.
//!
//! ## Backpressure
//!
//! The reactor stops *reading* a connection (it never stops serving
//! others) while its unflushed write buffer exceeds
//! [`ReactorConfig::write_high_water`] or its outbox holds
//! [`ReactorConfig::max_outstanding`] unanswered frames. A slow reader
//! therefore bounds its own memory footprint instead of growing the
//! server's.
//!
//! ## Drain
//!
//! Shutdown keeps its exact contract, expressed as reactor states:
//! *stopping* (listener dropped, no new admissions) → *drained* (no
//! pending jobs, every response flushed — signalled to
//! [`ServerHandle::wait`](crate::server::ServerHandle::wait)) →
//! *retired* (the reactor keeps answering control frames on lingering
//! connections until they close, then exits).

use crate::framing::LineFramer;
use crate::metrics::ReactorCounters;
use crate::service::{CompletionSink, FrameHandler};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the reactor parks on the wake queue when idle. New
/// connections and new bytes are discovered within one interval; worker
/// completions and shutdown cut it short by poking the queue.
const POLL_INTERVAL: Duration = Duration::from_millis(1);

/// Sweeps of yield-and-rescan after the last progress before parking.
const SPIN_SWEEPS: u32 = 16;

/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 8192;

/// Tunables for the connection reactor. [`Default`] suits production;
/// tests shrink the limits to make backpressure deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Stop reading a connection while its unflushed write buffer holds
    /// at least this many bytes.
    pub write_high_water: usize,
    /// Stop reading a connection while this many of its frames await a
    /// response (pending jobs plus unflushed replies).
    pub max_outstanding: usize,
    /// Drop a connection whose current frame exceeds this many bytes
    /// without a terminating newline.
    pub max_frame: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            write_high_water: 256 * 1024,
            max_outstanding: 1024,
            max_frame: 64 * 1024 * 1024,
        }
    }
}

/// An event on the reactor's wake queue.
pub(crate) enum Wake {
    /// A worker finished frame (`token`, `seq`); `line` is the rendered
    /// response (no trailing newline).
    Complete { token: u64, seq: u64, line: String },
    /// Bare wakeup (shutdown): re-evaluate state now.
    Poke,
}

/// The reactor's wakeup channel: a condvar-backed queue that worker
/// threads and [`ServerHandle::shutdown`](crate::server::ServerHandle::shutdown)
/// push into, cutting idle waits short.
pub(crate) struct WakeQueue {
    queue: Mutex<VecDeque<Wake>>,
    not_empty: Condvar,
}

impl WakeQueue {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(WakeQueue {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
        })
    }

    pub(crate) fn push(&self, wake: Wake) {
        self.queue.lock().expect("wake queue lock").push_back(wake);
        self.not_empty.notify_one();
    }

    pub(crate) fn poke(&self) {
        self.push(Wake::Poke);
    }

    /// Takes everything queued right now, without blocking.
    fn drain(&self) -> Vec<Wake> {
        self.queue
            .lock()
            .expect("wake queue lock")
            .drain(..)
            .collect()
    }

    /// Parks until the queue is non-empty or `timeout` elapses. Returns
    /// whether an event is waiting (the caller drains on its next sweep).
    fn wait_nonempty(&self, timeout: Duration) -> bool {
        let queue = self.queue.lock().expect("wake queue lock");
        if !queue.is_empty() {
            return true;
        }
        let (queue, _timed_out) = self
            .not_empty
            .wait_timeout(queue, timeout)
            .expect("wake queue lock");
        !queue.is_empty()
    }
}

/// The [`CompletionSink`] workers deliver into: counts the completion
/// and wakes the reactor.
pub(crate) struct ReactorSink {
    wake: Arc<WakeQueue>,
    counters: Arc<ReactorCounters>,
}

impl CompletionSink for ReactorSink {
    fn complete(&self, token: u64, seq: u64, line: String) {
        self.counters.completions.fetch_add(1, Ordering::Relaxed);
        self.wake.push(Wake::Complete { token, seq, line });
    }
}

/// One connection's state: buffers, the ordered outbox, and liveness.
struct Conn {
    stream: TcpStream,
    /// Incremental framer over bytes read but not yet framed (at most
    /// one partial frame plus whatever a stall left unprocessed).
    framer: LineFramer,
    /// Flushed-in-order response bytes; `write_pos` marks how much has
    /// reached the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Response slot per in-flight frame, in request order. `None` is a
    /// pending job; `Some` holds the rendered line (with newline).
    outbox: VecDeque<Option<Vec<u8>>>,
    /// Sequence number of `outbox[0]`.
    base_seq: u64,
    /// Sequence number the next frame will get.
    next_seq: u64,
    /// Read side saw EOF; the connection retires once the outbox and
    /// write buffer empty.
    eof: bool,
    /// Socket error or protocol violation: retire immediately.
    dead: bool,
    /// Currently under backpressure (for stall-transition counting).
    stalled: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize) -> Self {
        Conn {
            stream,
            framer: LineFramer::new(max_frame),
            write_buf: Vec::new(),
            write_pos: 0,
            outbox: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            eof: false,
            dead: false,
            stalled: false,
        }
    }

    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn fully_flushed(&self) -> bool {
        self.outbox.is_empty() && self.unflushed() == 0
    }

    /// Stores a completed response in its ordered slot.
    fn fill_slot(&mut self, seq: u64, line: String) {
        let index = (seq - self.base_seq) as usize;
        if let Some(slot) = self.outbox.get_mut(index) {
            let mut bytes = line.into_bytes();
            bytes.push(b'\n');
            *slot = Some(bytes);
        }
    }
}

/// The reactor itself. Constructed and spawned by
/// [`serve`](crate::server::serve); everything else is internal.
pub(crate) struct Reactor {
    listener: Option<TcpListener>,
    handler: Arc<dyn FrameHandler>,
    stop: Arc<AtomicBool>,
    wake: Arc<WakeQueue>,
    sink: Arc<dyn CompletionSink>,
    counters: Arc<ReactorCounters>,
    config: ReactorConfig,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Jobs admitted via `handle_line_async` whose completion has not
    /// yet been applied (completions for dead connections still count
    /// down — their outcome was already booked by the worker).
    pending_jobs: u64,
    /// Signalled exactly once, when stopping with nothing in flight.
    drained_tx: Option<mpsc::Sender<()>>,
}

/// Spawns the reactor thread serving `listener`.
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    handler: Arc<dyn FrameHandler>,
    stop: Arc<AtomicBool>,
    wake: Arc<WakeQueue>,
    counters: Arc<ReactorCounters>,
    drained_tx: mpsc::Sender<()>,
    config: ReactorConfig,
) -> JoinHandle<()> {
    let sink: Arc<dyn CompletionSink> = Arc::new(ReactorSink {
        wake: Arc::clone(&wake),
        counters: Arc::clone(&counters),
    });
    let reactor = Reactor {
        listener: Some(listener),
        handler,
        stop,
        wake,
        sink,
        counters,
        config,
        conns: HashMap::new(),
        next_token: 0,
        pending_jobs: 0,
        drained_tx: Some(drained_tx),
    };
    std::thread::Builder::new()
        .name("asm-reactor".to_string())
        .spawn(move || reactor.run())
        .expect("spawning the reactor thread")
}

impl Reactor {
    fn run(mut self) {
        let mut spins = 0u32;
        loop {
            let mut progress = false;
            for event in self.wake.drain() {
                progress = true;
                self.apply(event);
            }
            if self.stopping() {
                // Drop the listener the moment shutdown starts: the
                // port frees for rebinding while existing connections
                // keep draining.
                progress |= self.listener.take().is_some();
            } else {
                progress |= self.accept_new();
            }
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                progress |= self.service_conn(token);
            }
            progress |= self.cull();
            if self.stopping() {
                self.maybe_signal_drained();
                if self.conns.is_empty() {
                    return;
                }
            }
            if progress {
                spins = 0;
                continue;
            }
            spins += 1;
            if spins <= SPIN_SWEEPS {
                std::thread::yield_now();
                continue;
            }
            if self.wake.wait_nonempty(POLL_INTERVAL) {
                self.counters.wakeups.fetch_add(1, Ordering::Relaxed);
                spins = 0;
            }
        }
    }

    /// Shutdown observed, via the handle's flag or a `shutdown` frame.
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || !self.handler.is_accepting()
    }

    fn apply(&mut self, event: Wake) {
        match event {
            Wake::Complete { token, seq, line } => {
                self.pending_jobs = self.pending_jobs.saturating_sub(1);
                match self.conns.get_mut(&token) {
                    Some(conn) if !conn.dead => conn.fill_slot(seq, line),
                    _ => {
                        self.counters
                            .discarded_completions
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Wake::Poke => {}
        }
    }

    fn accept_new(&mut self) -> bool {
        let mut progress = false;
        loop {
            let Some(listener) = &self.listener else {
                return progress;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // One-line frames must not sit in Nagle's buffer
                    // waiting for a delayed ACK (~40 ms per exchange).
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    self.conns
                        .insert(token, Conn::new(stream, self.config.max_frame));
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                    progress = true;
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => return progress,
                // Transient accept errors (e.g. ECONNABORTED): keep serving.
                Err(_) => return progress,
            }
        }
    }

    /// One sweep over one connection: flush what is ready, read and
    /// frame what arrived, flush inline replies.
    fn service_conn(&mut self, token: u64) -> bool {
        let Some(mut conn) = self.conns.remove(&token) else {
            return false;
        };
        let mut progress = flush(&mut conn, &self.counters);
        if !conn.dead {
            progress |= self.fill_and_frame(&mut conn, token);
            progress |= flush(&mut conn, &self.counters);
        }
        let now_stalled = !conn.dead && self.is_stalled(&conn);
        if now_stalled && !conn.stalled {
            self.counters
                .backpressure_stalls
                .fetch_add(1, Ordering::Relaxed);
        }
        conn.stalled = now_stalled;
        self.conns.insert(token, conn);
        progress
    }

    /// Backpressure predicate: too many buffered response bytes, or too
    /// many unanswered frames.
    fn is_stalled(&self, conn: &Conn) -> bool {
        conn.unflushed() >= self.config.write_high_water
            || conn.outbox.len() >= self.config.max_outstanding
    }

    /// Reads available bytes and dispatches complete frames, honoring
    /// backpressure between frames and between reads.
    fn fill_and_frame(&mut self, conn: &mut Conn, token: u64) -> bool {
        // Frames a stalled sweep left unprocessed come first.
        let mut progress = self.drain_frames(conn, token);
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if conn.eof || conn.dead || self.is_stalled(conn) {
                break;
            }
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    progress = true;
                }
                Ok(n) => {
                    conn.framer.push(&chunk[..n]);
                    progress = true;
                    self.drain_frames(conn, token);
                    if conn.framer.overflowed() {
                        conn.dead = true;
                        self.counters.resets.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    self.counters.resets.fetch_add(1, Ordering::Relaxed);
                    progress = true;
                }
            }
        }
        progress
    }

    /// Extracts complete lines from the read buffer and hands each to
    /// the service; inline replies fill their slot immediately, admitted
    /// jobs leave it pending for the wake queue.
    fn drain_frames(&mut self, conn: &mut Conn, token: u64) -> bool {
        let before = conn.framer.buffered();
        while !conn.dead && !self.is_stalled(conn) {
            match conn.framer.next_frame() {
                Ok(Some(line)) => {
                    self.counters.frames.fetch_add(1, Ordering::Relaxed);
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.outbox.push_back(None);
                    match Arc::clone(&self.handler).handle_frame(&line, token, seq, &self.sink) {
                        Some(response) => conn.fill_slot(seq, response),
                        None => self.pending_jobs += 1,
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Invalid UTF-8: the old per-connection loop surfaced
                    // it as a read error and closed; keep that behavior.
                    conn.dead = true;
                    self.counters.resets.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        conn.framer.buffered() != before
    }

    /// Retires dead connections and cleanly-closed ones whose responses
    /// have all been flushed.
    fn cull(&mut self) -> bool {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead || (c.eof && c.fully_flushed()))
            .map(|(&t, _)| t)
            .collect();
        for token in &done {
            self.conns.remove(token);
            self.counters
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
        !done.is_empty()
    }

    /// Once stopping with no pending jobs and every response flushed,
    /// tells `wait()` the drain contract is met. Lingering connections
    /// keep being served (control frames, refusals) until they close.
    fn maybe_signal_drained(&mut self) {
        if self.drained_tx.is_none() {
            return;
        }
        if self.pending_jobs == 0 && self.conns.values().all(Conn::fully_flushed) {
            if let Some(tx) = self.drained_tx.take() {
                let _ = tx.send(());
            }
        }
    }
}

/// Moves the outbox's ready prefix into the write buffer and writes as
/// much as the socket accepts.
fn flush(conn: &mut Conn, counters: &ReactorCounters) -> bool {
    if conn.dead {
        return false;
    }
    let mut progress = false;
    while matches!(conn.outbox.front(), Some(Some(_))) {
        let bytes = conn
            .outbox
            .pop_front()
            .expect("front checked")
            .expect("slot checked");
        conn.base_seq += 1;
        conn.write_buf.extend_from_slice(&bytes);
        progress = true;
    }
    counters
        .write_buffer_peak
        .fetch_max(conn.unflushed() as u64, Ordering::Relaxed);
    while conn.write_pos < conn.write_buf.len() {
        match (&conn.stream).write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
                counters.resets.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Ok(n) => {
                conn.write_pos += n;
                progress = true;
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                counters.resets.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    if conn.write_pos == conn.write_buf.len() && conn.write_pos > 0 {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
    progress
}
