//! Incremental newline framing.
//!
//! One [`LineFramer`] per connection turns an arbitrary byte stream into
//! newline-delimited frames with the exact semantics the reactor's old
//! inline framing had (and which `tests/golden_socket.rs` byte-pins):
//!
//! * bytes accumulate until a `\n` completes a frame;
//! * one trailing `\r` is stripped (CRLF tolerance);
//! * whitespace-only lines are skipped without becoming frames;
//! * invalid UTF-8 in a completed line is a fatal framing error;
//! * a partial frame growing past the cap is reported via
//!   [`LineFramer::overflowed`] so the caller can drop the connection
//!   instead of buffering without bound.
//!
//! Shared by the reactor ([`crate::reactor`]) and by the distributed
//! node transport (`asm-distributed`), so both ends of every socket in
//! the workspace frame bytes identically.

use std::fmt;

/// Fatal framing failure: the connection cannot be trusted past it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramingError {
    /// A completed line held invalid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for FramingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FramingError::InvalidUtf8 => write!(f, "frame holds invalid UTF-8"),
        }
    }
}

impl std::error::Error for FramingError {}

/// Incremental newline-delimited frame extractor.
///
/// # Examples
///
/// ```
/// use asm_service::framing::LineFramer;
///
/// let mut framer = LineFramer::new(1024);
/// framer.push(b"{\"op\":\"health\"}\r\n  \npart");
/// assert_eq!(framer.next_frame().unwrap().as_deref(), Some("{\"op\":\"health\"}"));
/// assert_eq!(framer.next_frame().unwrap(), None, "blank line skipped, partial retained");
/// framer.push(b"ial\n");
/// assert_eq!(framer.next_frame().unwrap().as_deref(), Some("partial"));
/// ```
#[derive(Debug, Default)]
pub struct LineFramer {
    buf: Vec<u8>,
    max_frame: usize,
}

impl LineFramer {
    /// Creates a framer that flags partial frames larger than
    /// `max_frame` bytes via [`LineFramer::overflowed`].
    pub fn new(max_frame: usize) -> Self {
        LineFramer {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame, skipping whitespace-only lines.
    /// Returns `Ok(None)` when no complete line remains buffered.
    ///
    /// # Errors
    ///
    /// [`FramingError::InvalidUtf8`] if a completed line is not UTF-8;
    /// the line is consumed, but the caller should drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<String>, FramingError> {
        loop {
            let Some(newline) = self.buf.iter().position(|&b| b == b'\n') else {
                return Ok(None);
            };
            let frame: Vec<u8> = self.buf.drain(..=newline).collect();
            let mut end = frame.len() - 1;
            if end > 0 && frame[end - 1] == b'\r' {
                end -= 1;
            }
            let Ok(line) = std::str::from_utf8(&frame[..end]) else {
                return Err(FramingError::InvalidUtf8);
            };
            if line.trim().is_empty() {
                continue;
            }
            return Ok(Some(line.to_string()));
        }
    }

    /// Whether the buffered partial frame exceeds the cap (checked by
    /// callers after draining, so completed frames never trip it).
    pub fn overflowed(&self) -> bool {
        self.buf.len() > self.max_frame
    }

    /// Bytes buffered but not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_coalesced_frames() {
        let mut f = LineFramer::new(64);
        f.push(b"one\ntwo\nthr");
        assert_eq!(f.next_frame().unwrap().as_deref(), Some("one"));
        assert_eq!(f.next_frame().unwrap().as_deref(), Some("two"));
        assert_eq!(f.next_frame().unwrap(), None);
        assert_eq!(f.buffered(), 3);
        f.push(b"ee\n");
        assert_eq!(f.next_frame().unwrap().as_deref(), Some("three"));
    }

    #[test]
    fn strips_one_trailing_cr() {
        let mut f = LineFramer::new(64);
        f.push(b"line\r\n\r\r\n");
        assert_eq!(f.next_frame().unwrap().as_deref(), Some("line"));
        // "\r\r\n" strips to "\r", which trims to empty and is skipped.
        assert_eq!(f.next_frame().unwrap(), None);
    }

    #[test]
    fn blank_lines_are_skipped_not_framed() {
        let mut f = LineFramer::new(64);
        f.push(b"\n   \n\t\npayload\n");
        assert_eq!(f.next_frame().unwrap().as_deref(), Some("payload"));
        assert_eq!(f.next_frame().unwrap(), None);
    }

    #[test]
    fn invalid_utf8_is_fatal() {
        let mut f = LineFramer::new(64);
        f.push(b"ok\n\xff\xfe\nafter\n");
        assert_eq!(f.next_frame().unwrap().as_deref(), Some("ok"));
        assert_eq!(f.next_frame(), Err(FramingError::InvalidUtf8));
    }

    #[test]
    fn overflow_flags_only_partial_frames() {
        let mut f = LineFramer::new(8);
        f.push(b"0123456789abcdef\n");
        assert!(f.overflowed(), "undelimited bytes past the cap");
        assert_eq!(f.next_frame().unwrap().as_deref(), Some("0123456789abcdef"));
        assert!(!f.overflowed(), "drained frames never trip the cap");
    }
}
