//! Lock-free service observability: atomic counters and a log₂-bucket
//! latency histogram, snapshotted on demand as schema-versioned JSON.
//!
//! Everything here is plain `AtomicU64` with relaxed ordering — counters
//! are statistical, not synchronization points. A [`MetricsSnapshot`] is
//! therefore a *consistent-enough* view: individual counters are exact,
//! but counters read microseconds apart may straddle a request.
//!
//! Quantiles are reported as the **upper bound of the log₂ bucket**
//! containing the quantile — a deliberate trade: zero allocation on the
//! hot path, bounded error (at most 2×), and no t-digest dependency.
//!
//! ## Per-shard counters
//!
//! A sharded service additionally keeps one [`ShardCounters`] per shard.
//! Every shard-routed outcome is counted in *both* books at the same
//! call site, so each [`ShardSnapshot`] counter sums exactly to the
//! aggregate across shards (`queue_peak` is a per-shard high-water mark,
//! so the aggregate peak is the *max* of the shard peaks, not the sum).
//! The `shards` array is omitted from the snapshot JSON when the service
//! runs a single shard, which keeps the `shards = 1` wire format
//! byte-identical to the pre-sharding protocol.

use serde::{content_get, Content, Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema version of [`MetricsSnapshot`]. Bump when fields change shape.
pub const METRICS_SCHEMA: u64 = 1;

/// Number of log₂ latency buckets: bucket `i` holds samples in
/// `[2^i, 2^{i+1})` microseconds, except bucket 0 (`[0, 2)`) and the last
/// bucket, which absorbs everything ≥ `2^39` µs (~6 days — effectively ∞).
const LATENCY_BUCKETS: usize = 40;

/// The service's live counters. One instance is shared by every
/// connection thread and worker; all methods take `&self`.
#[derive(Debug)]
pub struct Metrics {
    /// Frames received (any outcome, including malformed).
    pub received: AtomicU64,
    /// Frames that failed to parse as a request.
    pub malformed: AtomicU64,
    /// `solve` requests answered `solved`.
    pub solved: AtomicU64,
    /// `analyze` requests answered `analyzed`.
    pub analyzed: AtomicU64,
    /// `health` requests answered.
    pub health: AtomicU64,
    /// `metrics` requests answered.
    pub metrics: AtomicU64,
    /// `shutdown` requests answered.
    pub shutdown: AtomicU64,
    /// Jobs refused by admission control (`overloaded`).
    pub overloaded: AtomicU64,
    /// Jobs expired while queued (`deadline_exceeded`).
    pub deadline_exceeded: AtomicU64,
    /// `error` replies (invalid params, solver failure, unavailable).
    pub errors: AtomicU64,
    /// Solve jobs answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Solve jobs that had to run the engine.
    pub cache_misses: AtomicU64,
    /// High-water mark of the job queue depth.
    pub queue_peak: AtomicU64,
    /// Total communication rounds across all solved jobs.
    pub rounds_total: AtomicU64,
    /// Total protocol messages across all solved jobs.
    pub messages_total: AtomicU64,
    /// Total blocking pairs across all solved jobs.
    pub blocking_pairs_total: AtomicU64,
    /// Total matched pairs across all solved jobs.
    pub matched_total: AtomicU64,
    /// `market_created` replies. Market counters are aggregate-only: a
    /// market's ops all route to one shard by id hash, so per-shard
    /// market books would merely partition by market id; the aggregate
    /// is what `loadgen --churn` reconciles.
    pub markets_created: AtomicU64,
    /// `market_dropped` replies.
    pub markets_dropped: AtomicU64,
    /// Mutation ops applied across all `market_mutated` replies.
    pub market_mutations: AtomicU64,
    /// `resolved` replies that ran the warm path.
    pub warm_resolves: AtomicU64,
    /// `resolved` replies that ran cold.
    pub cold_resolves: AtomicU64,
    /// Cold resolves that were warm-eligible but fell back (dirty
    /// fraction over the limit, or the divergence safety net).
    pub market_fallbacks: AtomicU64,
    /// Σ propose-accept rounds over warm resolves.
    pub warm_rounds_total: AtomicU64,
    /// Σ propose-accept rounds over cold resolves.
    pub cold_rounds_total: AtomicU64,
    /// Enqueue→reply latency histogram (µs, log₂ buckets).
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            received: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            analyzed: AtomicU64::new(0),
            health: AtomicU64::new(0),
            metrics: AtomicU64::new(0),
            shutdown: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            rounds_total: AtomicU64::new(0),
            messages_total: AtomicU64::new(0),
            blocking_pairs_total: AtomicU64::new(0),
            matched_total: AtomicU64::new(0),
            markets_created: AtomicU64::new(0),
            markets_dropped: AtomicU64::new(0),
            market_mutations: AtomicU64::new(0),
            warm_resolves: AtomicU64::new(0),
            cold_resolves: AtomicU64::new(0),
            market_fallbacks: AtomicU64::new(0),
            warm_rounds_total: AtomicU64::new(0),
            cold_rounds_total: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Bumps a counter by one.
    pub fn incr(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to a counter.
    pub fn add(&self, counter: &AtomicU64, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the queue high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one completed job's enqueue→reply latency.
    pub fn observe_latency_us(&self, micros: u64) {
        let bucket = latency_bucket(micros);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot. The `shards` array starts empty;
    /// a sharded service appends its [`ShardSnapshot`]s before replying.
    pub fn snapshot(&self, queue_depth: u64, cache_entries: u64) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.latency.iter().map(load).collect();
        let hits = load(&self.cache_hits);
        let misses = load(&self.cache_misses);
        let lookups = hits + misses;
        MetricsSnapshot {
            schema: METRICS_SCHEMA,
            received: load(&self.received),
            malformed: load(&self.malformed),
            solved: load(&self.solved),
            analyzed: load(&self.analyzed),
            health: load(&self.health),
            metrics: load(&self.metrics),
            shutdown: load(&self.shutdown),
            overloaded: load(&self.overloaded),
            deadline_exceeded: load(&self.deadline_exceeded),
            errors: load(&self.errors),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            cache_entries,
            queue_depth,
            queue_peak: load(&self.queue_peak),
            rounds_total: load(&self.rounds_total),
            messages_total: load(&self.messages_total),
            blocking_pairs_total: load(&self.blocking_pairs_total),
            matched_total: load(&self.matched_total),
            latency_p50_us: bucket_quantile(&buckets, 0.50),
            latency_p95_us: bucket_quantile(&buckets, 0.95),
            latency_p99_us: bucket_quantile(&buckets, 0.99),
            shards: Vec::new(),
            market: None,
            backends: Vec::new(),
            router: None,
        }
    }

    /// The market tier's slice of the books, or `None` when no market
    /// activity has ever occurred — which keeps market-free snapshots
    /// byte-identical to the pre-market wire format the golden corpus
    /// pins. `markets_open` is a point-in-time gauge the caller reads
    /// from its registries.
    pub fn market_snapshot(&self, markets_open: u64) -> Option<MarketSnapshot> {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let snap = MarketSnapshot {
            markets_open,
            markets_created: load(&self.markets_created),
            markets_dropped: load(&self.markets_dropped),
            mutations: load(&self.market_mutations),
            warm_resolves: load(&self.warm_resolves),
            cold_resolves: load(&self.cold_resolves),
            fallbacks: load(&self.market_fallbacks),
            warm_rounds_total: load(&self.warm_rounds_total),
            cold_rounds_total: load(&self.cold_rounds_total),
        };
        let active = markets_open > 0
            || snap.markets_created
                + snap.markets_dropped
                + snap.mutations
                + snap.warm_resolves
                + snap.cold_resolves
                > 0;
        active.then_some(snap)
    }
}

/// Reactor-internal observability: connection and wakeup counters kept
/// **outside** [`MetricsSnapshot`] on purpose — the snapshot's JSON is
/// pinned byte-for-byte by the golden corpus, and reactor internals are
/// an implementation detail of the TCP layer, not the wire protocol.
/// Exposed via `ServerHandle::reactor_counters` for tests and embedding.
#[derive(Debug, Default)]
pub struct ReactorCounters {
    /// Connections currently open (gauge: incremented on accept,
    /// decremented when the reactor retires the connection).
    pub open_connections: AtomicU64,
    /// Connections accepted since start.
    pub accepted: AtomicU64,
    /// Complete frames the reactor extracted from read buffers.
    pub frames: AtomicU64,
    /// Idle waits that ended because the wake queue was poked (a worker
    /// completion or a shutdown request) rather than by timeout.
    pub wakeups: AtomicU64,
    /// Worker completions delivered back to the reactor.
    pub completions: AtomicU64,
    /// Completions whose connection was already gone when they arrived
    /// (the outcome was still counted in [`Metrics`] by the worker, so
    /// the books reconcile; only the response line is dropped).
    pub discarded_completions: AtomicU64,
    /// Transitions into the stalled state: the reactor stopped reading a
    /// connection because its write buffer or outstanding-reply window
    /// was full (backpressure, never unbounded buffering).
    pub backpressure_stalls: AtomicU64,
    /// High-water mark of any single connection's unflushed write buffer,
    /// in bytes.
    pub write_buffer_peak: AtomicU64,
    /// Connections dropped on a socket error (reset, broken pipe, or a
    /// frame that was not valid UTF-8 / overflowed the frame cap).
    pub resets: AtomicU64,
}

impl ReactorCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ReactorCounters::default()
    }

    /// Loads a counter (relaxed; counters are statistical).
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Per-shard outcome counters. Incremented at the same call sites as the
/// aggregate [`Metrics`], so shard counters sum exactly to the totals.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// `solved` replies routed to this shard.
    pub solved: AtomicU64,
    /// `analyzed` replies routed to this shard.
    pub analyzed: AtomicU64,
    /// Jobs this shard's queue refused (`overloaded`).
    pub overloaded: AtomicU64,
    /// Jobs that expired in this shard's queue.
    pub deadline_exceeded: AtomicU64,
    /// Hits in this shard's result cache.
    pub cache_hits: AtomicU64,
    /// Misses in this shard's result cache.
    pub cache_misses: AtomicU64,
    /// High-water mark of this shard's queue depth.
    pub queue_peak: AtomicU64,
    /// Σ rounds over this shard's solved jobs.
    pub rounds_total: AtomicU64,
    /// Σ messages over this shard's solved jobs.
    pub messages_total: AtomicU64,
    /// Σ blocking pairs over this shard's solved jobs.
    pub blocking_pairs_total: AtomicU64,
    /// Σ matched pairs over this shard's solved jobs.
    pub matched_total: AtomicU64,
}

impl ShardCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ShardCounters::default()
    }

    /// Takes this shard's point-in-time snapshot.
    pub fn snapshot(&self, shard: u64, queue_depth: u64, cache_entries: u64) -> ShardSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ShardSnapshot {
            shard,
            solved: load(&self.solved),
            analyzed: load(&self.analyzed),
            overloaded: load(&self.overloaded),
            deadline_exceeded: load(&self.deadline_exceeded),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            cache_entries,
            queue_depth,
            queue_peak: load(&self.queue_peak),
            rounds_total: load(&self.rounds_total),
            messages_total: load(&self.messages_total),
            blocking_pairs_total: load(&self.blocking_pairs_total),
            matched_total: load(&self.matched_total),
        }
    }
}

/// One shard's slice of the books, embedded in [`MetricsSnapshot`] when
/// the service runs more than one shard. Counter fields sum exactly to
/// the aggregate snapshot; `queue_peak` aggregates by max, and
/// `cache_entries`/`queue_depth` are point-in-time gauges that sum.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index (0-based).
    pub shard: u64,
    /// `solved` replies routed here.
    pub solved: u64,
    /// `analyzed` replies routed here.
    pub analyzed: u64,
    /// `overloaded` refusals from this shard's queue.
    pub overloaded: u64,
    /// Deadline expiries in this shard's queue.
    pub deadline_exceeded: u64,
    /// This shard's result-cache hits.
    pub cache_hits: u64,
    /// This shard's result-cache misses.
    pub cache_misses: u64,
    /// Entries currently in this shard's cache.
    pub cache_entries: u64,
    /// Jobs currently in this shard's queue.
    pub queue_depth: u64,
    /// This shard's queue-depth high-water mark.
    pub queue_peak: u64,
    /// Σ rounds over this shard's solved jobs.
    pub rounds_total: u64,
    /// Σ messages over this shard's solved jobs.
    pub messages_total: u64,
    /// Σ blocking pairs over this shard's solved jobs.
    pub blocking_pairs_total: u64,
    /// Σ matched pairs over this shard's solved jobs.
    pub matched_total: u64,
}

/// The market tier's slice of the books, embedded in [`MetricsSnapshot`]
/// once any market activity has occurred (and omitted before that, so
/// market-free deployments keep their exact wire bytes). Counters are
/// aggregate-only: one market's ops all land on one shard, so per-shard
/// market columns would partition by market id rather than by load.
///
/// The warm-start contract reconciles here: every `resolved` reply is
/// counted in exactly one of `warm_resolves`/`cold_resolves`, so
/// `warm_resolves + cold_resolves` equals the resolves a client sent,
/// and `mutations` equals the mutation ops it had applied.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MarketSnapshot {
    /// Markets currently registered (point-in-time gauge).
    pub markets_open: u64,
    /// `market_created` replies.
    pub markets_created: u64,
    /// `market_dropped` replies.
    pub markets_dropped: u64,
    /// Mutation ops applied across all `market_mutated` replies.
    pub mutations: u64,
    /// `resolved` replies that ran the warm path.
    pub warm_resolves: u64,
    /// `resolved` replies that ran cold.
    pub cold_resolves: u64,
    /// Cold resolves that were warm-eligible but fell back (dirty
    /// fraction over [`WARM_DIRTY_LIMIT`](asm_market::WARM_DIRTY_LIMIT),
    /// or the divergence safety net).
    pub fallbacks: u64,
    /// Σ propose-accept rounds over warm resolves.
    pub warm_rounds_total: u64,
    /// Σ propose-accept rounds over cold resolves.
    pub cold_rounds_total: u64,
}

/// One backend's slice of the router tier's merged books, embedded in
/// [`MetricsSnapshot`] when the snapshot was produced by `asm route`.
/// Counter fields are the backend's own aggregates at merge time; a
/// backend that was down (or failed the fetch) reports all-zero counters
/// with its `state`, so the array always has one entry per configured
/// backend, in hash-slice order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackendSnapshot {
    /// Backend index (0-based, the `instance_hash % backends` slice).
    pub backend: u64,
    /// Probe state at merge time: `"up"`, `"suspect"`, or `"down"`.
    pub state: String,
    /// Frames this backend has received.
    pub received: u64,
    /// `solved` replies this backend produced.
    pub solved: u64,
    /// `analyzed` replies this backend produced.
    pub analyzed: u64,
    /// `overloaded` refusals from this backend's queues.
    pub overloaded: u64,
    /// Deadline expiries in this backend's queues.
    pub deadline_exceeded: u64,
    /// `error` replies this backend produced.
    pub errors: u64,
    /// This backend's result-cache hits.
    pub cache_hits: u64,
    /// This backend's result-cache misses.
    pub cache_misses: u64,
    /// Entries currently in this backend's caches.
    pub cache_entries: u64,
    /// Jobs currently in this backend's queues.
    pub queue_depth: u64,
    /// This backend's queue-depth high-water mark.
    pub queue_peak: u64,
    /// Σ rounds over this backend's solved jobs.
    pub rounds_total: u64,
    /// Σ messages over this backend's solved jobs.
    pub messages_total: u64,
    /// Σ blocking pairs over this backend's solved jobs.
    pub blocking_pairs_total: u64,
    /// Σ matched pairs over this backend's solved jobs.
    pub matched_total: u64,
}

/// The router tier's own counters, embedded in [`MetricsSnapshot`] when
/// the snapshot was produced by `asm route`. These count router-origin
/// outcomes (which the merged aggregates also fold in, so the books
/// still balance against client tallies) plus routing/probe activity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouterSnapshot {
    /// Frames the router itself received from clients.
    pub received: u64,
    /// Frames the router failed to parse.
    pub malformed: u64,
    /// Successful forwarded exchanges (a batch counts one per
    /// per-backend sub-batch).
    pub routed: u64,
    /// Exchanges retried once on a fresh connection after a pooled
    /// backend connection died mid-request.
    pub retried: u64,
    /// Requests ultimately served by a non-primary backend because their
    /// hash slice's backend was down or failing.
    pub failovers: u64,
    /// Requests shed by the router (`overloaded` with reason `router`):
    /// every candidate backend down, or the forward queue full.
    pub sheds: u64,
    /// Router-origin `error` replies (malformed lines, unavailable
    /// refusals after shutdown).
    pub errors: u64,
    /// Health probes sent.
    pub probes: u64,
    /// Health probes that failed or timed out.
    pub probe_failures: u64,
    /// up → suspect transitions.
    pub to_suspect: u64,
    /// suspect → down transitions.
    pub to_down: u64,
    /// Transitions back to up from suspect or down.
    pub recoveries: u64,
}

/// The bucket index for a latency sample.
fn latency_bucket(micros: u64) -> usize {
    // 0..=1 µs → bucket 0; otherwise floor(log2) capped at the last bucket.
    let bits = 64 - micros.max(1).leading_zeros() as usize;
    (bits - 1).min(LATENCY_BUCKETS - 1)
}

/// The quantile as the upper bound (exclusive) of its bucket, in µs.
/// Returns 0 when no samples have been recorded.
fn bucket_quantile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    // Rank of the q-th sample, 1-based, clamped into [1, total].
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << (i + 1).min(63);
        }
    }
    1u64 << 63
}

/// A point-in-time JSON view of [`Metrics`], returned by the `metrics`
/// request. Schema-versioned: consumers should check `schema` first.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// [`METRICS_SCHEMA`].
    pub schema: u64,
    /// Frames received (any outcome).
    pub received: u64,
    /// Unparseable frames.
    pub malformed: u64,
    /// `solved` replies.
    pub solved: u64,
    /// `analyzed` replies.
    pub analyzed: u64,
    /// `health` replies.
    pub health: u64,
    /// `metrics` replies.
    pub metrics: u64,
    /// `shutting_down` replies.
    pub shutdown: u64,
    /// `overloaded` replies.
    pub overloaded: u64,
    /// `deadline_exceeded` replies.
    pub deadline_exceeded: u64,
    /// `error` replies.
    pub errors: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when no lookups.
    pub cache_hit_rate: f64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Jobs queued at snapshot time.
    pub queue_depth: u64,
    /// Queue-depth high-water mark.
    pub queue_peak: u64,
    /// Σ rounds over solved jobs.
    pub rounds_total: u64,
    /// Σ messages over solved jobs.
    pub messages_total: u64,
    /// Σ blocking pairs over solved jobs.
    pub blocking_pairs_total: u64,
    /// Σ matched pairs over solved jobs.
    pub matched_total: u64,
    /// p50 enqueue→reply latency (log₂-bucket upper bound, µs).
    pub latency_p50_us: u64,
    /// p95 enqueue→reply latency (log₂-bucket upper bound, µs).
    pub latency_p95_us: u64,
    /// p99 enqueue→reply latency (log₂-bucket upper bound, µs).
    pub latency_p99_us: u64,
    /// Per-shard books; empty (and omitted from the JSON) when the
    /// service runs a single shard.
    pub shards: Vec<ShardSnapshot>,
    /// Market-tier books; present once any market activity has occurred
    /// (omitted otherwise, keeping market-free snapshots byte-stable).
    pub market: Option<MarketSnapshot>,
    /// Per-backend books; present only in snapshots merged by the
    /// router tier (empty and omitted otherwise).
    pub backends: Vec<BackendSnapshot>,
    /// Router-local counters; present only in snapshots merged by the
    /// router tier (omitted otherwise).
    pub router: Option<RouterSnapshot>,
}

/// Field order of the flat `u64` counters, shared by both hand-written
/// impls below (hand-written so `shards` can be omitted when empty — the
/// vendored serde derive has no `default`/`skip_serializing_if`, and the
/// single-shard wire format must stay byte-identical to schema 1 without
/// shards).
macro_rules! snapshot_u64_fields {
    ($macro:ident) => {
        $macro!(
            received,
            malformed,
            solved,
            analyzed,
            health,
            metrics,
            shutdown,
            overloaded,
            deadline_exceeded,
            errors,
            cache_hits,
            cache_misses
        );
    };
}

macro_rules! snapshot_tail_u64_fields {
    ($macro:ident) => {
        $macro!(
            cache_entries,
            queue_depth,
            queue_peak,
            rounds_total,
            messages_total,
            blocking_pairs_total,
            matched_total,
            latency_p50_us,
            latency_p95_us,
            latency_p99_us
        );
    };
}

impl Serialize for MetricsSnapshot {
    fn to_content(&self) -> Content {
        let mut m: Vec<(String, Content)> = vec![("schema".to_string(), self.schema.to_content())];
        macro_rules! push {
            ($($field:ident),*) => {
                $(m.push((stringify!($field).to_string(), self.$field.to_content()));)*
            };
        }
        snapshot_u64_fields!(push);
        m.push((
            "cache_hit_rate".to_string(),
            self.cache_hit_rate.to_content(),
        ));
        snapshot_tail_u64_fields!(push);
        if !self.shards.is_empty() {
            m.push(("shards".to_string(), self.shards.to_content()));
        }
        if let Some(market) = &self.market {
            m.push(("market".to_string(), market.to_content()));
        }
        if !self.backends.is_empty() {
            m.push(("backends".to_string(), self.backends.to_content()));
        }
        if let Some(router) = &self.router {
            m.push(("router".to_string(), router.to_content()));
        }
        Content::Map(m)
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for MetricsSnapshot"))?;
        let field = |name: &str| {
            content_get(map, name).ok_or_else(|| {
                serde::Error::custom(format!("missing field `{name}` in MetricsSnapshot"))
            })
        };
        macro_rules! get {
            ($field:ident) => {
                u64::from_content(field(stringify!($field))?)?
            };
        }
        Ok(MetricsSnapshot {
            schema: get!(schema),
            received: get!(received),
            malformed: get!(malformed),
            solved: get!(solved),
            analyzed: get!(analyzed),
            health: get!(health),
            metrics: get!(metrics),
            shutdown: get!(shutdown),
            overloaded: get!(overloaded),
            deadline_exceeded: get!(deadline_exceeded),
            errors: get!(errors),
            cache_hits: get!(cache_hits),
            cache_misses: get!(cache_misses),
            cache_hit_rate: f64::from_content(field("cache_hit_rate")?)?,
            cache_entries: get!(cache_entries),
            queue_depth: get!(queue_depth),
            queue_peak: get!(queue_peak),
            rounds_total: get!(rounds_total),
            messages_total: get!(messages_total),
            blocking_pairs_total: get!(blocking_pairs_total),
            matched_total: get!(matched_total),
            latency_p50_us: get!(latency_p50_us),
            latency_p95_us: get!(latency_p95_us),
            latency_p99_us: get!(latency_p99_us),
            shards: match content_get(map, "shards") {
                Some(c) => Vec::<ShardSnapshot>::from_content(c)?,
                None => Vec::new(),
            },
            market: match content_get(map, "market") {
                Some(c) => Some(MarketSnapshot::from_content(c)?),
                None => None,
            },
            backends: match content_get(map, "backends") {
                Some(c) => Vec::<BackendSnapshot>::from_content(c)?,
                None => Vec::new(),
            },
            router: match content_get(map, "router") {
                Some(c) => Some(RouterSnapshot::from_content(c)?),
                None => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_snapshot_is_all_zero() {
        let m = Metrics::new();
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.schema, METRICS_SCHEMA);
        assert_eq!(snap.received, 0);
        assert_eq!(snap.latency_p99_us, 0);
        assert_eq!(snap.cache_hit_rate, 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::new();
        m.incr(&m.received);
        m.incr(&m.solved);
        m.add(&m.rounds_total, 17);
        m.observe_latency_us(900);
        let snap = m.snapshot(2, 1);
        let line = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn shards_array_is_omitted_when_empty_and_round_trips_otherwise() {
        let m = Metrics::new();
        let plain = m.snapshot(0, 0);
        let line = serde_json::to_string(&plain).unwrap();
        assert!(!line.contains("shards"), "{line}");
        let back: MetricsSnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, plain);

        let counters = ShardCounters::new();
        counters.solved.store(3, Ordering::Relaxed);
        counters.queue_peak.store(2, Ordering::Relaxed);
        let mut sharded = m.snapshot(0, 0);
        sharded.shards = vec![
            counters.snapshot(0, 1, 4),
            ShardCounters::new().snapshot(1, 0, 0),
        ];
        let line = serde_json::to_string(&sharded).unwrap();
        assert!(
            line.contains("\"shards\":[{\"shard\":0,\"solved\":3"),
            "{line}"
        );
        let back: MetricsSnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, sharded);
        assert_eq!(back.shards[0].cache_entries, 4);
        assert_eq!(back.shards[1].shard, 1);
    }

    #[test]
    fn market_block_appears_only_after_market_activity_and_round_trips() {
        let m = Metrics::new();
        assert_eq!(m.market_snapshot(0), None);
        let plain = m.snapshot(0, 0);
        let line = serde_json::to_string(&plain).unwrap();
        assert!(!line.contains("market"), "{line}");

        m.incr(&m.markets_created);
        m.incr(&m.warm_resolves);
        m.add(&m.warm_rounds_total, 3);
        m.add(&m.market_mutations, 2);
        let mut active = m.snapshot(0, 0);
        active.market = m.market_snapshot(1);
        let line = serde_json::to_string(&active).unwrap();
        assert!(
            line.contains("\"market\":{\"markets_open\":1,\"markets_created\":1"),
            "{line}"
        );
        let back: MetricsSnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, active);
        assert_eq!(back.market.unwrap().warm_rounds_total, 3);

        // An open market keeps the gauge visible even with zero counters.
        assert_eq!(Metrics::new().market_snapshot(2).unwrap().markets_open, 2);
    }

    #[test]
    fn backends_and_router_are_omitted_when_absent_and_round_trip() {
        let m = Metrics::new();
        let plain = m.snapshot(0, 0);
        let line = serde_json::to_string(&plain).unwrap();
        assert!(!line.contains("backends"), "{line}");
        assert!(!line.contains("router"), "{line}");

        let mut merged = m.snapshot(0, 0);
        merged.backends = vec![BackendSnapshot {
            backend: 0,
            state: "up".to_string(),
            received: 9,
            solved: 5,
            analyzed: 1,
            overloaded: 0,
            deadline_exceeded: 0,
            errors: 0,
            cache_hits: 2,
            cache_misses: 3,
            cache_entries: 3,
            queue_depth: 0,
            queue_peak: 2,
            rounds_total: 40,
            messages_total: 200,
            blocking_pairs_total: 1,
            matched_total: 20,
        }];
        merged.router = Some(RouterSnapshot {
            received: 9,
            malformed: 0,
            routed: 9,
            retried: 1,
            failovers: 2,
            sheds: 0,
            errors: 0,
            probes: 12,
            probe_failures: 3,
            to_suspect: 1,
            to_down: 1,
            recoveries: 1,
        });
        let line = serde_json::to_string(&merged).unwrap();
        assert!(
            line.contains("\"backends\":[{\"backend\":0,\"state\":\"up\""),
            "{line}"
        );
        assert!(line.contains("\"router\":{\"received\":9"), "{line}");
        let back: MetricsSnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1023), 9);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let m = Metrics::new();
        // 90 samples in [2,4), 10 samples in [1024,2048).
        for _ in 0..90 {
            m.observe_latency_us(3);
        }
        for _ in 0..10 {
            m.observe_latency_us(1500);
        }
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.latency_p50_us, 4);
        assert_eq!(snap.latency_p95_us, 2048);
        assert_eq!(snap.latency_p99_us, 2048);
    }

    #[test]
    fn queue_peak_is_monotone() {
        let m = Metrics::new();
        m.observe_queue_depth(3);
        m.observe_queue_depth(1);
        m.observe_queue_depth(7);
        m.observe_queue_depth(2);
        assert_eq!(m.snapshot(0, 0).queue_peak, 7);
    }

    #[test]
    fn cache_hit_rate_counts_lookups() {
        let m = Metrics::new();
        m.incr(&m.cache_hits);
        m.incr(&m.cache_hits);
        m.incr(&m.cache_misses);
        let snap = m.snapshot(0, 0);
        assert!((snap.cache_hit_rate - 2.0 / 3.0).abs() < 1e-12);
    }
}
