//! The router tier: one listening socket fanning the line protocol out
//! to many `asm-service` backends by instance hash.
//!
//! The router is a [`FrameHandler`] served by the same reactor as the
//! service itself, so framing, per-connection outbox ordering,
//! backpressure, and graceful drain are shared machinery, not copies.
//! What the router adds is *routing*: each `solve`/`analyze` is
//! forwarded to the backend at `instance_hash % backends` — the same
//! hash and modulus rule the service uses for its in-process shards, so
//! a given instance always lands on the same backend and its result
//! cache stays warm. `solve_batch` items fan out per backend and merge
//! back in request order, exactly like the per-shard batch path.
//!
//! ## Byte identity
//!
//! For `solve`, `analyze`, and any batch that routes to a single
//! backend, the router forwards the client's *raw bytes* and relays the
//! backend's reply *verbatim* — it parses requests only to route them.
//! With one backend, every data-path response is therefore
//! byte-identical to hitting that backend directly (pinned by the
//! router golden cases and a differential test).
//!
//! ## Failover and shedding
//!
//! Liveness comes from periodic `health` probes plus request-path
//! errors, driving each backend's up → suspect → down state machine
//! (see [`crate::backend`]). A down backend's hash slice re-routes
//! deterministically to the next live backend in ring order. When every
//! candidate is down or failing, the router sheds: an `overloaded`
//! reply with `reason: "router"` so clients can tell a router shed from
//! a backend queue refusal.
//!
//! ## Merged observability
//!
//! `health` sums worker and queue figures across reachable backends.
//! `metrics` merges the whole fleet: counters add, `queue_peak` and the
//! latency quantiles max, the cache hit rate is recomputed from the
//! summed hits/misses, and the reply carries a per-backend `backends`
//! array plus a `router` block of router-local counters. Router-origin
//! outcomes (sheds, malformed frames, unavailable refusals) are folded
//! into the merged aggregates so the books still balance against client
//! tallies.

use crate::backend::{Backend, BackendState, Transition};
use crate::cache::instance_hash;
use crate::metrics::{
    BackendSnapshot, MarketSnapshot, Metrics, MetricsSnapshot, RouterSnapshot, ShardSnapshot,
};
use crate::protocol::{
    kind, parse_request, parse_response, render, BatchBody, BatchItemResult, BatchResult,
    ErrorInfo, HealthInfo, InstanceSpec, Op, OverloadInfo, Reply, Request, Response, SolveBody,
    PROTOCOL_SCHEMA,
};
use crate::reactor::ReactorConfig;
use crate::server::{spawn_server, ServerHandle};
use crate::service::{CompletionSink, FrameHandler};
use asm_runtime::{label_hash, JobQueue, PushError, WorkerPool};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tunables for a [`Router`].
#[derive(Clone, Debug, PartialEq)]
pub struct RouterConfig {
    /// Backend addresses (`host:port`), in hash-slice order. Must be
    /// non-empty; order is part of the routing function.
    pub backends: Vec<String>,
    /// Forwarder threads performing blocking backend I/O (0 ⇒ clamped
    /// to 1).
    pub forwarders: usize,
    /// Bounded forward-queue capacity; a full queue sheds with an
    /// `overloaded` reply (reason `router`).
    pub queue_capacity: usize,
    /// Health-probe period in milliseconds; `0` disables the prober
    /// (liveness then comes from request-path errors only).
    pub probe_interval_ms: u64,
    /// Per-probe connect/read timeout in milliseconds.
    pub probe_timeout_ms: u64,
    /// Consecutive failures before a backend transitions to `down`.
    pub down_after: u32,
    /// Backend connect timeout in milliseconds.
    pub connect_timeout_ms: u64,
    /// Backend read/write timeout in milliseconds.
    pub read_timeout_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            forwarders: 8,
            queue_capacity: 1024,
            probe_interval_ms: 200,
            probe_timeout_ms: 1000,
            down_after: 3,
            connect_timeout_ms: 1000,
            read_timeout_ms: 30_000,
        }
    }
}

/// Router-local books, snapshotted into [`RouterSnapshot`].
#[derive(Debug, Default)]
struct RouterCounters {
    received: AtomicU64,
    malformed: AtomicU64,
    routed: AtomicU64,
    retried: AtomicU64,
    failovers: AtomicU64,
    sheds: AtomicU64,
    errors: AtomicU64,
    probes: AtomicU64,
    probe_failures: AtomicU64,
    to_suspect: AtomicU64,
    to_down: AtomicU64,
    recoveries: AtomicU64,
}

impl RouterCounters {
    fn incr(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn add(&self, counter: &AtomicU64, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    fn snapshot(&self) -> RouterSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        RouterSnapshot {
            received: load(&self.received),
            malformed: load(&self.malformed),
            routed: load(&self.routed),
            retried: load(&self.retried),
            failovers: load(&self.failovers),
            sheds: load(&self.sheds),
            errors: load(&self.errors),
            probes: load(&self.probes),
            probe_failures: load(&self.probe_failures),
            to_suspect: load(&self.to_suspect),
            to_down: load(&self.to_down),
            recoveries: load(&self.recoveries),
        }
    }
}

/// What a forwarder does with one dequeued job.
enum Work {
    /// Relay the client's raw line to the routed backend verbatim.
    Forward { line: String, hash: u64 },
    /// Fan a batch out per backend and merge in request order; `line`
    /// keeps the raw bytes for the single-backend relay fast path.
    Batch { line: String, items: Vec<SolveBody> },
    /// Merge `health` across backends.
    Health,
    /// Merge `metrics` across backends.
    Metrics,
}

/// One unit on the forward queue.
enum RouterJob {
    /// A client frame to answer through the reactor's completion sink.
    Client {
        token: u64,
        seq: u64,
        sink: Arc<dyn CompletionSink>,
        id: Option<u64>,
        work: Work,
    },
    /// Forward `shutdown` to every live backend (enqueued by the
    /// router's own `shutdown` handling, before the queue closes).
    Broadcast,
}

/// The front tier: accepts the wire protocol and fans it out to many
/// backends. Construct with [`Router::start`]; serve over TCP with
/// [`serve_router`].
pub struct Router {
    backends: Vec<Arc<Backend>>,
    queue: Arc<JobQueue<RouterJob>>,
    pool: Mutex<Option<WorkerPool>>,
    counters: RouterCounters,
    accepting: AtomicBool,
    prober: Mutex<Option<JoinHandle<()>>>,
    prober_stop: Arc<AtomicBool>,
}

impl Router {
    /// Resolves the backends, starts the forwarder pool (and the prober
    /// unless `probe_interval_ms` is 0), and returns the shared handle.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when no backends are configured, or a resolution
    /// error if a backend address names no socket address. Backends do
    /// not have to be *reachable* yet — the state machine handles that.
    pub fn start(config: RouterConfig) -> io::Result<Arc<Router>> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let connect = Duration::from_millis(config.connect_timeout_ms.max(1));
        let read = Duration::from_millis(config.read_timeout_ms.max(1));
        let backends = config
            .backends
            .iter()
            .map(|addr| Backend::new(addr, config.down_after, connect, read).map(Arc::new))
            .collect::<io::Result<Vec<_>>>()?;
        let queue = JobQueue::new(config.queue_capacity.max(1));
        let router = Arc::new(Router {
            backends,
            queue: Arc::clone(&queue),
            pool: Mutex::new(None),
            counters: RouterCounters::default(),
            accepting: AtomicBool::new(true),
            prober: Mutex::new(None),
            prober_stop: Arc::new(AtomicBool::new(false)),
        });
        let weak = Arc::downgrade(&router);
        let pool = WorkerPool::spawn(
            config.forwarders.max(1),
            &queue,
            move |_worker, job: RouterJob| {
                if let Some(router) = weak.upgrade() {
                    router.run_job(job);
                }
            },
        );
        *router.pool.lock().expect("pool lock") = Some(pool);
        if config.probe_interval_ms > 0 {
            let weak = Arc::downgrade(&router);
            let stop = Arc::clone(&router.prober_stop);
            let interval = Duration::from_millis(config.probe_interval_ms);
            let timeout = Duration::from_millis(config.probe_timeout_ms.max(1));
            let handle = thread::spawn(move || prober_loop(weak, stop, interval, timeout));
            *router.prober.lock().expect("prober lock") = Some(handle);
        }
        Ok(router)
    }

    /// The backend a spec routes to: `instance_hash % backends` — the
    /// same function the service applies to its in-process shards.
    pub fn route_index(&self, instance: &InstanceSpec) -> usize {
        (instance_hash(instance) % self.backends.len() as u64) as usize
    }

    /// Current probe states, in backend order (for tests and embedding).
    pub fn backend_states(&self) -> Vec<BackendState> {
        self.backends.iter().map(|b| b.state()).collect()
    }

    /// A point-in-time view of the router-local counters.
    pub fn router_snapshot(&self) -> RouterSnapshot {
        self.counters.snapshot()
    }

    /// Probes every backend once with `timeout`, driving the state
    /// machines. The background prober calls this periodically; tests
    /// call it directly for deterministic transitions.
    pub fn probe_all(&self, timeout: Duration) {
        for backend in &self.backends {
            self.counters.incr(&self.counters.probes);
            if backend.probe(timeout) {
                self.note(backend.record_success());
            } else {
                self.counters.incr(&self.counters.probe_failures);
                self.note(backend.record_failure());
            }
        }
    }

    /// Handles one request line synchronously: the test-facing mirror of
    /// the reactor path (identical routing and bytes; it drives
    /// [`FrameHandler::handle_frame`] and blocks on the completion).
    pub fn handle_line(self: &Arc<Self>, line: &str) -> String {
        struct OneShot(Mutex<mpsc::Sender<String>>);
        impl CompletionSink for OneShot {
            fn complete(&self, _token: u64, _seq: u64, line: String) {
                let _ = self.0.lock().expect("one-shot sink lock").send(line);
            }
        }
        let (tx, rx) = mpsc::channel();
        let sink: Arc<dyn CompletionSink> = Arc::new(OneShot(Mutex::new(tx)));
        match Arc::clone(self).handle_frame(line, 0, 0, &sink) {
            Some(line) => line,
            None => rx.recv().expect("router forwarder always replies"),
        }
    }

    /// Attributes a state-machine edge to the transition counters.
    fn note(&self, transition: Option<Transition>) {
        let Some(t) = transition else { return };
        match t.to {
            BackendState::Suspect => self.counters.incr(&self.counters.to_suspect),
            BackendState::Down => self.counters.incr(&self.counters.to_down),
            BackendState::Up => self.counters.incr(&self.counters.recoveries),
        }
    }

    /// The candidate for `primary`'s slice: ring order from `primary`,
    /// skipping backends that are down or already failed this request.
    fn pick_backend(&self, primary: usize, failed: &[bool]) -> Option<usize> {
        let n = self.backends.len();
        (0..n)
            .map(|k| (primary + k) % n)
            .find(|&idx| !failed[idx] && self.backends[idx].state() != BackendState::Down)
    }

    fn shed_info(&self) -> OverloadInfo {
        OverloadInfo::shed(self.queue.capacity() as u64, self.queue.len() as u64)
    }

    fn refuse_unavailable(&self, id: Option<u64>) -> String {
        self.counters.incr(&self.counters.errors);
        render(&Response {
            id,
            reply: Reply::Error(ErrorInfo::new(
                kind::UNAVAILABLE,
                "service is shutting down",
            )),
        })
    }

    /// Enqueues the backend-shutdown broadcast; falls back to a detached
    /// thread if the queue is full or already closed.
    fn request_broadcast(self: &Arc<Self>) {
        if self.queue.try_push(RouterJob::Broadcast).is_ok() {
            return;
        }
        let router = Arc::clone(self);
        thread::spawn(move || router.broadcast_shutdown());
    }

    fn broadcast_shutdown(&self) {
        for backend in &self.backends {
            if backend.state() == BackendState::Down {
                continue;
            }
            let mut retried = false;
            let _ = backend.exchange("{\"id\":0,\"op\":\"shutdown\"}", &mut retried);
        }
    }

    // ------------------------------------------------ forwarder side

    fn run_job(self: &Arc<Self>, job: RouterJob) {
        match job {
            RouterJob::Broadcast => self.broadcast_shutdown(),
            RouterJob::Client {
                token,
                seq,
                sink,
                id,
                work,
            } => {
                let line = match work {
                    Work::Forward { line, hash } => self.route_exchange(&line, hash, id),
                    Work::Batch { line, items } => self.forward_batch(&line, items, id),
                    Work::Health => render(&Response {
                        id,
                        reply: self.merged_health(),
                    }),
                    Work::Metrics => render(&Response {
                        id,
                        reply: self.merged_metrics(),
                    }),
                };
                sink.complete(token, seq, line);
            }
        }
    }

    /// One exchange against backend `idx` with at-most-once pooled
    /// retry, driving the state machine and the retry counter.
    fn try_group(&self, idx: usize, line: &str) -> Result<String, ()> {
        let backend = &self.backends[idx];
        let mut retried = false;
        let result = backend.exchange(line, &mut retried);
        if retried {
            self.counters.incr(&self.counters.retried);
        }
        match result {
            Ok(raw) => {
                self.note(backend.record_success());
                Ok(raw)
            }
            Err(_) => {
                self.note(backend.record_failure());
                Err(())
            }
        }
    }

    /// Forwards a raw `solve`/`analyze` line, failing over around the
    /// ring until a backend answers; sheds when none can.
    fn route_exchange(&self, line: &str, hash: u64, id: Option<u64>) -> String {
        let n = self.backends.len();
        let primary = (hash % n as u64) as usize;
        let mut failed = vec![false; n];
        while let Some(idx) = self.pick_backend(primary, &failed) {
            match self.try_group(idx, line) {
                Ok(raw) => {
                    self.counters.incr(&self.counters.routed);
                    if idx != primary {
                        self.counters.incr(&self.counters.failovers);
                    }
                    return raw;
                }
                Err(()) => failed[idx] = true,
            }
        }
        self.counters.incr(&self.counters.sheds);
        render(&Response {
            id,
            reply: Reply::Overloaded(self.shed_info()),
        })
    }

    fn count_group(&self, group: &[usize], primaries: &[usize], idx: usize) {
        self.counters.incr(&self.counters.routed);
        let failovers = group.iter().filter(|&&i| primaries[i] != idx).count() as u64;
        self.counters.add(&self.counters.failovers, failovers);
    }

    /// Fans a batch out per backend and merges per-item outcomes back in
    /// request order. A batch that routes entirely to one backend is
    /// relayed raw (the byte-identity fast path). Per-backend failures
    /// re-route that group's items to the next candidates; items with no
    /// candidate left are shed individually.
    fn forward_batch(&self, line: &str, items: Vec<SolveBody>, id: Option<u64>) -> String {
        let n = self.backends.len();
        let total = items.len();
        let primaries: Vec<usize> = items
            .iter()
            .map(|item| (instance_hash(&item.instance) % n as u64) as usize)
            .collect();
        let mut slots: Vec<Option<BatchItemResult>> = (0..total).map(|_| None).collect();
        let mut failed = vec![false; n];
        let mut pending: Vec<usize> = (0..total).collect();
        while !pending.is_empty() {
            let mut groups: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
            for &i in &pending {
                match self.pick_backend(primaries[i], &failed) {
                    Some(idx) => groups[idx].push(i),
                    None => {
                        slots[i] = Some(BatchItemResult::Overloaded(self.shed_info()));
                        self.counters.incr(&self.counters.sheds);
                    }
                }
            }
            let active: Vec<usize> = (0..n).filter(|&idx| !groups[idx].is_empty()).collect();
            // Raw-relay fast path: the whole batch routed to one backend
            // and nothing has been answered yet — forward the client's
            // bytes and relay the backend's verbatim (the one-backend
            // byte-identity guarantee).
            if active.len() == 1 && groups[active[0]].len() == total {
                let idx = active[0];
                match self.try_group(idx, line) {
                    Ok(raw) => {
                        self.count_group(&groups[idx], &primaries, idx);
                        return raw;
                    }
                    Err(()) => {
                        failed[idx] = true;
                        continue; // same pending set, re-pick candidates
                    }
                }
            }
            let mut next_pending: Vec<usize> = Vec::new();
            for idx in active {
                let group = &groups[idx];
                let sub = render(&Request {
                    id,
                    op: Op::SolveBatch(BatchBody {
                        items: group.iter().map(|&i| items[i].clone()).collect(),
                    }),
                });
                match self.try_group(idx, &sub) {
                    Ok(raw) => {
                        self.count_group(group, &primaries, idx);
                        fill_batch_slots(&mut slots, group, &raw);
                    }
                    Err(()) => {
                        failed[idx] = true;
                        next_pending.extend_from_slice(group);
                    }
                }
            }
            pending = next_pending;
        }
        let merged: Vec<BatchItemResult> = slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    BatchItemResult::Error(ErrorInfo::new(kind::SOLVE, "router lost a batch item"))
                })
            })
            .collect();
        render(&Response {
            id,
            reply: Reply::SolvedBatch(BatchResult { items: merged }),
        })
    }

    // -------------------------------------------- merged observability

    /// Sums `health` across reachable backends. `accepting` is the
    /// router's own flag AND every reached backend's; with no backend
    /// reachable it is `false`. At one backend the sums are identities,
    /// so the reply is byte-identical to the backend's own.
    fn merged_health(&self) -> Reply {
        let mut info = HealthInfo {
            schema: PROTOCOL_SCHEMA,
            accepting: self.is_accepting(),
            workers: 0,
            queue_capacity: 0,
            queue_depth: 0,
            shards: 0,
        };
        let mut reached = 0usize;
        for backend in &self.backends {
            if backend.state() == BackendState::Down {
                continue;
            }
            let mut retried = false;
            let result = backend.exchange("{\"id\":0,\"op\":\"health\"}", &mut retried);
            if retried {
                self.counters.incr(&self.counters.retried);
            }
            match result.ok().and_then(|raw| match parse_response(&raw) {
                Ok(Response {
                    reply: Reply::Health(h),
                    ..
                }) => Some(h),
                _ => None,
            }) {
                Some(h) => {
                    self.note(backend.record_success());
                    reached += 1;
                    info.accepting = info.accepting && h.accepting;
                    info.workers += h.workers;
                    info.queue_capacity += h.queue_capacity;
                    info.queue_depth += h.queue_depth;
                    info.shards += h.shards;
                }
                None => self.note(backend.record_failure()),
            }
        }
        if reached == 0 {
            info.accepting = false;
            info.shards = 1; // keep the single-shard wire shape
        }
        Reply::Health(info)
    }

    fn fetch_metrics(&self, backend: &Backend) -> Option<MetricsSnapshot> {
        let mut retried = false;
        let result = backend.exchange("{\"id\":0,\"op\":\"metrics\"}", &mut retried);
        if retried {
            self.counters.incr(&self.counters.retried);
        }
        match result.ok().and_then(|raw| match parse_response(&raw) {
            Ok(Response {
                reply: Reply::Metrics(snap),
                ..
            }) => Some(*snap),
            _ => None,
        }) {
            Some(snap) => {
                self.note(backend.record_success());
                Some(snap)
            }
            None => {
                self.note(backend.record_failure());
                None
            }
        }
    }

    /// Merges `metrics` across the fleet: counters add, `queue_peak` and
    /// the latency quantiles max, the hit rate is recomputed from summed
    /// hits/misses. Shard arrays concatenate (reindexed) only when every
    /// reached backend reported one — a single-shard backend omits its
    /// array, and a partial concat could not sum to the aggregates. The
    /// reply always carries one [`BackendSnapshot`] per configured
    /// backend (zeros + state when down or unreachable) plus the
    /// [`RouterSnapshot`]; router-origin sheds/errors/malformed are
    /// folded into the merged aggregates so the books balance.
    fn merged_metrics(&self) -> Reply {
        let router_snap = self.counters.snapshot();
        let mut merged = Metrics::new().snapshot(0, 0);
        let mut backends_arr = Vec::with_capacity(self.backends.len());
        let mut reached = 0usize;
        let mut all_sharded = true;
        let mut shard_concat: Vec<ShardSnapshot> = Vec::new();
        for (i, backend) in self.backends.iter().enumerate() {
            let snap = if backend.state() == BackendState::Down {
                None
            } else {
                self.fetch_metrics(backend)
            };
            backends_arr.push(backend_slice(i as u64, backend.state(), snap.as_ref()));
            let Some(snap) = snap else { continue };
            reached += 1;
            merged.received += snap.received;
            merged.malformed += snap.malformed;
            merged.solved += snap.solved;
            merged.analyzed += snap.analyzed;
            merged.health += snap.health;
            merged.metrics += snap.metrics;
            merged.shutdown += snap.shutdown;
            merged.overloaded += snap.overloaded;
            merged.deadline_exceeded += snap.deadline_exceeded;
            merged.errors += snap.errors;
            merged.cache_hits += snap.cache_hits;
            merged.cache_misses += snap.cache_misses;
            merged.cache_entries += snap.cache_entries;
            merged.queue_depth += snap.queue_depth;
            merged.queue_peak = merged.queue_peak.max(snap.queue_peak);
            merged.rounds_total += snap.rounds_total;
            merged.messages_total += snap.messages_total;
            merged.blocking_pairs_total += snap.blocking_pairs_total;
            merged.matched_total += snap.matched_total;
            merged.latency_p50_us = merged.latency_p50_us.max(snap.latency_p50_us);
            merged.latency_p95_us = merged.latency_p95_us.max(snap.latency_p95_us);
            merged.latency_p99_us = merged.latency_p99_us.max(snap.latency_p99_us);
            // Market books sum across backends (each market lives on
            // exactly one backend, so the merged block partitions).
            if let Some(market) = snap.market {
                let slot = merged.market.get_or_insert_with(MarketSnapshot::default);
                slot.markets_open += market.markets_open;
                slot.markets_created += market.markets_created;
                slot.markets_dropped += market.markets_dropped;
                slot.mutations += market.mutations;
                slot.warm_resolves += market.warm_resolves;
                slot.cold_resolves += market.cold_resolves;
                slot.fallbacks += market.fallbacks;
                slot.warm_rounds_total += market.warm_rounds_total;
                slot.cold_rounds_total += market.cold_rounds_total;
            }
            if snap.shards.is_empty() {
                all_sharded = false;
            } else {
                shard_concat.extend(snap.shards);
            }
        }
        let lookups = merged.cache_hits + merged.cache_misses;
        merged.cache_hit_rate = if lookups == 0 {
            0.0
        } else {
            merged.cache_hits as f64 / lookups as f64
        };
        if reached > 0 && all_sharded {
            for (j, shard) in shard_concat.iter_mut().enumerate() {
                shard.shard = j as u64;
            }
            merged.shards = shard_concat;
        }
        merged.malformed += router_snap.malformed;
        merged.overloaded += router_snap.sheds;
        merged.errors += router_snap.errors;
        merged.backends = backends_arr;
        merged.router = Some(router_snap);
        Reply::Metrics(Box::new(merged))
    }
}

impl FrameHandler for Router {
    fn handle_frame(
        self: Arc<Self>,
        line: &str,
        token: u64,
        seq: u64,
        sink: &Arc<dyn CompletionSink>,
    ) -> Option<String> {
        self.counters.incr(&self.counters.received);
        let request = match parse_request(line) {
            Ok(request) => request,
            Err(err) => {
                self.counters.incr(&self.counters.malformed);
                self.counters.incr(&self.counters.errors);
                return Some(render(&Response {
                    id: None,
                    reply: Reply::Error(ErrorInfo::new(kind::MALFORMED, err.to_string())),
                }));
            }
        };
        let id = request.id;
        let work = match request.op {
            Op::Shutdown => {
                // Broadcast before closing the queue, so the forwarders
                // drain it; then stop admitting.
                self.request_broadcast();
                self.begin_shutdown();
                return Some(render(&Response {
                    id,
                    reply: Reply::ShuttingDown,
                }));
            }
            Op::Health => Work::Health,
            Op::Metrics => Work::Metrics,
            Op::Solve(body) => {
                if !self.is_accepting() {
                    return Some(self.refuse_unavailable(id));
                }
                Work::Forward {
                    line: line.to_string(),
                    hash: instance_hash(&body.instance),
                }
            }
            Op::Analyze(body) => {
                if !self.is_accepting() {
                    return Some(self.refuse_unavailable(id));
                }
                Work::Forward {
                    line: line.to_string(),
                    hash: instance_hash(&body.instance),
                }
            }
            Op::SolveBatch(batch) => {
                if !self.is_accepting() {
                    return Some(self.refuse_unavailable(id));
                }
                if batch.items.is_empty() {
                    return Some(render(&Response {
                        id,
                        reply: Reply::SolvedBatch(BatchResult { items: Vec::new() }),
                    }));
                }
                Work::Batch {
                    line: line.to_string(),
                    items: batch.items,
                }
            }
            // Market ops route by the market id's label hash — the same
            // affinity rule the backend's shards use, so one market's
            // lifetime pins to one backend (and one shard within it).
            Op::MarketCreate(body) => {
                if !self.is_accepting() {
                    return Some(self.refuse_unavailable(id));
                }
                Work::Forward {
                    line: line.to_string(),
                    hash: label_hash(&body.market),
                }
            }
            Op::MarketMutate(body) => {
                if !self.is_accepting() {
                    return Some(self.refuse_unavailable(id));
                }
                Work::Forward {
                    line: line.to_string(),
                    hash: label_hash(&body.market),
                }
            }
            Op::Resolve(body) => {
                if !self.is_accepting() {
                    return Some(self.refuse_unavailable(id));
                }
                Work::Forward {
                    line: line.to_string(),
                    hash: label_hash(&body.market),
                }
            }
            Op::MarketDrop(body) => {
                if !self.is_accepting() {
                    return Some(self.refuse_unavailable(id));
                }
                Work::Forward {
                    line: line.to_string(),
                    hash: label_hash(&body.market),
                }
            }
        };
        let control = matches!(work, Work::Health | Work::Metrics);
        let job = RouterJob::Client {
            token,
            seq,
            sink: Arc::clone(sink),
            id,
            work,
        };
        match self.queue.try_push(job) {
            Ok(_) => None,
            Err(PushError::Full(_)) => {
                self.counters.incr(&self.counters.sheds);
                Some(render(&Response {
                    id,
                    reply: Reply::Overloaded(self.shed_info()),
                }))
            }
            Err(PushError::Closed(job)) => {
                if control {
                    // Keep serving drain observers: the forward queue is
                    // closed, so merge on a detached thread instead.
                    let RouterJob::Client {
                        token,
                        seq,
                        sink,
                        id,
                        work,
                    } = job
                    else {
                        unreachable!("the refused job is the one just built")
                    };
                    let router = Arc::clone(&self);
                    thread::spawn(move || {
                        let reply = match work {
                            Work::Health => router.merged_health(),
                            _ => router.merged_metrics(),
                        };
                        sink.complete(token, seq, render(&Response { id, reply }));
                    });
                    None
                } else {
                    Some(self.refuse_unavailable(id))
                }
            }
        }
    }

    fn is_accepting(&self) -> bool {
        self.accepting.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        self.queue.close();
    }

    fn join_work(&self) {
        self.begin_shutdown();
        let pool = self.pool.lock().expect("pool lock").take();
        if let Some(pool) = pool {
            pool.join();
        }
        self.prober_stop.store(true, Ordering::SeqCst);
        let prober = self.prober.lock().expect("prober lock").take();
        if let Some(prober) = prober {
            let _ = prober.join();
        }
    }

    fn frames_served(&self) -> u64 {
        self.counters.received.load(Ordering::SeqCst)
    }
}

/// Fills a group's slots from one backend batch reply. A well-formed
/// `solved_batch` maps item-for-item; a whole-reply `error` (e.g. the
/// backend is draining) or `overloaded` fans out to every slot; anything
/// else becomes explicit per-item errors rather than lost slots.
fn fill_batch_slots(slots: &mut [Option<BatchItemResult>], group: &[usize], raw: &str) {
    match parse_response(raw) {
        Ok(Response {
            reply: Reply::SolvedBatch(batch),
            ..
        }) if batch.items.len() == group.len() => {
            for (&slot, item) in group.iter().zip(batch.items) {
                slots[slot] = Some(item);
            }
        }
        Ok(Response {
            reply: Reply::Error(err),
            ..
        }) => {
            for &slot in group {
                slots[slot] = Some(BatchItemResult::Error(err.clone()));
            }
        }
        Ok(Response {
            reply: Reply::Overloaded(info),
            ..
        }) => {
            for &slot in group {
                slots[slot] = Some(BatchItemResult::Overloaded(info.clone()));
            }
        }
        _ => {
            for &slot in group {
                slots[slot] = Some(BatchItemResult::Error(ErrorInfo::new(
                    kind::SOLVE,
                    "backend returned an unexpected batch reply",
                )));
            }
        }
    }
}

/// Builds one backend's entry in the merged `backends` array: its own
/// aggregates when reached, zeros plus the probe state otherwise.
fn backend_slice(
    index: u64,
    state: BackendState,
    snap: Option<&MetricsSnapshot>,
) -> BackendSnapshot {
    let g = |f: fn(&MetricsSnapshot) -> u64| snap.map(f).unwrap_or(0);
    BackendSnapshot {
        backend: index,
        state: state.name().to_string(),
        received: g(|s| s.received),
        solved: g(|s| s.solved),
        analyzed: g(|s| s.analyzed),
        overloaded: g(|s| s.overloaded),
        deadline_exceeded: g(|s| s.deadline_exceeded),
        errors: g(|s| s.errors),
        cache_hits: g(|s| s.cache_hits),
        cache_misses: g(|s| s.cache_misses),
        cache_entries: g(|s| s.cache_entries),
        queue_depth: g(|s| s.queue_depth),
        queue_peak: g(|s| s.queue_peak),
        rounds_total: g(|s| s.rounds_total),
        messages_total: g(|s| s.messages_total),
        blocking_pairs_total: g(|s| s.blocking_pairs_total),
        matched_total: g(|s| s.matched_total),
    }
}

fn prober_loop(router: Weak<Router>, stop: Arc<AtomicBool>, interval: Duration, timeout: Duration) {
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let chunk = interval
                .saturating_sub(slept)
                .min(Duration::from_millis(25));
            thread::sleep(chunk);
            slept += chunk;
        }
        let Some(router) = router.upgrade() else {
            return;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        router.probe_all(timeout);
    }
}

/// Binds `addr` and serves the router until a `shutdown` request (or
/// [`ServerHandle::shutdown`]) arrives, with the default
/// [`ReactorConfig`].
///
/// # Errors
///
/// Returns the bind error, or [`Router::start`]'s configuration errors.
pub fn serve_router(addr: &str, config: RouterConfig) -> io::Result<ServerHandle<Router>> {
    serve_router_with(addr, config, ReactorConfig::default())
}

/// [`serve_router`] with explicit reactor tunables.
///
/// # Errors
///
/// Returns the bind error, or [`Router::start`]'s configuration errors.
pub fn serve_router_with(
    addr: &str,
    config: RouterConfig,
    reactor_config: ReactorConfig,
) -> io::Result<ServerHandle<Router>> {
    spawn_server(addr, Router::start(config)?, reactor_config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unreachable_router(backends: usize, down_after: u32) -> Arc<Router> {
        // Port 1 is never listening: every dial fails fast with
        // ECONNREFUSED, which is exactly what these tests need.
        Router::start(RouterConfig {
            backends: (0..backends).map(|_| "127.0.0.1:1".to_string()).collect(),
            probe_interval_ms: 0,
            down_after,
            connect_timeout_ms: 200,
            read_timeout_ms: 200,
            ..RouterConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn start_requires_backends() {
        let err = Router::start(RouterConfig::default()).err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn route_index_is_hash_mod_backends() {
        let router = unreachable_router(3, 3);
        let spec = InstanceSpec::Generator(asm_instance::generators::GeneratorConfig::Regular {
            n: 8,
            d: 3,
            seed: 7,
        });
        assert_eq!(
            router.route_index(&spec),
            (instance_hash(&spec) % 3) as usize
        );
        router.join_work();
    }

    #[test]
    fn malformed_and_empty_batch_answer_inline() {
        let router = unreachable_router(1, 3);
        let out = router.handle_line("{not json");
        assert!(out.starts_with("{\"id\":null,\"reply\":\"error\""), "{out}");
        let out = router.handle_line("{\"id\":4,\"op\":\"solve_batch\",\"body\":{\"items\":[]}}");
        assert_eq!(
            out,
            "{\"id\":4,\"reply\":\"solved_batch\",\"body\":{\"items\":[]}}"
        );
        let snap = router.router_snapshot();
        assert_eq!(snap.received, 2);
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.errors, 1);
        router.join_work();
    }

    #[test]
    fn all_backends_unreachable_sheds_with_router_reason() {
        let router = unreachable_router(2, 1);
        let line = "{\"id\":9,\"op\":\"solve\",\"body\":{\"instance\":{\"Generator\":{\"Regular\":{\"n\":6,\"d\":2,\"seed\":1}}},\"algorithm\":\"gs\",\"eps\":0.5,\"delta\":0.1,\"seed\":1,\"backend\":\"greedy\",\"deadline_ms\":0,\"cycles\":0}}";
        let out = router.handle_line(line);
        assert!(
            out.contains("\"reply\":\"overloaded\"") && out.contains("\"reason\":\"router\""),
            "{out}"
        );
        let snap = router.router_snapshot();
        assert_eq!(snap.sheds, 1);
        assert_eq!(snap.routed, 0);
        // down_after = 1: both dial failures transition straight to down.
        assert_eq!(snap.to_down, 2);
        assert_eq!(
            router.backend_states(),
            vec![BackendState::Down, BackendState::Down]
        );
        router.join_work();
    }

    #[test]
    fn solves_after_shutdown_are_refused_unavailable() {
        let router = unreachable_router(1, 3);
        let out = router.handle_line("{\"id\":1,\"op\":\"shutdown\"}");
        assert_eq!(out, "{\"id\":1,\"reply\":\"shutting_down\"}");
        assert!(!router.is_accepting());
        let line = "{\"id\":2,\"op\":\"solve\",\"body\":{\"instance\":{\"Generator\":{\"Regular\":{\"n\":6,\"d\":2,\"seed\":1}}},\"algorithm\":\"gs\",\"eps\":0.5,\"delta\":0.1,\"seed\":1,\"backend\":\"greedy\",\"deadline_ms\":0,\"cycles\":0}}";
        let out = router.handle_line(line);
        assert!(
            out.contains("\"kind\":\"unavailable\"") && out.contains("service is shutting down"),
            "{out}"
        );
        router.join_work();
    }

    #[test]
    fn merged_health_with_no_reachable_backend_is_not_accepting() {
        let router = unreachable_router(1, 1);
        // First contact marks the backend down (down_after = 1)...
        let out = router.handle_line("{\"id\":7,\"op\":\"health\"}");
        assert!(out.contains("\"accepting\":false"), "{out}");
        assert!(!out.contains("shards"), "{out}");
        router.join_work();
    }
}
