//! # asm-service: a concurrent almost-stable-matching service
//!
//! The north-star deployment target of this repo: the paper's algorithms
//! behind a long-running server with the operational machinery a matching
//! service actually needs —
//!
//! * **Wire protocol** ([`protocol`]): newline-delimited JSON over TCP;
//!   `solve`, `solve_batch`, `analyze`, `health`, `metrics`, `shutdown`.
//!   Specified in `docs/PROTOCOLS.md` and pinned byte-for-byte by the
//!   golden corpus in `crates/service/cases/`.
//! * **Sharding + admission control** ([`service`]): N independent
//!   shards, each with its own bounded job queue
//!   ([`asm_runtime::JobQueue`]), worker subset, and result cache; jobs
//!   route by the instance content hash, so identical instances always
//!   share a shard (and its cache). A full shard queue is an explicit
//!   `overloaded` reply, and per-request queue-wait deadlines yield
//!   `deadline_exceeded` instead of silent latency. `solve_batch`
//!   amortizes one envelope and one admission per shard touched across
//!   many instances.
//! * **Result cache** ([`cache`]): the solvers are deterministic in
//!   (instance, parameters, seed), so repeated requests are answered from
//!   a content-hash-keyed cache with O(1) intrusive-list LRU eviction,
//!   without re-running the engine.
//! * **Observability** ([`metrics`]): lock-free counters and log₂-bucket
//!   latency quantiles, snapshotted as schema-versioned JSON by the
//!   `metrics` request, with per-shard counters that sum exactly to the
//!   aggregates. The counters are exact enough to reconcile against a
//!   load generator's own totals (CI does exactly that).
//! * **Connection reactor** ([`reactor`]): a single std-only
//!   poll-based reactor thread multiplexes every connection over
//!   nonblocking sockets — incremental newline framing, ordered
//!   response outboxes, and per-connection backpressure — so clients
//!   cost buffers, not threads. Worker completions and shutdown wake it
//!   immediately through a condvar-backed wake queue.
//! * **Graceful drain** ([`server`]): shutdown stops admission, drains
//!   every accepted job, and flushes every in-flight response before
//!   [`ServerHandle::wait`] returns.
//!
//! # Quickstart
//!
//! ```
//! use asm_service::{serve, ServiceConfig};
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//!
//! let handle = serve("127.0.0.1:0", ServiceConfig::default())?;
//! let stream = TcpStream::connect(handle.addr())?;
//! let mut writer = stream.try_clone()?;
//! writeln!(
//!     writer,
//!     "{}",
//!     r#"{"id":1,"op":"solve","body":{"instance":{"Generator":{"Regular":{"n":16,"d":4,"seed":7}}},"algorithm":"asm","eps":0.5,"delta":0.1,"seed":42,"backend":"greedy","deadline_ms":0,"cycles":0}}"#
//! )?;
//! let mut reply = String::new();
//! BufReader::new(stream).read_line(&mut reply)?;
//! assert!(reply.contains("\"reply\":\"solved\""));
//! handle.shutdown();
//! handle.wait();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod framing;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod router;
pub mod server;
pub mod service;

pub use backend::{Backend, BackendState, Transition};
pub use cache::{instance_hash, ResultCache, SolveKey};
pub use metrics::{
    BackendSnapshot, MarketSnapshot, Metrics, MetricsSnapshot, ReactorCounters, RouterSnapshot,
    ShardCounters, ShardSnapshot, METRICS_SCHEMA,
};
pub use protocol::{
    kind, Algorithm, AnalyzeBody, AnalyzeResult, BatchBody, BatchItemResult, BatchResult,
    DeadlineInfo, ErrorInfo, HealthInfo, InstanceSpec, MarketCreateBody, MarketCreatedInfo,
    MarketDropBody, MarketDroppedInfo, MarketMutateBody, MarketMutatedInfo, Op, OverloadInfo,
    Reply, Request, ResolveBody, ResolveResult, Response, SolveBody, SolveResult,
    OVERLOAD_REASON_ROUTER, PROTOCOL_SCHEMA,
};
pub use reactor::ReactorConfig;
pub use router::{serve_router, serve_router_with, Router, RouterConfig};
pub use server::{serve, serve_with, ServerHandle};
pub use service::{CompletionSink, FrameHandler, Service, ServiceConfig};
