//! The service core: admission control, sharded worker pools, and
//! request handling — everything except the TCP listener.
//!
//! [`Service::handle_line`] is the entire protocol state machine: one
//! request line in, one response line out. Connection threads call it
//! directly; the TCP layer in [`server`](crate::server) is a thin loop
//! around it, which is what makes the golden-corpus tests possible — they
//! drive `handle_line` in-process and pin exact response bytes without a
//! socket in sight.
//!
//! ## Sharding
//!
//! The service runs `shards` independent lanes, each owning its own
//! bounded [`JobQueue`], worker subset, and [`ResultCache`]. A job is
//! routed by the *content hash of its instance* — the same hash that
//! keys the cache — so identical instances always land on the same
//! shard and their cache entries stay findable regardless of the shard
//! count. One shard degenerates to the pre-sharding service exactly:
//! same admission decisions, same wire bytes (pinned by the golden
//! corpus), same metrics.
//!
//! ## Job flow
//!
//! `solve`/`analyze` requests are validated on the connection thread
//! (unknown algorithm, bad ε, …, are rejected *before* consuming queue
//! capacity), then enqueued on the routed shard's bounded queue. A full
//! shard queue is an immediate `overloaded` reply — admission control by
//! backpressure, never unbounded buffering. Workers dequeue, check the
//! queue-wait deadline, consult the shard's result cache, and run the
//! engine; the connection thread blocks on a rendezvous channel until
//! its reply arrives (connection concurrency, not request pipelining, is
//! the concurrency unit).
//!
//! `solve_batch` amortizes one envelope and one queue admission *per
//! shard touched* over many instances: items are validated up front
//! (invalid ones consume no capacity), grouped by routing hash, enqueued
//! as one job per shard group, and the per-item outcomes are merged back
//! into request order.
//!
//! ## Markets
//!
//! Market ops (`market_create`/`market_mutate`/`resolve`/`market_drop`)
//! are routed by the **market id's label hash** instead of an instance
//! hash: one market's entire lifetime lands on one shard, whose
//! [`MarketRegistry`] owns its state. That affinity is the concurrency
//! story — two mutations of the same market serialize through one
//! shard's queue and one market mutex; no cross-shard locking exists.
//!
//! ## Shutdown
//!
//! `shutdown` flips `accepting` and closes every shard queue.
//! Already-accepted jobs drain; later solve/analyze requests get an
//! `unavailable` error; `health`/`metrics` keep answering so operators
//! can watch the drain.

use crate::cache::{instance_hash, ResultCache, SolveKey};
use crate::metrics::{Metrics, ShardCounters};
use crate::protocol::{
    kind, Algorithm, AnalyzeBody, AnalyzeResult, BatchItemResult, BatchResult, DeadlineInfo,
    ErrorInfo, HealthInfo, MarketCreateBody, MarketCreatedInfo, MarketDroppedInfo,
    MarketMutateBody, MarketMutatedInfo, Op, OverloadInfo, Reply, Request, ResolveResult, Response,
    SolveBody, SolveResult, PROTOCOL_SCHEMA,
};
use asm_core::baselines::{distributed_gs, truncated_gs};
use asm_core::{almost_regular_asm, asm, rand_asm, AlmostRegularParams, AsmConfig, RandAsmParams};
use asm_market::{MarketRegistry, MarketState, ResolveMode};
use asm_matching::{
    count_eps_blocking_pairs_with, verify_matching, BlockingScratch, StabilityReport,
};
use asm_maximal::MatcherBackend;
use asm_runtime::{label_hash, JobQueue, PushError, WorkerPool};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::time::Instant;

/// Tunables for a [`Service`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads *in total* across shards (0 ⇒ clamped to 1; every
    /// shard always gets at least one dedicated worker, so the effective
    /// count is `max(workers, shards)`).
    pub workers: usize,
    /// Bounded job-queue capacity **per shard**; a full shard queue
    /// answers `overloaded`.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries **per shard**; 0 disables
    /// caching.
    pub cache_capacity: usize,
    /// Artificial per-job service delay in milliseconds, applied by the
    /// worker before the deadline check (once per batch item). Zero in
    /// production; nonzero makes queue-wait deadlines and overload
    /// deterministic for tests and load shaping.
    pub worker_delay_ms: u64,
    /// Number of shards (0 ⇒ clamped to 1). `1` reproduces the
    /// unsharded service bit-for-bit.
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            worker_delay_ms: 0,
            shards: 1,
        }
    }
}

/// Where a completed job's response goes, decided at admission time.
///
/// The synchronous path ([`Service::handle_line`]) blocks on a
/// rendezvous channel; the reactor path renders the response on the
/// worker thread and hands the finished line to a [`CompletionSink`].
/// Either way the outcome counters are bumped *before* the response can
/// reach a client, so a `metrics` probe sent after reading a solve reply
/// always sees that solve counted — the ordering the golden corpus pins.
enum ReplyTo {
    /// Rendezvous channel: the submitting thread blocks on `recv`.
    Channel(mpsc::Sender<JobOutcome>),
    /// A reactor-owned frame: count, render, and deliver on the worker.
    Reactor(AsyncReply),
    /// One shard's slice of an asynchronous `solve_batch`.
    Batch(BatchSlot),
}

/// A queued job plus its reply destination.
struct Job {
    enqueued: Instant,
    /// Queue-wait deadline for single jobs; batch items carry their own.
    deadline_ms: u64,
    body: JobBody,
    reply: ReplyTo,
}

impl Job {
    /// Defuses a refused job so dropping it does not fire a spurious
    /// "worker failed" completion (the refusal is answered inline).
    fn disarm(self) {
        match self.reply {
            ReplyTo::Reactor(mut reply) => reply.armed = false,
            ReplyTo::Channel(_) | ReplyTo::Batch(_) => {}
        }
    }
}

/// Receives rendered response lines for frames handled asynchronously
/// via [`Service::handle_line_async`]. Implemented by the reactor's wake
/// queue; `(token, seq)` identifies the connection and the frame's
/// position on it, so replies can be flushed in request order.
pub trait CompletionSink: Send + Sync {
    /// Delivers the response line (no trailing newline) for frame
    /// (`token`, `seq`). Called from worker threads.
    fn complete(&self, token: u64, seq: u64, line: String);
}

/// A protocol endpoint the reactor can serve: anything that turns one
/// request line into one response line, possibly asynchronously.
///
/// Implemented by [`Service`] (the single-process matching service) and
/// by [`Router`](crate::router::Router) (the front tier fanning requests
/// out to multiple backends). The reactor is generic over this trait, so
/// both tiers share the exact same framing, outbox ordering,
/// backpressure, and drain machinery.
pub trait FrameHandler: Send + Sync + 'static {
    /// Handles one frame without blocking. Inline replies return
    /// `Some(line)`; admitted asynchronous work returns `None` and the
    /// rendered response arrives later via `sink` tagged with
    /// (`token`, `seq`). The receiver is `Arc<Self>` so handlers can
    /// park a weak self-reference inside pending jobs.
    fn handle_frame(
        self: Arc<Self>,
        line: &str,
        token: u64,
        seq: u64,
        sink: &Arc<dyn CompletionSink>,
    ) -> Option<String>;

    /// Whether new work is still admitted (false once shutdown began).
    fn is_accepting(&self) -> bool;

    /// Begins graceful shutdown: stop admitting new work. Idempotent.
    fn begin_shutdown(&self);

    /// Blocks until every accepted piece of work has completed. Implies
    /// [`begin_shutdown`](FrameHandler::begin_shutdown).
    fn join_work(&self);

    /// Frames handled so far (the count `ServerHandle::wait` returns).
    fn frames_served(&self) -> u64;
}

/// The reactor half of a pending single job: everything needed to count,
/// render, and deliver the response from the worker thread.
struct AsyncReply {
    service: Weak<Service>,
    sink: Arc<dyn CompletionSink>,
    token: u64,
    seq: u64,
    id: Option<u64>,
    shard: usize,
    /// While `true`, dropping without [`deliver`](AsyncReply::deliver)
    /// fires the "worker failed before replying" completion — the async
    /// mirror of the sync path's dropped rendezvous sender.
    armed: bool,
}

impl AsyncReply {
    /// Counts the outcome, renders the response, and hands the line to
    /// the sink. Runs on the worker thread, so the books are settled
    /// before the client can observe the reply.
    fn deliver(mut self, reply: Reply) {
        self.armed = false;
        if let Some(service) = self.service.upgrade() {
            service.count_reply(self.shard, &reply);
        }
        let line = crate::protocol::render(&Response { id: self.id, reply });
        self.sink.complete(self.token, self.seq, line);
    }
}

impl Drop for AsyncReply {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.armed = false;
        if let Some(service) = self.service.upgrade() {
            service.metrics.incr(&service.metrics.errors);
        }
        let line = crate::protocol::render(&Response {
            id: self.id,
            reply: Reply::Error(ErrorInfo::new(kind::SOLVE, "worker failed before replying")),
        });
        self.sink.complete(self.token, self.seq, line);
    }
}

/// Shared accumulator for an asynchronous `solve_batch`: per-shard
/// groups fill their slices; the last group to finish merges in request
/// order and delivers the single batched response.
struct BatchState {
    service: Weak<Service>,
    sink: Arc<dyn CompletionSink>,
    token: u64,
    seq: u64,
    id: Option<u64>,
    results: Mutex<Vec<Option<(usize, BatchItemResult)>>>,
    remaining: AtomicUsize,
}

impl BatchState {
    /// Merges and delivers. Called exactly once, by whichever
    /// [`BatchSlot`] drops last; slots a dead worker never filled merge
    /// as explicit "worker failed" errors, like the sync path.
    fn finalize(&self) {
        let results = std::mem::take(&mut *self.results.lock().expect("batch results lock"));
        let Some(service) = self.service.upgrade() else {
            return;
        };
        let reply = service.merge_batch(results);
        let line = crate::protocol::render(&Response { id: self.id, reply });
        self.sink.complete(self.token, self.seq, line);
    }
}

/// One shard group's handle on a [`BatchState`]. Dropping (after a
/// worker delivers, or during a worker panic's unwind) decrements the
/// group count; the last drop finalizes the batch.
struct BatchSlot {
    state: Arc<BatchState>,
    shard: usize,
}

impl BatchSlot {
    fn deliver(&self, outcome: JobOutcome) {
        if let JobOutcome::Many(parts) = outcome {
            let mut results = self.state.results.lock().expect("batch results lock");
            for (index, item) in parts {
                results[index] = Some((self.shard, item));
            }
        }
    }
}

impl Drop for BatchSlot {
    fn drop(&mut self) {
        if self.state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.state.finalize();
        }
    }
}

enum JobBody {
    Solve {
        body: SolveBody,
        algorithm: Algorithm,
        backend: MatcherBackend,
        key: SolveKey,
    },
    Analyze(AnalyzeBody),
    /// One shard's slice of a `solve_batch`, in request order.
    SolveBatch(Vec<BatchItem>),
    /// A market-tier op, already validated and routed to the shard that
    /// owns its market.
    Market(MarketJob),
}

/// One validated market op. Resolve modes are parsed at admission so an
/// unknown mode is refused before consuming queue capacity.
enum MarketJob {
    Create(MarketCreateBody),
    Mutate(MarketMutateBody),
    Resolve { market: String, mode: ResolveMode },
    Drop(String),
}

impl MarketJob {
    /// The market id — the routing key for shard affinity.
    fn market(&self) -> &str {
        match self {
            MarketJob::Create(body) => &body.market,
            MarketJob::Mutate(body) => &body.market,
            MarketJob::Resolve { market, .. } => market,
            MarketJob::Drop(market) => market,
        }
    }
}

/// One validated `solve_batch` item, tagged with its request position.
struct BatchItem {
    index: usize,
    body: SolveBody,
    algorithm: Algorithm,
    backend: MatcherBackend,
    key: SolveKey,
}

/// What a worker hands back over the rendezvous channel.
enum JobOutcome {
    /// A single solve/analyze reply.
    One(Reply),
    /// Per-item batch outcomes, tagged with request positions.
    Many(Vec<(usize, BatchItemResult)>),
}

/// One shard: its queue, its result cache, its market registry, its
/// slice of the books.
struct Shard {
    queue: Arc<JobQueue<Job>>,
    cache: Arc<ResultCache>,
    registry: Arc<MarketRegistry>,
    counters: Arc<ShardCounters>,
}

/// The matching service: admission control, sharded workers, caches,
/// metrics.
///
/// Construct with [`Service::start`]; share via the returned `Arc`.
pub struct Service {
    config: ServiceConfig,
    workers: usize,
    shards: Vec<Shard>,
    pool: Mutex<Option<WorkerPool>>,
    metrics: Arc<Metrics>,
    accepting: AtomicBool,
}

impl Service {
    /// Starts the sharded worker pool and returns the shared handle.
    pub fn start(config: ServiceConfig) -> Arc<Service> {
        let shard_count = config.shards.max(1);
        let workers = config.workers.max(1).max(shard_count);
        let shards: Vec<Shard> = (0..shard_count)
            .map(|_| Shard {
                queue: JobQueue::new(config.queue_capacity),
                cache: Arc::new(ResultCache::new(config.cache_capacity)),
                registry: Arc::new(MarketRegistry::new()),
                counters: Arc::new(ShardCounters::new()),
            })
            .collect();
        let metrics = Arc::new(Metrics::new());
        let pool = {
            let queues: Vec<Arc<JobQueue<Job>>> =
                shards.iter().map(|s| Arc::clone(&s.queue)).collect();
            let caches: Vec<Arc<ResultCache>> =
                shards.iter().map(|s| Arc::clone(&s.cache)).collect();
            let registries: Vec<Arc<MarketRegistry>> =
                shards.iter().map(|s| Arc::clone(&s.registry)).collect();
            let metrics = Arc::clone(&metrics);
            let delay_ms = config.worker_delay_ms;
            WorkerPool::spawn_sharded(workers, &queues, move |shard, _worker, job: Job| {
                run_job(job, &caches[shard], &registries[shard], &metrics, delay_ms);
            })
        };
        Arc::new(Service {
            config,
            workers,
            shards,
            pool: Mutex::new(Some(pool)),
            metrics,
            accepting: AtomicBool::new(true),
        })
    }

    /// Handles one request line, returning the single response line
    /// (no trailing newline). Never panics on untrusted input.
    pub fn handle_line(&self, line: &str) -> String {
        self.metrics.incr(&self.metrics.received);
        let request = match crate::protocol::parse_request(line) {
            Ok(request) => request,
            Err(err) => {
                self.metrics.incr(&self.metrics.malformed);
                self.metrics.incr(&self.metrics.errors);
                return crate::protocol::render(&Response {
                    id: None,
                    reply: Reply::Error(ErrorInfo::new(kind::MALFORMED, err.to_string())),
                });
            }
        };
        let id = request.id;
        let reply = self.dispatch(request);
        crate::protocol::render(&Response { id, reply })
    }

    fn dispatch(&self, request: Request) -> Reply {
        match request.op {
            Op::Health => self.health_reply(),
            Op::Metrics => self.metrics_reply(),
            Op::Shutdown => self.shutdown_reply(),
            Op::Solve(body) => match self.route_solve(body) {
                Ok((deadline_ms, shard, job)) => self.submit(deadline_ms, shard, job),
                Err(reply) => {
                    self.metrics.incr(&self.metrics.errors);
                    *reply
                }
            },
            Op::SolveBatch(batch) => self.submit_batch(batch.items),
            Op::Analyze(body) => match self.route_analyze(body) {
                Ok((shard, job)) => self.submit(0, shard, job),
                Err(reply) => {
                    self.metrics.incr(&self.metrics.errors);
                    *reply
                }
            },
            op @ (Op::MarketCreate(_)
            | Op::MarketMutate(_)
            | Op::Resolve(_)
            | Op::MarketDrop(_)) => match self.route_market(op) {
                Ok((shard, job)) => self.submit(0, shard, job),
                Err(reply) => {
                    self.metrics.incr(&self.metrics.errors);
                    *reply
                }
            },
        }
    }

    /// Handles one request line without blocking on workers. Control ops
    /// and refusals answer inline (`Some(line)`); admitted solve/analyze
    /// jobs return `None`, and the rendered response arrives later via
    /// `sink` tagged with (`token`, `seq`). Counting, validation, and
    /// response bytes are identical to [`handle_line`](Service::handle_line)
    /// — the two paths share every helper, which is what keeps the golden
    /// corpus pinned while the reactor serves thousands of connections
    /// from one thread.
    pub fn handle_line_async(
        self: &Arc<Self>,
        line: &str,
        token: u64,
        seq: u64,
        sink: &Arc<dyn CompletionSink>,
    ) -> Option<String> {
        self.metrics.incr(&self.metrics.received);
        let request = match crate::protocol::parse_request(line) {
            Ok(request) => request,
            Err(err) => {
                self.metrics.incr(&self.metrics.malformed);
                self.metrics.incr(&self.metrics.errors);
                return Some(crate::protocol::render(&Response {
                    id: None,
                    reply: Reply::Error(ErrorInfo::new(kind::MALFORMED, err.to_string())),
                }));
            }
        };
        let id = request.id;
        self.dispatch_async(request, token, seq, sink)
            .map(|reply| crate::protocol::render(&Response { id, reply }))
    }

    fn dispatch_async(
        self: &Arc<Self>,
        request: Request,
        token: u64,
        seq: u64,
        sink: &Arc<dyn CompletionSink>,
    ) -> Option<Reply> {
        let id = request.id;
        match request.op {
            Op::Health => Some(self.health_reply()),
            Op::Metrics => Some(self.metrics_reply()),
            Op::Shutdown => Some(self.shutdown_reply()),
            Op::Solve(body) => match self.route_solve(body) {
                Ok((deadline_ms, shard, job)) => {
                    self.submit_async(id, deadline_ms, shard, job, token, seq, sink)
                }
                Err(reply) => {
                    self.metrics.incr(&self.metrics.errors);
                    Some(*reply)
                }
            },
            Op::SolveBatch(batch) => self.submit_batch_async(id, batch.items, token, seq, sink),
            Op::Analyze(body) => match self.route_analyze(body) {
                Ok((shard, job)) => self.submit_async(id, 0, shard, job, token, seq, sink),
                Err(reply) => {
                    self.metrics.incr(&self.metrics.errors);
                    Some(*reply)
                }
            },
            op @ (Op::MarketCreate(_)
            | Op::MarketMutate(_)
            | Op::Resolve(_)
            | Op::MarketDrop(_)) => match self.route_market(op) {
                Ok((shard, job)) => self.submit_async(id, 0, shard, job, token, seq, sink),
                Err(reply) => {
                    self.metrics.incr(&self.metrics.errors);
                    Some(*reply)
                }
            },
        }
    }

    fn health_reply(&self) -> Reply {
        self.metrics.incr(&self.metrics.health);
        Reply::Health(HealthInfo {
            schema: PROTOCOL_SCHEMA,
            accepting: self.is_accepting(),
            workers: self.workers as u64,
            queue_capacity: (self.config.queue_capacity * self.shards.len()) as u64,
            queue_depth: self.total_queue_depth(),
            shards: self.shards.len() as u64,
        })
    }

    fn metrics_reply(&self) -> Reply {
        self.metrics.incr(&self.metrics.metrics);
        let mut snap = self
            .metrics
            .snapshot(self.total_queue_depth(), self.total_cache_entries());
        if self.shards.len() > 1 {
            snap.shards = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    s.counters
                        .snapshot(i as u64, s.queue.len() as u64, s.cache.len() as u64)
                })
                .collect();
        }
        snap.market = self.metrics.market_snapshot(self.total_markets_open());
        Reply::Metrics(Box::new(snap))
    }

    fn shutdown_reply(&self) -> Reply {
        self.metrics.incr(&self.metrics.shutdown);
        self.begin_shutdown();
        Reply::ShuttingDown
    }

    /// Validates a solve and routes it: the shared front half of the
    /// sync and async submission paths.
    fn route_solve(&self, body: SolveBody) -> Result<(u64, usize, JobBody), Box<Reply>> {
        let (algorithm, backend) = validate_solve(&body)?;
        let key = solve_key(&body);
        let shard = self.route_hash(key.instance_hash);
        Ok((
            body.deadline_ms,
            shard,
            JobBody::Solve {
                body,
                algorithm,
                backend,
                key,
            },
        ))
    }

    /// Validates an analyze and routes it (shared by both paths).
    fn route_analyze(&self, body: AnalyzeBody) -> Result<(usize, JobBody), Box<Reply>> {
        if !(body.eps.is_finite() && body.eps >= 0.0) {
            return Err(Box::new(Reply::Error(ErrorInfo::new(
                kind::INVALID,
                format!("analyze eps must be finite and >= 0, got {}", body.eps),
            ))));
        }
        let shard = self.route_hash(instance_hash(&body.instance));
        Ok((shard, JobBody::Analyze(body)))
    }

    /// Validates a market op and routes it by the market id's label
    /// hash. Every op on one market lands on one shard, whose registry
    /// owns the market — the shard-affinity rule clients (and the
    /// router tier) can rely on.
    fn route_market(&self, op: Op) -> Result<(usize, JobBody), Box<Reply>> {
        let invalid =
            |message: String| Box::new(Reply::Error(ErrorInfo::new(kind::INVALID, message)));
        let job = match op {
            Op::MarketCreate(body) => {
                if !(body.eps > 0.0 && body.eps.is_finite()) {
                    return Err(invalid(format!(
                        "market eps must be positive and finite, got {}",
                        body.eps
                    )));
                }
                MarketJob::Create(body)
            }
            Op::MarketMutate(body) => MarketJob::Mutate(body),
            Op::Resolve(body) => {
                let mode = ResolveMode::parse(&body.mode).ok_or_else(|| {
                    invalid(format!(
                        "unknown resolve mode `{}` (expected auto, warm, or cold)",
                        body.mode
                    ))
                })?;
                MarketJob::Resolve {
                    market: body.market,
                    mode,
                }
            }
            Op::MarketDrop(body) => MarketJob::Drop(body.market),
            _ => unreachable!("route_market is only called with market ops"),
        };
        let shard = self.route_hash(label_hash(job.market()));
        Ok((shard, JobBody::Market(job)))
    }

    /// The shard an instance hash routes to. Deterministic in the hash
    /// and the shard count only — the property the cache depends on.
    fn route_hash(&self, hash: u64) -> usize {
        (hash % self.shards.len() as u64) as usize
    }

    /// The shard an instance spec routes to (exposed for tests and
    /// embedding; the service applies the same function internally).
    pub fn route(&self, instance: &crate::protocol::InstanceSpec) -> usize {
        self.route_hash(instance_hash(instance))
    }

    fn total_queue_depth(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.len() as u64).sum()
    }

    fn total_cache_entries(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.len() as u64).sum()
    }

    fn total_markets_open(&self) -> u64 {
        self.shards.iter().map(|s| s.registry.len() as u64).sum()
    }

    /// Enqueues a single job on `shard` and blocks until its reply.
    fn submit(&self, deadline_ms: u64, shard: usize, body: JobBody) -> Reply {
        if !self.is_accepting() {
            self.metrics.incr(&self.metrics.errors);
            return Reply::Error(ErrorInfo::new(
                kind::UNAVAILABLE,
                "service is shutting down",
            ));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            enqueued: Instant::now(),
            deadline_ms,
            body,
            reply: ReplyTo::Channel(reply_tx),
        };
        let s = &self.shards[shard];
        match s.queue.try_push(job) {
            Ok(depth) => self.observe_depth(shard, depth),
            Err(PushError::Full(_)) => {
                self.metrics.incr(&self.metrics.overloaded);
                self.metrics.incr(&s.counters.overloaded);
                return Reply::Overloaded(self.overload_info(shard));
            }
            Err(PushError::Closed(_)) => {
                self.metrics.incr(&self.metrics.errors);
                return Reply::Error(ErrorInfo::new(
                    kind::UNAVAILABLE,
                    "service is shutting down",
                ));
            }
        }
        match reply_rx.recv() {
            Ok(JobOutcome::One(reply)) => {
                self.count_reply(shard, &reply);
                reply
            }
            // A batch outcome for a single job, or a worker that died
            // (panicked) before replying: fail the request explicitly.
            Ok(JobOutcome::Many(_)) | Err(_) => {
                self.metrics.incr(&self.metrics.errors);
                Reply::Error(ErrorInfo::new(kind::SOLVE, "worker failed before replying"))
            }
        }
    }

    /// Validates, fans a batch out across shards (one admission per
    /// shard touched), and merges per-item outcomes in request order.
    fn submit_batch(&self, items: Vec<SolveBody>) -> Reply {
        if !self.is_accepting() {
            self.metrics.incr(&self.metrics.errors);
            return Reply::Error(ErrorInfo::new(
                kind::UNAVAILABLE,
                "service is shutting down",
            ));
        }
        let (mut results, groups) = self.plan_batch(items);
        let mut receivers = Vec::new();
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let s = &self.shards[shard];
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                enqueued: Instant::now(),
                deadline_ms: 0,
                body: JobBody::SolveBatch(group),
                reply: ReplyTo::Channel(reply_tx),
            };
            match s.queue.try_push(job) {
                Ok(depth) => {
                    self.observe_depth(shard, depth);
                    receivers.push((shard, reply_rx));
                }
                Err(refused) => self.fill_refused_group(&mut results, shard, refused),
            }
        }
        for (shard, reply_rx) in receivers {
            if let Ok(JobOutcome::Many(parts)) = reply_rx.recv() {
                for (index, item) in parts {
                    results[index] = Some((shard, item));
                }
            }
            // A dead worker leaves its slots `None`; merge_batch fills them.
        }
        self.merge_batch(results)
    }

    /// The async `solve_batch` path: same plan, but each shard group
    /// carries a [`BatchSlot`] and the last group to finish merges and
    /// delivers through the sink. A batch whose every item resolves at
    /// admission time (invalid, overloaded, refused, or empty) answers
    /// inline.
    #[allow(clippy::too_many_arguments)]
    fn submit_batch_async(
        self: &Arc<Self>,
        id: Option<u64>,
        items: Vec<SolveBody>,
        token: u64,
        seq: u64,
        sink: &Arc<dyn CompletionSink>,
    ) -> Option<Reply> {
        if !self.is_accepting() {
            self.metrics.incr(&self.metrics.errors);
            return Some(Reply::Error(ErrorInfo::new(
                kind::UNAVAILABLE,
                "service is shutting down",
            )));
        }
        let (results, groups) = self.plan_batch(items);
        let pending_groups = groups.iter().filter(|g| !g.is_empty()).count();
        if pending_groups == 0 {
            return Some(self.merge_batch(results));
        }
        let state = Arc::new(BatchState {
            service: Arc::downgrade(self),
            sink: Arc::clone(sink),
            token,
            seq,
            id,
            results: Mutex::new(results),
            remaining: AtomicUsize::new(pending_groups),
        });
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let job = Job {
                enqueued: Instant::now(),
                deadline_ms: 0,
                body: JobBody::SolveBatch(group),
                reply: ReplyTo::Batch(BatchSlot {
                    state: Arc::clone(&state),
                    shard,
                }),
            };
            match self.shards[shard].queue.try_push(job) {
                Ok(depth) => self.observe_depth(shard, depth),
                Err(refused) => {
                    // Fill the refused group's slots, then let the job's
                    // BatchSlot drop — the last drop finalizes, so a
                    // fully refused batch still answers exactly once.
                    let job = match refused {
                        PushError::Full(job) => {
                            let JobBody::SolveBatch(group) = &job.body else {
                                unreachable!("the refused job is the batch group")
                            };
                            let info = self.overload_info(shard);
                            let mut slots = state.results.lock().expect("batch results lock");
                            for item in group {
                                slots[item.index] =
                                    Some((shard, BatchItemResult::Overloaded(info.clone())));
                            }
                            drop(slots);
                            job
                        }
                        PushError::Closed(job) => {
                            let JobBody::SolveBatch(group) = &job.body else {
                                unreachable!("the refused job is the batch group")
                            };
                            let mut slots = state.results.lock().expect("batch results lock");
                            for item in group {
                                slots[item.index] = Some((
                                    shard,
                                    BatchItemResult::Error(ErrorInfo::new(
                                        kind::UNAVAILABLE,
                                        "service is shutting down",
                                    )),
                                ));
                            }
                            drop(slots);
                            job
                        }
                    };
                    drop(job);
                }
            }
        }
        None
    }

    /// Validates batch items and groups the admissible ones by routed
    /// shard; invalid items resolve immediately (consuming no capacity).
    /// Shared by the sync and async batch paths.
    #[allow(clippy::type_complexity)]
    fn plan_batch(
        &self,
        items: Vec<SolveBody>,
    ) -> (Vec<Option<(usize, BatchItemResult)>>, Vec<Vec<BatchItem>>) {
        let total = items.len();
        let mut results: Vec<Option<(usize, BatchItemResult)>> = (0..total).map(|_| None).collect();
        let mut groups: Vec<Vec<BatchItem>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (index, body) in items.into_iter().enumerate() {
            match validate_solve(&body) {
                Ok((algorithm, backend)) => {
                    let key = solve_key(&body);
                    let shard = self.route_hash(key.instance_hash);
                    groups[shard].push(BatchItem {
                        index,
                        body,
                        algorithm,
                        backend,
                        key,
                    });
                }
                Err(reply) => {
                    // Invalid items consume no queue capacity; the shard
                    // tag is irrelevant (errors are not shard-counted).
                    let Reply::Error(err) = *reply else {
                        unreachable!("validate_solve only fails with errors")
                    };
                    results[index] = Some((0, BatchItemResult::Error(err)));
                }
            }
        }
        (results, groups)
    }

    /// Resolves a refused sync batch group into its result slots.
    fn fill_refused_group(
        &self,
        results: &mut [Option<(usize, BatchItemResult)>],
        shard: usize,
        refused: PushError<Job>,
    ) {
        match refused {
            PushError::Full(job) => {
                let JobBody::SolveBatch(group) = job.body else {
                    unreachable!("the refused job is the batch group")
                };
                let info = self.overload_info(shard);
                for item in group {
                    results[item.index] = Some((shard, BatchItemResult::Overloaded(info.clone())));
                }
            }
            PushError::Closed(job) => {
                let JobBody::SolveBatch(group) = job.body else {
                    unreachable!("the refused job is the batch group")
                };
                for item in group {
                    results[item.index] = Some((
                        shard,
                        BatchItemResult::Error(ErrorInfo::new(
                            kind::UNAVAILABLE,
                            "service is shutting down",
                        )),
                    ));
                }
            }
        }
    }

    /// Counts per-item outcomes and assembles the batch reply in request
    /// order; unfilled slots become explicit "worker failed" errors.
    fn merge_batch(&self, results: Vec<Option<(usize, BatchItemResult)>>) -> Reply {
        let mut merged = Vec::with_capacity(results.len());
        for slot in results {
            let (shard, item) = slot.unwrap_or((
                0,
                BatchItemResult::Error(ErrorInfo::new(
                    kind::SOLVE,
                    "worker failed before replying",
                )),
            ));
            self.count_item(shard, &item);
            merged.push(item);
        }
        Reply::SolvedBatch(BatchResult { items: merged })
    }

    /// Enqueues a single job for asynchronous completion. `None` means
    /// admitted (the response will arrive via the sink); `Some` is an
    /// inline refusal, counted exactly like the sync path.
    #[allow(clippy::too_many_arguments)]
    fn submit_async(
        self: &Arc<Self>,
        id: Option<u64>,
        deadline_ms: u64,
        shard: usize,
        body: JobBody,
        token: u64,
        seq: u64,
        sink: &Arc<dyn CompletionSink>,
    ) -> Option<Reply> {
        if !self.is_accepting() {
            self.metrics.incr(&self.metrics.errors);
            return Some(Reply::Error(ErrorInfo::new(
                kind::UNAVAILABLE,
                "service is shutting down",
            )));
        }
        let job = Job {
            enqueued: Instant::now(),
            deadline_ms,
            body,
            reply: ReplyTo::Reactor(AsyncReply {
                service: Arc::downgrade(self),
                sink: Arc::clone(sink),
                token,
                seq,
                id,
                shard,
                armed: true,
            }),
        };
        let s = &self.shards[shard];
        match s.queue.try_push(job) {
            Ok(depth) => {
                self.observe_depth(shard, depth);
                None
            }
            Err(PushError::Full(job)) => {
                job.disarm();
                self.metrics.incr(&self.metrics.overloaded);
                self.metrics.incr(&s.counters.overloaded);
                Some(Reply::Overloaded(self.overload_info(shard)))
            }
            Err(PushError::Closed(job)) => {
                job.disarm();
                self.metrics.incr(&self.metrics.errors);
                Some(Reply::Error(ErrorInfo::new(
                    kind::UNAVAILABLE,
                    "service is shutting down",
                )))
            }
        }
    }

    /// Records a post-push queue depth in both books (aggregate peak is
    /// the max over shard observations).
    fn observe_depth(&self, shard: usize, depth: usize) {
        self.metrics.observe_queue_depth(depth as u64);
        self.shards[shard]
            .counters
            .queue_peak
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn overload_info(&self, shard: usize) -> OverloadInfo {
        let q = &self.shards[shard].queue;
        OverloadInfo::new(q.capacity() as u64, q.len() as u64)
    }

    /// Attributes a worker-produced reply to the outcome counters —
    /// aggregate and shard books at the same site, so shard counters sum
    /// exactly to the totals (the invariant `loadgen` verifies against
    /// `metrics`).
    fn count_reply(&self, shard: usize, reply: &Reply) {
        let m = &self.metrics;
        let c = &self.shards[shard].counters;
        match reply {
            Reply::Solved(result) => self.count_solved(shard, result),
            Reply::Analyzed(_) => {
                m.incr(&m.analyzed);
                m.incr(&c.analyzed);
            }
            Reply::DeadlineExceeded(_) => {
                m.incr(&m.deadline_exceeded);
                m.incr(&c.deadline_exceeded);
            }
            // Errors are deliberately aggregate-only: malformed frames,
            // invalid parameters, and shutdown refusals never reach a
            // shard, so a shard `errors` column could not sum to the
            // aggregate.
            Reply::Error(_) => m.incr(&m.errors),
            // Market counters are aggregate-only too: one market pins to
            // one shard, so shard columns would partition by market id.
            Reply::MarketCreated(_) => m.incr(&m.markets_created),
            Reply::MarketMutated(info) => m.add(&m.market_mutations, info.applied),
            Reply::Resolved(result) => {
                if result.mode == "warm" {
                    m.incr(&m.warm_resolves);
                    m.add(&m.warm_rounds_total, result.rounds);
                } else {
                    m.incr(&m.cold_resolves);
                    m.add(&m.cold_rounds_total, result.rounds);
                }
                if result.fallback {
                    m.incr(&m.market_fallbacks);
                }
            }
            Reply::MarketDropped(_) => m.incr(&m.markets_dropped),
            // Workers never produce the remaining variants.
            _ => {}
        }
    }

    /// Per-item accounting for batch outcomes (the item-shaped mirror of
    /// [`count_reply`](Service::count_reply)).
    fn count_item(&self, shard: usize, item: &BatchItemResult) {
        let m = &self.metrics;
        let c = &self.shards[shard].counters;
        match item {
            BatchItemResult::Solved(result) => self.count_solved(shard, result),
            BatchItemResult::Overloaded(_) => {
                m.incr(&m.overloaded);
                m.incr(&c.overloaded);
            }
            BatchItemResult::DeadlineExceeded(_) => {
                m.incr(&m.deadline_exceeded);
                m.incr(&c.deadline_exceeded);
            }
            BatchItemResult::Error(_) => m.incr(&m.errors),
        }
    }

    fn count_solved(&self, shard: usize, result: &SolveResult) {
        let m = &self.metrics;
        let c = &self.shards[shard].counters;
        m.incr(&m.solved);
        m.incr(&c.solved);
        m.add(&m.rounds_total, result.rounds);
        m.add(&c.rounds_total, result.rounds);
        m.add(&m.messages_total, result.messages);
        m.add(&c.messages_total, result.messages);
        m.add(&m.blocking_pairs_total, result.blocking_pairs);
        m.add(&c.blocking_pairs_total, result.blocking_pairs);
        m.add(&m.matched_total, result.matched);
        m.add(&c.matched_total, result.matched);
        if result.cached {
            m.incr(&m.cache_hits);
            m.incr(&c.cache_hits);
        } else {
            m.incr(&m.cache_misses);
            m.incr(&c.cache_misses);
        }
    }

    /// Whether new solve/analyze jobs are admitted.
    pub fn is_accepting(&self) -> bool {
        self.accepting.load(Ordering::SeqCst)
    }

    /// Begins graceful shutdown: stop admitting, close every shard
    /// queue. Idempotent; already-queued jobs still run to completion.
    pub fn begin_shutdown(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        for shard in &self.shards {
            shard.queue.close();
        }
    }

    /// Blocks until every accepted job has been drained and the workers
    /// have exited. Implies [`begin_shutdown`](Service::begin_shutdown).
    pub fn join(&self) {
        self.begin_shutdown();
        let pool = self.pool.lock().expect("pool lock poisoned").take();
        if let Some(pool) = pool {
            pool.join();
        }
    }

    /// The live metrics handle (for tests and embedding).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of shards actually running (config clamped to ≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl FrameHandler for Service {
    fn handle_frame(
        self: Arc<Self>,
        line: &str,
        token: u64,
        seq: u64,
        sink: &Arc<dyn CompletionSink>,
    ) -> Option<String> {
        self.handle_line_async(line, token, seq, sink)
    }

    fn is_accepting(&self) -> bool {
        Service::is_accepting(self)
    }

    fn begin_shutdown(&self) {
        Service::begin_shutdown(self);
    }

    fn join_work(&self) {
        Service::join(self);
    }

    fn frames_served(&self) -> u64 {
        self.metrics.received.load(Ordering::SeqCst)
    }
}

/// Builds the cache/routing key for a solve request.
fn solve_key(body: &SolveBody) -> SolveKey {
    SolveKey::new(
        &body.instance,
        &body.algorithm,
        body.eps,
        body.delta,
        body.seed,
        &body.backend,
        body.cycles,
    )
}

/// Pre-admission validation: everything that can be rejected without
/// building the instance.
fn validate_solve(body: &SolveBody) -> Result<(Algorithm, MatcherBackend), Box<Reply>> {
    let invalid = |message: String| Box::new(Reply::Error(ErrorInfo::new(kind::INVALID, message)));
    let algorithm = Algorithm::parse(&body.algorithm)
        .ok_or_else(|| invalid(format!("unknown algorithm `{}`", body.algorithm)))?;
    let backend = crate::protocol::parse_backend(&body.backend)
        .ok_or_else(|| invalid(format!("unknown backend `{}`", body.backend)))?;
    match algorithm {
        Algorithm::Asm => {
            let config = asm_config(body.eps, backend, body.seed);
            config
                .validate()
                .map_err(|err| invalid(format!("invalid asm parameters: {err}")))?;
        }
        Algorithm::RandAsm | Algorithm::AlmostRegular => {
            if !(body.eps > 0.0 && body.eps.is_finite()) {
                return Err(invalid(format!(
                    "eps must be positive and finite, got {}",
                    body.eps
                )));
            }
            if !(body.delta > 0.0 && body.delta < 1.0) {
                return Err(invalid(format!(
                    "delta must be in (0, 1), got {}",
                    body.delta
                )));
            }
        }
        Algorithm::Gs | Algorithm::TruncatedGs => {}
    }
    Ok((algorithm, backend))
}

/// Builds an [`AsmConfig`] by struct literal — [`AsmConfig::new`] panics
/// on bad ε, and untrusted input must never panic the worker.
fn asm_config(eps: f64, backend: MatcherBackend, seed: u64) -> AsmConfig {
    AsmConfig {
        epsilon: eps,
        quantiles: None,
        delta_override: None,
        inner_multiplier: 1.0,
        backend,
        seed,
        early_exit: true,
    }
}

thread_local! {
    /// Per-worker scratch for blocking-pair audits (satellite of the
    /// blocking-pair hot-path work: no per-job allocation).
    static SCRATCH: std::cell::RefCell<BlockingScratch> =
        std::cell::RefCell::new(BlockingScratch::new());
}

/// Executes one dequeued job on a worker thread against its shard's
/// cache and market registry.
fn run_job(
    job: Job,
    cache: &ResultCache,
    registry: &MarketRegistry,
    metrics: &Metrics,
    delay_ms: u64,
) {
    let Job {
        enqueued,
        deadline_ms,
        body,
        reply,
    } = job;
    let delay = || {
        if delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }
    };
    let expired =
        |deadline_ms: u64| deadline_ms > 0 && enqueued.elapsed().as_millis() as u64 > deadline_ms;
    let outcome = match body {
        JobBody::Solve {
            body,
            algorithm,
            backend,
            key,
        } => {
            delay();
            JobOutcome::One(if expired(deadline_ms) {
                Reply::DeadlineExceeded(DeadlineInfo { deadline_ms })
            } else {
                run_solve(&body, algorithm, backend, key, cache)
            })
        }
        JobBody::Analyze(body) => {
            delay();
            JobOutcome::One(if expired(deadline_ms) {
                Reply::DeadlineExceeded(DeadlineInfo { deadline_ms })
            } else {
                run_analyze(&body)
            })
        }
        JobBody::Market(market_job) => {
            delay();
            JobOutcome::One(run_market(market_job, registry))
        }
        JobBody::SolveBatch(group) => {
            let mut parts = Vec::with_capacity(group.len());
            for item in group {
                delay();
                let reply = if expired(item.body.deadline_ms) {
                    Reply::DeadlineExceeded(DeadlineInfo {
                        deadline_ms: item.body.deadline_ms,
                    })
                } else {
                    run_solve(&item.body, item.algorithm, item.backend, item.key, cache)
                };
                parts.push((item.index, to_item_result(reply)));
            }
            JobOutcome::Many(parts)
        }
    };
    metrics.observe_latency_us(enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    match reply {
        // A disconnected receiver means the connection died; nothing to do.
        ReplyTo::Channel(tx) => {
            let _ = tx.send(outcome);
        }
        ReplyTo::Reactor(async_reply) => {
            let reply = match outcome {
                JobOutcome::One(reply) => reply,
                JobOutcome::Many(_) => Reply::Error(ErrorInfo::new(
                    kind::SOLVE,
                    "unexpected batch outcome for a single job",
                )),
            };
            async_reply.deliver(reply);
        }
        // The slot's Drop decrements the group count; the last group
        // finalizes and delivers the merged batch.
        ReplyTo::Batch(slot) => slot.deliver(outcome),
    }
}

/// Narrows a worker reply to the batch-item outcome set.
fn to_item_result(reply: Reply) -> BatchItemResult {
    match reply {
        Reply::Solved(result) => BatchItemResult::Solved(result),
        Reply::DeadlineExceeded(info) => BatchItemResult::DeadlineExceeded(info),
        Reply::Error(err) => BatchItemResult::Error(err),
        other => BatchItemResult::Error(ErrorInfo::new(
            kind::SOLVE,
            format!("unexpected worker reply `{}`", other.tag()),
        )),
    }
}

fn run_solve(
    body: &SolveBody,
    algorithm: Algorithm,
    backend: MatcherBackend,
    key: SolveKey,
    cache: &ResultCache,
) -> Reply {
    if let Some(hit) = cache.get(&key) {
        return Reply::Solved(hit);
    }
    let inst = body.instance.build();
    let (matching, rounds, messages) = match algorithm {
        Algorithm::Asm => match asm(&inst, &asm_config(body.eps, backend, body.seed)) {
            Ok(report) => {
                let messages = report.proposals + report.acceptances + report.rejections;
                (report.matching, report.rounds, messages)
            }
            Err(err) => return solve_error(err),
        },
        Algorithm::RandAsm => {
            let params = RandAsmParams::new(body.eps, body.delta).with_seed(body.seed);
            match rand_asm(&inst, &params) {
                Ok(report) => {
                    let messages = report.proposals + report.acceptances + report.rejections;
                    (report.matching, report.rounds, messages)
                }
                Err(err) => return solve_error(err),
            }
        }
        Algorithm::AlmostRegular => {
            let params = AlmostRegularParams::new(body.eps, body.delta).with_seed(body.seed);
            match almost_regular_asm(&inst, &params) {
                Ok(report) => {
                    let messages = report.proposals + report.acceptances + report.rejections;
                    (report.matching, report.rounds, messages)
                }
                Err(err) => return solve_error(err),
            }
        }
        Algorithm::Gs => {
            let report = distributed_gs(&inst);
            (report.matching, report.rounds, report.proposals)
        }
        Algorithm::TruncatedGs => {
            let report = if body.cycles == 0 {
                distributed_gs(&inst)
            } else {
                truncated_gs(&inst, body.cycles)
            };
            (report.matching, report.rounds, report.proposals)
        }
    };
    let stability = SCRATCH
        .with(|scratch| StabilityReport::analyze_with(&inst, &matching, &mut scratch.borrow_mut()));
    let result = SolveResult {
        matched: stability.matching_size as u64,
        num_edges: stability.num_edges as u64,
        blocking_pairs: stability.blocking_pairs as u64,
        rounds,
        messages,
        matching,
        cached: false,
    };
    cache.put(key, result.clone());
    Reply::Solved(result)
}

fn solve_error(err: impl std::fmt::Display) -> Reply {
    Reply::Error(ErrorInfo::new(kind::SOLVE, err.to_string()))
}

/// Executes one market op against the owning shard's registry. All
/// market failures are `invalid` errors — the request named a market or
/// mutation the registry cannot honor; nothing here is a solver fault.
fn run_market(job: MarketJob, registry: &MarketRegistry) -> Reply {
    let invalid = |message: String| Reply::Error(ErrorInfo::new(kind::INVALID, message));
    match job {
        MarketJob::Create(body) => {
            let inst = body.instance.build();
            let state = match MarketState::from_instance(&inst, body.eps) {
                Ok(state) => state,
                Err(err) => return invalid(err.to_string()),
            };
            let info = MarketCreatedInfo {
                market: body.market.clone(),
                agents: state.agents() as u64,
                num_edges: state.num_edges() as u64,
                epoch: state.epoch(),
            };
            match registry.create(&body.market, state) {
                Ok(()) => Reply::MarketCreated(info),
                Err(err) => invalid(err.to_string()),
            }
        }
        MarketJob::Mutate(body) => {
            let Some(handle) = registry.get(&body.market) else {
                return invalid(format!("unknown market `{}`", body.market));
            };
            let mut state = handle.lock().expect("market lock");
            for (i, op) in body.ops.iter().enumerate() {
                if let Err(err) = state.apply(op) {
                    // The first invalid op stops the batch; ops before it
                    // stay applied (each bumped the epoch), and the error
                    // names how far the batch got so clients can resync.
                    return invalid(format!(
                        "mutation {i} rejected after {i} of {} applied: {err}",
                        body.ops.len()
                    ));
                }
            }
            let (dirty_men, dirty_women) = state.dirty_counts();
            Reply::MarketMutated(MarketMutatedInfo {
                market: body.market.clone(),
                applied: body.ops.len() as u64,
                dirty_men: dirty_men as u64,
                dirty_women: dirty_women as u64,
                epoch: state.epoch(),
            })
        }
        MarketJob::Resolve { market, mode } => {
            let Some(handle) = registry.get(&market) else {
                return invalid(format!("unknown market `{market}`"));
            };
            let mut state = handle.lock().expect("market lock");
            let report = state.resolve(mode);
            Reply::Resolved(ResolveResult {
                matching: report.matching,
                matched: report.matched,
                num_edges: report.num_edges,
                blocking_pairs: report.blocking_pairs,
                rounds: report.rounds,
                proposals: report.proposals,
                mode: if report.warm { "warm" } else { "cold" }.to_string(),
                fallback: report.fallback,
                epoch: report.epoch,
            })
        }
        MarketJob::Drop(market) => {
            let Some(handle) = registry.drop_market(&market) else {
                return invalid(format!("unknown market `{market}`"));
            };
            let epoch = handle.lock().expect("market lock").epoch();
            Reply::MarketDropped(MarketDroppedInfo { market, epoch })
        }
    }
}

fn run_analyze(body: &AnalyzeBody) -> Reply {
    let inst = body.instance.build();
    // Untrusted matchings must be verified before analysis: `Matching`
    // indexing panics on out-of-range ids.
    if let Err(err) = verify_matching(&inst, &body.matching) {
        return Reply::Error(ErrorInfo::new(
            kind::INVALID,
            format!("matching does not fit instance: {err}"),
        ));
    }
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let stability = StabilityReport::analyze_with(&inst, &body.matching, scratch);
        let eps_blocking = count_eps_blocking_pairs_with(&inst, &body.matching, body.eps, scratch);
        Reply::Analyzed(AnalyzeResult {
            matched: stability.matching_size as u64,
            num_edges: stability.num_edges as u64,
            blocking_pairs: stability.blocking_pairs as u64,
            unmatched_men: stability.unmatched_men as u64,
            unmatched_women: stability.unmatched_women as u64,
            eps_blocking_pairs: eps_blocking as u64,
            one_minus_eps_stable: stability.is_one_minus_eps_stable(body.eps),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_response, BatchBody, InstanceSpec, MarketDropBody, ResolveBody};
    use asm_instance::generators::GeneratorConfig;
    use asm_market::{MutationOp, Side};

    fn service() -> Arc<Service> {
        Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 8,
            worker_delay_ms: 0,
            shards: 1,
        })
    }

    fn solve_body(seed: u64, algorithm: &str) -> SolveBody {
        SolveBody {
            instance: InstanceSpec::Generator(GeneratorConfig::Regular { n: 12, d: 4, seed }),
            algorithm: algorithm.to_string(),
            eps: 0.5,
            delta: 0.1,
            seed: 1,
            backend: "greedy".to_string(),
            deadline_ms: 0,
            cycles: 4,
        }
    }

    fn solve_line(id: u64, seed: u64, algorithm: &str) -> String {
        crate::protocol::render(&Request {
            id: Some(id),
            op: Op::Solve(solve_body(seed, algorithm)),
        })
    }

    fn batch_line(id: u64, items: Vec<SolveBody>) -> String {
        crate::protocol::render(&Request {
            id: Some(id),
            op: Op::SolveBatch(BatchBody { items }),
        })
    }

    fn reply_of(service: &Service, line: &str) -> Reply {
        parse_response(&service.handle_line(line)).unwrap().reply
    }

    #[test]
    fn solve_produces_a_verified_matching_for_every_algorithm() {
        let service = service();
        for (id, algorithm) in ["asm", "rand-asm", "almost-regular", "gs", "truncated-gs"]
            .iter()
            .enumerate()
        {
            match reply_of(&service, &solve_line(id as u64, 3, algorithm)) {
                Reply::Solved(result) => {
                    assert_eq!(result.matched, result.matching.len() as u64, "{algorithm}");
                    assert!(!result.cached);
                }
                other => panic!("{algorithm}: expected solved, got {other:?}"),
            }
        }
        service.join();
    }

    #[test]
    fn identical_solves_hit_the_cache_with_identical_payloads() {
        let service = service();
        let first = reply_of(&service, &solve_line(1, 5, "asm"));
        let second = reply_of(&service, &solve_line(2, 5, "asm"));
        let (Reply::Solved(a), Reply::Solved(b)) = (first, second) else {
            panic!("expected two solved replies");
        };
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.rounds, b.rounds);
        let snap = service.metrics().snapshot(0, 0);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        service.join();
    }

    #[test]
    fn invalid_parameters_are_rejected_before_the_queue() {
        let service = service();
        for line in [
            solve_line(1, 1, "quantum"),
            solve_line(2, 1, "asm").replace("\"eps\":0.5", "\"eps\":-1.0"),
            solve_line(3, 1, "asm").replace("\"backend\":\"greedy\"", "\"backend\":\"magic\""),
        ] {
            match reply_of(&service, &line) {
                Reply::Error(err) => assert_eq!(err.kind, kind::INVALID, "{line}"),
                other => panic!("expected invalid error, got {other:?}"),
            }
        }
        assert_eq!(service.metrics().snapshot(0, 0).errors, 3);
        service.join();
    }

    #[test]
    fn malformed_frames_get_null_id_errors() {
        let service = service();
        let out = service.handle_line("{not json");
        assert!(out.starts_with("{\"id\":null,\"reply\":\"error\""), "{out}");
        let snap = service.metrics().snapshot(0, 0);
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.errors, 1);
        service.join();
    }

    #[test]
    fn shutdown_refuses_new_work_but_health_still_answers() {
        let service = service();
        assert!(matches!(
            reply_of(&service, "{\"id\":1,\"op\":\"shutdown\"}"),
            Reply::ShuttingDown
        ));
        match reply_of(&service, &solve_line(2, 1, "asm")) {
            Reply::Error(err) => assert_eq!(err.kind, kind::UNAVAILABLE),
            other => panic!("expected unavailable, got {other:?}"),
        }
        match reply_of(&service, "{\"id\":3,\"op\":\"health\"}") {
            Reply::Health(health) => assert!(!health.accepting),
            other => panic!("expected health, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn queue_wait_deadline_expires_deterministically() {
        // One worker sleeping 40 ms per job: the second job waits ≥ 40 ms,
        // far past its 5 ms deadline.
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
            worker_delay_ms: 40,
            shards: 1,
        });
        let line = solve_line(1, 1, "gs").replace("\"deadline_ms\":0", "\"deadline_ms\":5");
        let service2 = Arc::clone(&service);
        let line2 = line.clone();
        let racer = std::thread::spawn(move || reply_of(&service2, &line2));
        let local = reply_of(&service, &line);
        let remote = racer.join().unwrap();
        let deadline_count = [&local, &remote]
            .iter()
            .filter(|r| matches!(r, Reply::DeadlineExceeded(_)))
            .count();
        assert!(deadline_count >= 1, "got {local:?} and {remote:?}");
        service.join();
    }

    #[test]
    fn zero_capacity_queue_is_always_overloaded() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 0,
            cache_capacity: 0,
            worker_delay_ms: 0,
            shards: 1,
        });
        match reply_of(&service, &solve_line(1, 1, "gs")) {
            Reply::Overloaded(info) => assert_eq!(info.queue_capacity, 0),
            other => panic!("expected overloaded, got {other:?}"),
        }
        assert_eq!(service.metrics().snapshot(0, 0).overloaded, 1);
        service.join();
    }

    #[test]
    fn analyze_verifies_untrusted_matchings() {
        let service = service();
        let inst = asm_instance::generators::complete(4, 1);
        let body = AnalyzeBody {
            instance: InstanceSpec::Inline(inst),
            matching: asm_matching::Matching::new(2), // too small: 8 players
            eps: 0.5,
        };
        let line = crate::protocol::render(&Request {
            id: Some(1),
            op: Op::Analyze(body),
        });
        match reply_of(&service, &line) {
            Reply::Error(err) => assert_eq!(err.kind, kind::INVALID),
            other => panic!("expected invalid, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn analyze_audits_a_solved_matching_consistently() {
        let service = service();
        let Reply::Solved(result) = reply_of(&service, &solve_line(1, 9, "asm")) else {
            panic!("expected solved");
        };
        let body = AnalyzeBody {
            instance: InstanceSpec::Generator(GeneratorConfig::Regular {
                n: 12,
                d: 4,
                seed: 9,
            }),
            matching: result.matching,
            eps: 0.5,
        };
        let line = crate::protocol::render(&Request {
            id: Some(2),
            op: Op::Analyze(body),
        });
        match reply_of(&service, &line) {
            Reply::Analyzed(analyzed) => {
                assert_eq!(analyzed.blocking_pairs, result.blocking_pairs);
                assert_eq!(analyzed.matched, result.matched);
                assert!(analyzed.one_minus_eps_stable);
            }
            other => panic!("expected analyzed, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn join_drains_accepted_jobs() {
        let service = Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 0,
            worker_delay_ms: 1,
            shards: 1,
        });
        let mut handles = Vec::new();
        for i in 0..8 {
            let service = Arc::clone(&service);
            handles.push(std::thread::spawn(move || {
                reply_of(&service, &solve_line(i, i, "gs"))
            }));
        }
        // Let some submissions land, then shut down under load.
        std::thread::sleep(std::time::Duration::from_millis(2));
        service.begin_shutdown();
        let replies: Vec<Reply> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        service.join();
        // Every accepted job was answered: each reply is solved or an
        // explicit unavailable refusal — never a hang, never a lost job.
        let solved = replies
            .iter()
            .filter(|r| matches!(r, Reply::Solved(_)))
            .count();
        let refused = replies
            .iter()
            .filter(|r| matches!(r, Reply::Error(e) if e.kind == kind::UNAVAILABLE))
            .count();
        assert_eq!(solved + refused, 8, "{replies:?}");
        let snap = service.metrics().snapshot(0, 0);
        assert_eq!(snap.solved as usize, solved);
    }

    #[test]
    fn batch_merges_outcomes_in_request_order_across_shards() {
        let service = Service::start(ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            cache_capacity: 8,
            worker_delay_ms: 0,
            shards: 4,
        });
        let mut invalid = solve_body(3, "quantum");
        invalid.seed = 99;
        let items = vec![
            solve_body(1, "gs"),
            invalid,
            solve_body(2, "asm"),
            solve_body(1, "gs"), // duplicate of item 0: same shard, cached
        ];
        let Reply::SolvedBatch(batch) = reply_of(&service, &batch_line(7, items)) else {
            panic!("expected solved_batch");
        };
        assert_eq!(batch.items.len(), 4);
        let BatchItemResult::Solved(first) = &batch.items[0] else {
            panic!("item 0: {:?}", batch.items[0]);
        };
        assert!(!first.cached);
        let BatchItemResult::Error(err) = &batch.items[1] else {
            panic!("item 1: {:?}", batch.items[1]);
        };
        assert_eq!(err.kind, kind::INVALID);
        assert!(matches!(&batch.items[2], BatchItemResult::Solved(_)));
        let BatchItemResult::Solved(last) = &batch.items[3] else {
            panic!("item 3: {:?}", batch.items[3]);
        };
        assert!(last.cached, "duplicate item must hit the shard cache");
        assert_eq!(last.matching, first.matching);
        let snap = service.metrics().snapshot(0, 0);
        assert_eq!(snap.solved, 3);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        service.join();
    }

    #[test]
    fn batch_against_a_full_queue_reports_every_item_overloaded() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 0,
            cache_capacity: 0,
            worker_delay_ms: 0,
            shards: 2,
        });
        let items = vec![
            solve_body(1, "gs"),
            solve_body(2, "gs"),
            solve_body(3, "gs"),
        ];
        let Reply::SolvedBatch(batch) = reply_of(&service, &batch_line(1, items)) else {
            panic!("expected solved_batch");
        };
        assert!(batch
            .items
            .iter()
            .all(|i| matches!(i, BatchItemResult::Overloaded(_))));
        assert_eq!(service.metrics().snapshot(0, 0).overloaded, 3);
        service.join();
    }

    #[test]
    fn empty_batch_is_answered_empty() {
        let service = service();
        let Reply::SolvedBatch(batch) = reply_of(&service, &batch_line(1, Vec::new())) else {
            panic!("expected solved_batch");
        };
        assert!(batch.items.is_empty());
        service.join();
    }

    #[test]
    fn batch_after_shutdown_is_unavailable() {
        let service = service();
        service.begin_shutdown();
        match reply_of(&service, &batch_line(1, vec![solve_body(1, "gs")])) {
            Reply::Error(err) => assert_eq!(err.kind, kind::UNAVAILABLE),
            other => panic!("expected unavailable, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn sharded_service_keeps_cache_hits_and_books_balanced() {
        let service = Service::start(ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            cache_capacity: 8,
            worker_delay_ms: 0,
            shards: 4,
        });
        assert_eq!(service.shard_count(), 4);
        for (id, seed) in [(1, 5), (2, 5), (3, 6), (4, 6)] {
            assert!(matches!(
                reply_of(&service, &solve_line(id, seed, "asm")),
                Reply::Solved(_)
            ));
        }
        let Reply::Metrics(snap) = reply_of(&service, "{\"id\":9,\"op\":\"metrics\"}") else {
            panic!("expected metrics");
        };
        assert_eq!(snap.solved, 4);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.shards.len(), 4);
        let sum =
            |f: fn(&crate::metrics::ShardSnapshot) -> u64| snap.shards.iter().map(f).sum::<u64>();
        assert_eq!(sum(|s| s.solved), snap.solved);
        assert_eq!(sum(|s| s.cache_hits), snap.cache_hits);
        assert_eq!(sum(|s| s.cache_misses), snap.cache_misses);
        assert_eq!(sum(|s| s.matched_total), snap.matched_total);
        assert_eq!(
            snap.shards.iter().map(|s| s.queue_peak).max().unwrap(),
            snap.queue_peak
        );
        service.join();
    }

    fn create_line(id: u64, market: &str, eps: f64) -> String {
        crate::protocol::render(&Request {
            id: Some(id),
            op: Op::MarketCreate(MarketCreateBody {
                market: market.to_string(),
                instance: InstanceSpec::Generator(GeneratorConfig::Regular {
                    n: 12,
                    d: 4,
                    seed: 7,
                }),
                eps,
            }),
        })
    }

    fn resolve_line(id: u64, market: &str, mode: &str) -> String {
        crate::protocol::render(&Request {
            id: Some(id),
            op: Op::Resolve(ResolveBody {
                market: market.to_string(),
                mode: mode.to_string(),
            }),
        })
    }

    #[test]
    fn market_lifecycle_warms_resolves_and_balances_the_books() {
        let service = Service::start(ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            cache_capacity: 8,
            worker_delay_ms: 0,
            shards: 4,
        });
        let Reply::MarketCreated(created) = reply_of(&service, &create_line(1, "alpha", 0.5))
        else {
            panic!("expected market_created");
        };
        assert_eq!(created.market, "alpha");
        assert_eq!(created.agents, 24);
        assert_eq!(created.epoch, 0);
        match reply_of(&service, &create_line(2, "alpha", 0.5)) {
            Reply::Error(err) => assert_eq!(err.kind, kind::INVALID),
            other => panic!("duplicate create: {other:?}"),
        }
        // The first resolve has no cached matching: cold, not a fallback.
        let Reply::Resolved(cold) = reply_of(&service, &resolve_line(3, "alpha", "auto")) else {
            panic!("expected resolved");
        };
        assert_eq!(cold.mode, "cold");
        assert!(!cold.fallback);
        assert_eq!(cold.blocking_pairs, 0);
        let mutate = crate::protocol::render(&Request {
            id: Some(4),
            op: Op::MarketMutate(MarketMutateBody {
                market: "alpha".to_string(),
                ops: vec![MutationOp::RemoveAgent {
                    side: Side::Men,
                    index: 0,
                }],
            }),
        });
        let Reply::MarketMutated(mutated) = reply_of(&service, &mutate) else {
            panic!("expected market_mutated");
        };
        assert_eq!(mutated.applied, 1);
        assert_eq!(mutated.epoch, 1);
        assert_eq!(mutated.dirty_men, 1);
        // One dirty man out of 24 agents is far under the dirty limit:
        // auto re-enters warm and stays fully stable.
        let Reply::Resolved(warm) = reply_of(&service, &resolve_line(5, "alpha", "auto")) else {
            panic!("expected resolved");
        };
        assert_eq!(warm.mode, "warm");
        assert!(!warm.fallback);
        assert_eq!(warm.blocking_pairs, 0);
        assert_eq!(warm.epoch, 1);
        assert!(
            warm.rounds <= cold.rounds,
            "{} > {}",
            warm.rounds,
            cold.rounds
        );
        let Reply::Metrics(snap) = reply_of(&service, "{\"id\":6,\"op\":\"metrics\"}") else {
            panic!("expected metrics");
        };
        let market = snap.market.expect("market block present after activity");
        assert_eq!(market.markets_open, 1);
        assert_eq!(market.markets_created, 1);
        assert_eq!(market.mutations, 1);
        assert_eq!(market.warm_resolves, 1);
        assert_eq!(market.cold_resolves, 1);
        assert_eq!(market.fallbacks, 0);
        assert_eq!(market.cold_rounds_total, cold.rounds);
        assert_eq!(market.warm_rounds_total, warm.rounds);
        let drop_line = crate::protocol::render(&Request {
            id: Some(7),
            op: Op::MarketDrop(MarketDropBody {
                market: "alpha".to_string(),
            }),
        });
        let Reply::MarketDropped(dropped) = reply_of(&service, &drop_line) else {
            panic!("expected market_dropped");
        };
        assert_eq!(dropped.epoch, 1);
        match reply_of(&service, &resolve_line(8, "alpha", "cold")) {
            Reply::Error(err) => assert_eq!(err.kind, kind::INVALID),
            other => panic!("resolve after drop: {other:?}"),
        }
        service.join();
    }

    #[test]
    fn market_validation_rejects_before_the_queue() {
        let service = service();
        // Bad eps on create, unknown resolve mode, unknown market on
        // mutate, invalid mutation index — all invalid, never queued.
        match reply_of(&service, &create_line(1, "m", 0.0)) {
            Reply::Error(err) => assert_eq!(err.kind, kind::INVALID),
            other => panic!("bad eps: {other:?}"),
        }
        match reply_of(&service, &resolve_line(2, "m", "lukewarm")) {
            Reply::Error(err) => {
                assert_eq!(err.kind, kind::INVALID);
                assert!(err.message.contains("lukewarm"), "{}", err.message);
            }
            other => panic!("bad mode: {other:?}"),
        }
        let mutate_unknown = crate::protocol::render(&Request {
            id: Some(3),
            op: Op::MarketMutate(MarketMutateBody {
                market: "ghost".to_string(),
                ops: Vec::new(),
            }),
        });
        match reply_of(&service, &mutate_unknown) {
            Reply::Error(err) => assert_eq!(err.kind, kind::INVALID),
            other => panic!("unknown market: {other:?}"),
        }
        assert!(matches!(
            reply_of(&service, &create_line(4, "m", 0.5)),
            Reply::MarketCreated(_)
        ));
        let mutate_bad = crate::protocol::render(&Request {
            id: Some(5),
            op: Op::MarketMutate(MarketMutateBody {
                market: "m".to_string(),
                ops: vec![MutationOp::RemoveAgent {
                    side: Side::Women,
                    index: 99,
                }],
            }),
        });
        match reply_of(&service, &mutate_bad) {
            Reply::Error(err) => {
                assert_eq!(err.kind, kind::INVALID);
                assert!(err.message.contains("0 of 1 applied"), "{}", err.message);
            }
            other => panic!("bad mutation: {other:?}"),
        }
        // The failed batch applied nothing: the epoch is untouched.
        let Reply::Resolved(result) = reply_of(&service, &resolve_line(6, "m", "cold")) else {
            panic!("expected resolved");
        };
        assert_eq!(result.epoch, 0);
        service.join();
    }

    #[test]
    fn single_shard_metrics_omit_the_shards_array() {
        let service = service();
        let Reply::Metrics(snap) = reply_of(&service, "{\"id\":1,\"op\":\"metrics\"}") else {
            panic!("expected metrics");
        };
        assert!(snap.shards.is_empty());
        service.join();
    }

    #[test]
    fn health_reports_aggregate_capacity_and_shards() {
        let service = Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 0,
            worker_delay_ms: 0,
            shards: 4,
        });
        let Reply::Health(health) = reply_of(&service, "{\"id\":1,\"op\":\"health\"}") else {
            panic!("expected health");
        };
        assert_eq!(health.shards, 4);
        assert_eq!(health.queue_capacity, 32);
        // Every shard got a dedicated worker despite the budget of 2.
        assert_eq!(health.workers, 4);
        service.join();
    }
}
