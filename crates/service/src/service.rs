//! The service core: admission control, the worker pool, and request
//! handling — everything except the TCP listener.
//!
//! [`Service::handle_line`] is the entire protocol state machine: one
//! request line in, one response line out. Connection threads call it
//! directly; the TCP layer in [`server`](crate::server) is a thin loop
//! around it, which is what makes the golden-corpus tests possible — they
//! drive `handle_line` in-process and pin exact response bytes without a
//! socket in sight.
//!
//! ## Job flow
//!
//! `solve`/`analyze` requests are validated on the connection thread
//! (unknown algorithm, bad ε, …, are rejected *before* consuming queue
//! capacity), then enqueued on the bounded [`JobQueue`]. A full queue is
//! an immediate `overloaded` reply — admission control by backpressure,
//! never unbounded buffering. Workers dequeue, check the queue-wait
//! deadline, consult the result cache, and run the engine; the connection
//! thread blocks on a rendezvous channel until its reply arrives
//! (connection concurrency, not request pipelining, is the concurrency
//! unit).
//!
//! ## Shutdown
//!
//! `shutdown` flips `accepting` and closes the queue. Already-accepted
//! jobs drain; later solve/analyze requests get an `unavailable` error;
//! `health`/`metrics` keep answering so operators can watch the drain.

use crate::cache::{ResultCache, SolveKey};
use crate::metrics::Metrics;
use crate::protocol::{
    kind, Algorithm, AnalyzeBody, AnalyzeResult, DeadlineInfo, ErrorInfo, HealthInfo, Op,
    OverloadInfo, Reply, Request, Response, SolveBody, SolveResult, PROTOCOL_SCHEMA,
};
use asm_core::baselines::{distributed_gs, truncated_gs};
use asm_core::{almost_regular_asm, asm, rand_asm, AlmostRegularParams, AsmConfig, RandAsmParams};
use asm_matching::{
    count_eps_blocking_pairs_with, verify_matching, BlockingScratch, StabilityReport,
};
use asm_maximal::MatcherBackend;
use asm_runtime::{JobQueue, PushError, WorkerPool};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Tunables for a [`Service`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads (0 ⇒ clamped to 1; the CLI maps 0 to the machine's
    /// parallelism before constructing the service).
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue answers `overloaded`.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Artificial per-job service delay in milliseconds, applied by the
    /// worker before the deadline check. Zero in production; nonzero makes
    /// queue-wait deadlines and overload deterministic for tests and load
    /// shaping.
    pub worker_delay_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            worker_delay_ms: 0,
        }
    }
}

/// A queued solve/analyze job plus its reply rendezvous.
struct Job {
    enqueued: Instant,
    deadline_ms: u64,
    body: JobBody,
    reply_tx: mpsc::Sender<Reply>,
}

enum JobBody {
    Solve {
        body: SolveBody,
        algorithm: Algorithm,
        backend: MatcherBackend,
    },
    Analyze(AnalyzeBody),
}

/// The matching service: admission control, workers, cache, metrics.
///
/// Construct with [`Service::start`]; share via the returned `Arc`.
pub struct Service {
    config: ServiceConfig,
    workers: usize,
    queue: Arc<JobQueue<Job>>,
    pool: Mutex<Option<WorkerPool>>,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    accepting: AtomicBool,
}

impl Service {
    /// Starts the worker pool and returns the shared service handle.
    pub fn start(config: ServiceConfig) -> Arc<Service> {
        let workers = config.workers.max(1);
        let queue = JobQueue::new(config.queue_capacity);
        let cache = Arc::new(ResultCache::new(config.cache_capacity));
        let metrics = Arc::new(Metrics::new());
        let pool = {
            let cache = Arc::clone(&cache);
            let metrics = Arc::clone(&metrics);
            let delay_ms = config.worker_delay_ms;
            WorkerPool::spawn(workers, &queue, move |_index, job: Job| {
                run_job(job, &cache, &metrics, delay_ms);
            })
        };
        Arc::new(Service {
            config,
            workers,
            queue,
            pool: Mutex::new(Some(pool)),
            cache,
            metrics,
            accepting: AtomicBool::new(true),
        })
    }

    /// Handles one request line, returning the single response line
    /// (no trailing newline). Never panics on untrusted input.
    pub fn handle_line(&self, line: &str) -> String {
        self.metrics.incr(&self.metrics.received);
        let request = match crate::protocol::parse_request(line) {
            Ok(request) => request,
            Err(err) => {
                self.metrics.incr(&self.metrics.malformed);
                self.metrics.incr(&self.metrics.errors);
                return crate::protocol::render(&Response {
                    id: None,
                    reply: Reply::Error(ErrorInfo::new(kind::MALFORMED, err.to_string())),
                });
            }
        };
        let id = request.id;
        let reply = self.dispatch(request);
        crate::protocol::render(&Response { id, reply })
    }

    fn dispatch(&self, request: Request) -> Reply {
        match request.op {
            Op::Health => {
                self.metrics.incr(&self.metrics.health);
                Reply::Health(HealthInfo {
                    schema: PROTOCOL_SCHEMA,
                    accepting: self.is_accepting(),
                    workers: self.workers as u64,
                    queue_capacity: self.config.queue_capacity as u64,
                    queue_depth: self.queue.len() as u64,
                })
            }
            Op::Metrics => {
                self.metrics.incr(&self.metrics.metrics);
                Reply::Metrics(
                    self.metrics
                        .snapshot(self.queue.len() as u64, self.cache.len() as u64),
                )
            }
            Op::Shutdown => {
                self.metrics.incr(&self.metrics.shutdown);
                self.begin_shutdown();
                Reply::ShuttingDown
            }
            Op::Solve(body) => match validate_solve(&body) {
                Ok((algorithm, backend)) => self.submit(
                    body.deadline_ms,
                    JobBody::Solve {
                        body,
                        algorithm,
                        backend,
                    },
                ),
                Err(reply) => {
                    self.metrics.incr(&self.metrics.errors);
                    *reply
                }
            },
            Op::Analyze(body) => {
                if !(body.eps.is_finite() && body.eps >= 0.0) {
                    self.metrics.incr(&self.metrics.errors);
                    return Reply::Error(ErrorInfo::new(
                        kind::INVALID,
                        format!("analyze eps must be finite and >= 0, got {}", body.eps),
                    ));
                }
                self.submit(0, JobBody::Analyze(body))
            }
        }
    }

    /// Enqueues a job and blocks until its reply arrives.
    fn submit(&self, deadline_ms: u64, body: JobBody) -> Reply {
        if !self.is_accepting() {
            self.metrics.incr(&self.metrics.errors);
            return Reply::Error(ErrorInfo::new(
                kind::UNAVAILABLE,
                "service is shutting down",
            ));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            enqueued: Instant::now(),
            deadline_ms,
            body,
            reply_tx,
        };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.metrics.observe_queue_depth(self.queue.len() as u64);
            }
            Err(PushError::Full(_)) => {
                self.metrics.incr(&self.metrics.overloaded);
                return Reply::Overloaded(OverloadInfo {
                    queue_capacity: self.config.queue_capacity as u64,
                    queue_depth: self.queue.len() as u64,
                });
            }
            Err(PushError::Closed(_)) => {
                self.metrics.incr(&self.metrics.errors);
                return Reply::Error(ErrorInfo::new(
                    kind::UNAVAILABLE,
                    "service is shutting down",
                ));
            }
        }
        match reply_rx.recv() {
            Ok(reply) => {
                self.count_reply(&reply);
                reply
            }
            Err(_) => {
                // The worker died (panic) before replying.
                self.metrics.incr(&self.metrics.errors);
                Reply::Error(ErrorInfo::new(kind::SOLVE, "worker failed before replying"))
            }
        }
    }

    /// Attributes a worker-produced reply to the outcome counters.
    /// Centralized here so the counters exactly match what went over the
    /// wire (the invariant `loadgen` verifies against `metrics`).
    fn count_reply(&self, reply: &Reply) {
        let m = &self.metrics;
        match reply {
            Reply::Solved(result) => {
                m.incr(&m.solved);
                m.add(&m.rounds_total, result.rounds);
                m.add(&m.messages_total, result.messages);
                m.add(&m.blocking_pairs_total, result.blocking_pairs);
                m.add(&m.matched_total, result.matched);
                if result.cached {
                    m.incr(&m.cache_hits);
                } else {
                    m.incr(&m.cache_misses);
                }
            }
            Reply::Analyzed(_) => m.incr(&m.analyzed),
            Reply::DeadlineExceeded(_) => m.incr(&m.deadline_exceeded),
            Reply::Error(_) => m.incr(&m.errors),
            // Workers never produce the remaining variants.
            _ => {}
        }
    }

    /// Whether new solve/analyze jobs are admitted.
    pub fn is_accepting(&self) -> bool {
        self.accepting.load(Ordering::SeqCst)
    }

    /// Begins graceful shutdown: stop admitting, close the queue.
    /// Idempotent; already-queued jobs still run to completion.
    pub fn begin_shutdown(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        self.queue.close();
    }

    /// Blocks until every accepted job has been drained and the workers
    /// have exited. Implies [`begin_shutdown`](Service::begin_shutdown).
    pub fn join(&self) {
        self.begin_shutdown();
        let pool = self.pool.lock().expect("pool lock poisoned").take();
        if let Some(pool) = pool {
            pool.join();
        }
    }

    /// The live metrics handle (for tests and embedding).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

/// Pre-admission validation: everything that can be rejected without
/// building the instance.
fn validate_solve(body: &SolveBody) -> Result<(Algorithm, MatcherBackend), Box<Reply>> {
    let invalid = |message: String| Box::new(Reply::Error(ErrorInfo::new(kind::INVALID, message)));
    let algorithm = Algorithm::parse(&body.algorithm)
        .ok_or_else(|| invalid(format!("unknown algorithm `{}`", body.algorithm)))?;
    let backend = crate::protocol::parse_backend(&body.backend)
        .ok_or_else(|| invalid(format!("unknown backend `{}`", body.backend)))?;
    match algorithm {
        Algorithm::Asm => {
            let config = asm_config(body.eps, backend, body.seed);
            config
                .validate()
                .map_err(|err| invalid(format!("invalid asm parameters: {err}")))?;
        }
        Algorithm::RandAsm | Algorithm::AlmostRegular => {
            if !(body.eps > 0.0 && body.eps.is_finite()) {
                return Err(invalid(format!(
                    "eps must be positive and finite, got {}",
                    body.eps
                )));
            }
            if !(body.delta > 0.0 && body.delta < 1.0) {
                return Err(invalid(format!(
                    "delta must be in (0, 1), got {}",
                    body.delta
                )));
            }
        }
        Algorithm::Gs | Algorithm::TruncatedGs => {}
    }
    Ok((algorithm, backend))
}

/// Builds an [`AsmConfig`] by struct literal — [`AsmConfig::new`] panics
/// on bad ε, and untrusted input must never panic the worker.
fn asm_config(eps: f64, backend: MatcherBackend, seed: u64) -> AsmConfig {
    AsmConfig {
        epsilon: eps,
        quantiles: None,
        delta_override: None,
        inner_multiplier: 1.0,
        backend,
        seed,
        early_exit: true,
    }
}

thread_local! {
    /// Per-worker scratch for blocking-pair audits (satellite of the
    /// blocking-pair hot-path work: no per-job allocation).
    static SCRATCH: std::cell::RefCell<BlockingScratch> =
        std::cell::RefCell::new(BlockingScratch::new());
}

/// Executes one dequeued job on a worker thread.
fn run_job(job: Job, cache: &ResultCache, metrics: &Metrics, delay_ms: u64) {
    if delay_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
    }
    let reply =
        if job.deadline_ms > 0 && job.enqueued.elapsed().as_millis() as u64 > job.deadline_ms {
            Reply::DeadlineExceeded(DeadlineInfo {
                deadline_ms: job.deadline_ms,
            })
        } else {
            match &job.body {
                JobBody::Solve {
                    body,
                    algorithm,
                    backend,
                } => run_solve(body, *algorithm, *backend, cache),
                JobBody::Analyze(body) => run_analyze(body),
            }
        };
    metrics.observe_latency_us(job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    // A disconnected receiver means the connection died; nothing to do.
    let _ = job.reply_tx.send(reply);
}

fn run_solve(
    body: &SolveBody,
    algorithm: Algorithm,
    backend: MatcherBackend,
    cache: &ResultCache,
) -> Reply {
    let key = SolveKey::new(
        &body.instance,
        &body.algorithm,
        body.eps,
        body.delta,
        body.seed,
        &body.backend,
        body.cycles,
    );
    if let Some(hit) = cache.get(&key) {
        return Reply::Solved(hit);
    }
    let inst = body.instance.build();
    let (matching, rounds, messages) = match algorithm {
        Algorithm::Asm => match asm(&inst, &asm_config(body.eps, backend, body.seed)) {
            Ok(report) => {
                let messages = report.proposals + report.acceptances + report.rejections;
                (report.matching, report.rounds, messages)
            }
            Err(err) => return solve_error(err),
        },
        Algorithm::RandAsm => {
            let params = RandAsmParams::new(body.eps, body.delta).with_seed(body.seed);
            match rand_asm(&inst, &params) {
                Ok(report) => {
                    let messages = report.proposals + report.acceptances + report.rejections;
                    (report.matching, report.rounds, messages)
                }
                Err(err) => return solve_error(err),
            }
        }
        Algorithm::AlmostRegular => {
            let params = AlmostRegularParams::new(body.eps, body.delta).with_seed(body.seed);
            match almost_regular_asm(&inst, &params) {
                Ok(report) => {
                    let messages = report.proposals + report.acceptances + report.rejections;
                    (report.matching, report.rounds, messages)
                }
                Err(err) => return solve_error(err),
            }
        }
        Algorithm::Gs => {
            let report = distributed_gs(&inst);
            (report.matching, report.rounds, report.proposals)
        }
        Algorithm::TruncatedGs => {
            let report = if body.cycles == 0 {
                distributed_gs(&inst)
            } else {
                truncated_gs(&inst, body.cycles)
            };
            (report.matching, report.rounds, report.proposals)
        }
    };
    let stability = SCRATCH
        .with(|scratch| StabilityReport::analyze_with(&inst, &matching, &mut scratch.borrow_mut()));
    let result = SolveResult {
        matched: stability.matching_size as u64,
        num_edges: stability.num_edges as u64,
        blocking_pairs: stability.blocking_pairs as u64,
        rounds,
        messages,
        matching,
        cached: false,
    };
    cache.put(key, result.clone());
    Reply::Solved(result)
}

fn solve_error(err: impl std::fmt::Display) -> Reply {
    Reply::Error(ErrorInfo::new(kind::SOLVE, err.to_string()))
}

fn run_analyze(body: &AnalyzeBody) -> Reply {
    let inst = body.instance.build();
    // Untrusted matchings must be verified before analysis: `Matching`
    // indexing panics on out-of-range ids.
    if let Err(err) = verify_matching(&inst, &body.matching) {
        return Reply::Error(ErrorInfo::new(
            kind::INVALID,
            format!("matching does not fit instance: {err}"),
        ));
    }
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let stability = StabilityReport::analyze_with(&inst, &body.matching, scratch);
        let eps_blocking = count_eps_blocking_pairs_with(&inst, &body.matching, body.eps, scratch);
        Reply::Analyzed(AnalyzeResult {
            matched: stability.matching_size as u64,
            num_edges: stability.num_edges as u64,
            blocking_pairs: stability.blocking_pairs as u64,
            unmatched_men: stability.unmatched_men as u64,
            unmatched_women: stability.unmatched_women as u64,
            eps_blocking_pairs: eps_blocking as u64,
            one_minus_eps_stable: stability.is_one_minus_eps_stable(body.eps),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_response, InstanceSpec};
    use asm_instance::generators::GeneratorConfig;

    fn service() -> Arc<Service> {
        Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 8,
            worker_delay_ms: 0,
        })
    }

    fn solve_line(id: u64, seed: u64, algorithm: &str) -> String {
        let body = SolveBody {
            instance: InstanceSpec::Generator(GeneratorConfig::Regular { n: 12, d: 4, seed }),
            algorithm: algorithm.to_string(),
            eps: 0.5,
            delta: 0.1,
            seed: 1,
            backend: "greedy".to_string(),
            deadline_ms: 0,
            cycles: 4,
        };
        crate::protocol::render(&Request {
            id: Some(id),
            op: Op::Solve(body),
        })
    }

    fn reply_of(service: &Service, line: &str) -> Reply {
        parse_response(&service.handle_line(line)).unwrap().reply
    }

    #[test]
    fn solve_produces_a_verified_matching_for_every_algorithm() {
        let service = service();
        for (id, algorithm) in ["asm", "rand-asm", "almost-regular", "gs", "truncated-gs"]
            .iter()
            .enumerate()
        {
            match reply_of(&service, &solve_line(id as u64, 3, algorithm)) {
                Reply::Solved(result) => {
                    assert_eq!(result.matched, result.matching.len() as u64, "{algorithm}");
                    assert!(!result.cached);
                }
                other => panic!("{algorithm}: expected solved, got {other:?}"),
            }
        }
        service.join();
    }

    #[test]
    fn identical_solves_hit_the_cache_with_identical_payloads() {
        let service = service();
        let first = reply_of(&service, &solve_line(1, 5, "asm"));
        let second = reply_of(&service, &solve_line(2, 5, "asm"));
        let (Reply::Solved(a), Reply::Solved(b)) = (first, second) else {
            panic!("expected two solved replies");
        };
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.rounds, b.rounds);
        let snap = service.metrics().snapshot(0, 0);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        service.join();
    }

    #[test]
    fn invalid_parameters_are_rejected_before_the_queue() {
        let service = service();
        for line in [
            solve_line(1, 1, "quantum"),
            solve_line(2, 1, "asm").replace("\"eps\":0.5", "\"eps\":-1.0"),
            solve_line(3, 1, "asm").replace("\"backend\":\"greedy\"", "\"backend\":\"magic\""),
        ] {
            match reply_of(&service, &line) {
                Reply::Error(err) => assert_eq!(err.kind, kind::INVALID, "{line}"),
                other => panic!("expected invalid error, got {other:?}"),
            }
        }
        assert_eq!(service.metrics().snapshot(0, 0).errors, 3);
        service.join();
    }

    #[test]
    fn malformed_frames_get_null_id_errors() {
        let service = service();
        let out = service.handle_line("{not json");
        assert!(out.starts_with("{\"id\":null,\"reply\":\"error\""), "{out}");
        let snap = service.metrics().snapshot(0, 0);
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.errors, 1);
        service.join();
    }

    #[test]
    fn shutdown_refuses_new_work_but_health_still_answers() {
        let service = service();
        assert!(matches!(
            reply_of(&service, "{\"id\":1,\"op\":\"shutdown\"}"),
            Reply::ShuttingDown
        ));
        match reply_of(&service, &solve_line(2, 1, "asm")) {
            Reply::Error(err) => assert_eq!(err.kind, kind::UNAVAILABLE),
            other => panic!("expected unavailable, got {other:?}"),
        }
        match reply_of(&service, "{\"id\":3,\"op\":\"health\"}") {
            Reply::Health(health) => assert!(!health.accepting),
            other => panic!("expected health, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn queue_wait_deadline_expires_deterministically() {
        // One worker sleeping 40 ms per job: the second job waits ≥ 40 ms,
        // far past its 5 ms deadline.
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
            worker_delay_ms: 40,
        });
        let line = solve_line(1, 1, "gs").replace("\"deadline_ms\":0", "\"deadline_ms\":5");
        let service2 = Arc::clone(&service);
        let line2 = line.clone();
        let racer = std::thread::spawn(move || reply_of(&service2, &line2));
        let local = reply_of(&service, &line);
        let remote = racer.join().unwrap();
        let deadline_count = [&local, &remote]
            .iter()
            .filter(|r| matches!(r, Reply::DeadlineExceeded(_)))
            .count();
        assert!(deadline_count >= 1, "got {local:?} and {remote:?}");
        service.join();
    }

    #[test]
    fn zero_capacity_queue_is_always_overloaded() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 0,
            cache_capacity: 0,
            worker_delay_ms: 0,
        });
        match reply_of(&service, &solve_line(1, 1, "gs")) {
            Reply::Overloaded(info) => assert_eq!(info.queue_capacity, 0),
            other => panic!("expected overloaded, got {other:?}"),
        }
        assert_eq!(service.metrics().snapshot(0, 0).overloaded, 1);
        service.join();
    }

    #[test]
    fn analyze_verifies_untrusted_matchings() {
        let service = service();
        let inst = asm_instance::generators::complete(4, 1);
        let body = AnalyzeBody {
            instance: InstanceSpec::Inline(inst),
            matching: asm_matching::Matching::new(2), // too small: 8 players
            eps: 0.5,
        };
        let line = crate::protocol::render(&Request {
            id: Some(1),
            op: Op::Analyze(body),
        });
        match reply_of(&service, &line) {
            Reply::Error(err) => assert_eq!(err.kind, kind::INVALID),
            other => panic!("expected invalid, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn analyze_audits_a_solved_matching_consistently() {
        let service = service();
        let Reply::Solved(result) = reply_of(&service, &solve_line(1, 9, "asm")) else {
            panic!("expected solved");
        };
        let body = AnalyzeBody {
            instance: InstanceSpec::Generator(GeneratorConfig::Regular {
                n: 12,
                d: 4,
                seed: 9,
            }),
            matching: result.matching,
            eps: 0.5,
        };
        let line = crate::protocol::render(&Request {
            id: Some(2),
            op: Op::Analyze(body),
        });
        match reply_of(&service, &line) {
            Reply::Analyzed(analyzed) => {
                assert_eq!(analyzed.blocking_pairs, result.blocking_pairs);
                assert_eq!(analyzed.matched, result.matched);
                assert!(analyzed.one_minus_eps_stable);
            }
            other => panic!("expected analyzed, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn join_drains_accepted_jobs() {
        let service = Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 0,
            worker_delay_ms: 1,
        });
        let mut handles = Vec::new();
        for i in 0..8 {
            let service = Arc::clone(&service);
            handles.push(std::thread::spawn(move || {
                reply_of(&service, &solve_line(i, i, "gs"))
            }));
        }
        // Let some submissions land, then shut down under load.
        std::thread::sleep(std::time::Duration::from_millis(2));
        service.begin_shutdown();
        let replies: Vec<Reply> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        service.join();
        // Every accepted job was answered: each reply is solved or an
        // explicit unavailable refusal — never a hang, never a lost job.
        let solved = replies
            .iter()
            .filter(|r| matches!(r, Reply::Solved(_)))
            .count();
        let refused = replies
            .iter()
            .filter(|r| matches!(r, Reply::Error(e) if e.kind == kind::UNAVAILABLE))
            .count();
        assert_eq!(solved + refused, 8, "{replies:?}");
        let snap = service.metrics().snapshot(0, 0);
        assert_eq!(snap.solved as usize, solved);
    }
}
