//! The `asm-service` wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one line of JSON. Requests look like
//!
//! ```json
//! {"id":7,"op":"solve","body":{...}}
//! {"id":8,"op":"health"}
//! ```
//!
//! and responses echo the id with a lowercase `reply` tag:
//!
//! ```json
//! {"id":7,"reply":"solved","body":{...}}
//! {"id":9,"reply":"overloaded","body":{"queue_capacity":64,"queue_depth":64}}
//! ```
//!
//! The envelope (`Request`/`Response`) is serialized by hand so the wire
//! tags are the protocol's lowercase names rather than Rust variant
//! names; the bodies are plain serde derives. The full specification —
//! field tables, error kinds, and the golden corpus that pins the exact
//! bytes — lives in `docs/PROTOCOLS.md` ("The asm-service line
//! protocol") and `crates/service/cases/`.

use asm_instance::generators::GeneratorConfig;
use asm_instance::Instance;
use asm_market::MutationOp;
use asm_matching::Matching;
use asm_maximal::MatcherBackend;
use serde::{content_get, Content, Deserialize, Serialize};

/// Protocol schema version, reported by `health` and `metrics`.
pub const PROTOCOL_SCHEMA: u64 = 1;

/// One request frame: a client-chosen correlation id plus the operation.
///
/// The id is echoed verbatim in the response. `None` models a frame whose
/// id could not be parsed (responses then carry `"id":null`).
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The requested operation.
    pub op: Op,
}

/// The operations the service understands.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Solve an instance; wire tag `"solve"`.
    Solve(SolveBody),
    /// Solve many instances in one frame; wire tag `"solve_batch"`.
    SolveBatch(BatchBody),
    /// Audit a matching against an instance; wire tag `"analyze"`.
    Analyze(AnalyzeBody),
    /// Register a persistent market; wire tag `"market_create"`.
    MarketCreate(MarketCreateBody),
    /// Apply mutations to a market; wire tag `"market_mutate"`.
    MarketMutate(MarketMutateBody),
    /// Re-solve a market (warm or cold); wire tag `"resolve"`.
    Resolve(ResolveBody),
    /// Discard a market; wire tag `"market_drop"`.
    MarketDrop(MarketDropBody),
    /// Liveness + configuration probe; wire tag `"health"`.
    Health,
    /// Metrics snapshot; wire tag `"metrics"`.
    Metrics,
    /// Begin graceful shutdown; wire tag `"shutdown"`.
    Shutdown,
}

impl Op {
    /// The lowercase wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Op::Solve(_) => "solve",
            Op::SolveBatch(_) => "solve_batch",
            Op::Analyze(_) => "analyze",
            Op::MarketCreate(_) => "market_create",
            Op::MarketMutate(_) => "market_mutate",
            Op::Resolve(_) => "resolve",
            Op::MarketDrop(_) => "market_drop",
            Op::Health => "health",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        }
    }
}

/// Body of a `solve` request. All fields are required on the wire
/// (clients state their configuration explicitly; there are no implicit
/// server-side defaults to drift).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolveBody {
    /// The instance to solve (inline or as a generator recipe).
    pub instance: InstanceSpec,
    /// Algorithm name: `asm`, `rand-asm`, `almost-regular`, `gs`, or
    /// `truncated-gs`.
    pub algorithm: String,
    /// Blocking-pair budget ε (must be positive and finite for the ASM
    /// family; ignored by `gs`/`truncated-gs`).
    pub eps: f64,
    /// Failure probability δ (RandASM / AlmostRegularASM only).
    pub delta: f64,
    /// Randomness seed. Part of the cache key: the solvers are
    /// deterministic functions of (instance, parameters, seed).
    pub seed: u64,
    /// Maximal-matching backend: `hkp`, `greedy`, `proposal`, `pr`, `ii`.
    pub backend: String,
    /// Queue-wait deadline in milliseconds; `0` disables. A job whose
    /// queue wait exceeds its deadline is answered `deadline_exceeded`
    /// without being solved (a started solve always runs to completion).
    pub deadline_ms: u64,
    /// Proposal-cycle budget for `truncated-gs` (the latency/quality knob
    /// of Floréen et al.); `0` means run Gale–Shapley to convergence.
    pub cycles: u64,
}

/// Body of a `solve_batch` request: many solves amortizing one envelope
/// (and one queue admission per shard touched). Items are solved
/// independently — each can individually succeed, be refused, expire, or
/// fail — and the reply lists one outcome per item *in request order*,
/// however the items were fanned out across shards.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchBody {
    /// The solves, in the order their outcomes will be replied.
    pub items: Vec<SolveBody>,
}

/// Body of an `analyze` request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeBody {
    /// The instance the matching is audited against.
    pub instance: InstanceSpec,
    /// The matching to audit.
    pub matching: Matching,
    /// ε for the ε-blocking-pair count and the (1−ε)-stability verdict.
    pub eps: f64,
}

/// Body of a `market_create` request. Market ops route by
/// `label_hash(market) % shards`, so one market's entire lifetime lives
/// on one shard and its mutations are serialized by construction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarketCreateBody {
    /// Client-chosen market id (the shard-affinity key).
    pub market: String,
    /// The initial preferences.
    pub instance: InstanceSpec,
    /// The market's blocking-pair budget ε (`0 < ε < ∞`): the divergence
    /// threshold every warm resolve is checked against.
    pub eps: f64,
}

/// Body of a `market_mutate` request: an ordered batch of mutations
/// applied atomically-per-op (the first invalid op stops the batch; ops
/// before it stay applied and are reported in `applied`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarketMutateBody {
    /// The market to mutate.
    pub market: String,
    /// Mutations, applied in order.
    pub ops: Vec<MutationOp>,
}

/// Body of a `resolve` request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResolveBody {
    /// The market to re-solve.
    pub market: String,
    /// `auto` (warm under the dirty-fraction limit), `warm` (force), or
    /// `cold` (force a from-scratch solve).
    pub mode: String,
}

/// Body of a `market_drop` request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarketDropBody {
    /// The market to discard.
    pub market: String,
}

/// An instance, either inline or as a pure generator recipe.
///
/// Generator specs are preferred for load generation: the request stays
/// tiny, the server rebuilds the instance bit-for-bit, and the recipe
/// doubles as a compact cache key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InstanceSpec {
    /// A generator recipe (`{"Generator":{"Regular":{...}}}` on the wire).
    Generator(GeneratorConfig),
    /// A full inline instance (`{"Inline":{...}}` on the wire).
    Inline(Instance),
}

impl InstanceSpec {
    /// Materializes the instance (builds the generator or clones inline).
    pub fn build(&self) -> Instance {
        match self {
            InstanceSpec::Generator(config) => config.build(),
            InstanceSpec::Inline(inst) => inst.clone(),
        }
    }
}

/// One response frame: the echoed id plus the reply.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request's id (`None` → `"id":null`, e.g. for malformed frames).
    pub id: Option<u64>,
    /// The reply payload.
    pub reply: Reply,
}

/// Reply payloads, tagged on the wire by their lowercase name.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Wire tag `"solved"`.
    Solved(SolveResult),
    /// Wire tag `"solved_batch"`.
    SolvedBatch(BatchResult),
    /// Wire tag `"analyzed"`.
    Analyzed(AnalyzeResult),
    /// Wire tag `"market_created"`.
    MarketCreated(MarketCreatedInfo),
    /// Wire tag `"market_mutated"`.
    MarketMutated(MarketMutatedInfo),
    /// Wire tag `"resolved"`.
    Resolved(ResolveResult),
    /// Wire tag `"market_dropped"`.
    MarketDropped(MarketDroppedInfo),
    /// Wire tag `"health"`.
    Health(HealthInfo),
    /// Wire tag `"metrics"`. Boxed: the snapshot (per-shard and
    /// per-backend arrays included) dwarfs every other variant, and
    /// `Reply` travels through the hot solve path.
    Metrics(Box<crate::metrics::MetricsSnapshot>),
    /// Wire tag `"shutting_down"`: shutdown accepted, in-flight jobs
    /// will drain.
    ShuttingDown,
    /// Wire tag `"overloaded"`: admission control refused the job.
    Overloaded(OverloadInfo),
    /// Wire tag `"deadline_exceeded"`: the job expired while queued.
    DeadlineExceeded(DeadlineInfo),
    /// Wire tag `"error"`.
    Error(ErrorInfo),
}

impl Reply {
    /// The lowercase wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Reply::Solved(_) => "solved",
            Reply::SolvedBatch(_) => "solved_batch",
            Reply::Analyzed(_) => "analyzed",
            Reply::MarketCreated(_) => "market_created",
            Reply::MarketMutated(_) => "market_mutated",
            Reply::Resolved(_) => "resolved",
            Reply::MarketDropped(_) => "market_dropped",
            Reply::Health(_) => "health",
            Reply::Metrics(_) => "metrics",
            Reply::ShuttingDown => "shutting_down",
            Reply::Overloaded(_) => "overloaded",
            Reply::DeadlineExceeded(_) => "deadline_exceeded",
            Reply::Error(_) => "error",
        }
    }
}

/// Result of a successful solve. Every field is a deterministic function
/// of the request (wall-clock lives in `metrics`, not here).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolveResult {
    /// The matching produced.
    pub matching: Matching,
    /// Number of matched pairs.
    pub matched: u64,
    /// `|E|` of the instance.
    pub num_edges: u64,
    /// Blocking pairs induced by the matching.
    pub blocking_pairs: u64,
    /// Effective communication rounds of the run (0 for centralized GS
    /// truncation bookkeeping differences — see docs).
    pub rounds: u64,
    /// Protocol messages sent (proposals + acceptances + rejections).
    pub messages: u64,
    /// Whether this result was served from the instance/result cache.
    pub cached: bool,
}

/// `solved_batch` reply body: one outcome per batch item, request order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchResult {
    /// Per-item outcomes, aligned index-for-index with the request's
    /// `items` array.
    pub items: Vec<BatchItemResult>,
}

/// The outcome of one item inside a `solve_batch`.
///
/// On the wire each item is a miniature response without an id —
/// `{"reply":"solved","body":{...}}` — reusing the single-op reply tags
/// and bodies, so a client's per-response decoding logic applies
/// per-item unchanged.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchItemResult {
    /// The item was solved; wire tag `"solved"`.
    Solved(SolveResult),
    /// The item's shard queue was full; wire tag `"overloaded"`.
    Overloaded(OverloadInfo),
    /// The item expired while queued; wire tag `"deadline_exceeded"`.
    DeadlineExceeded(DeadlineInfo),
    /// The item was invalid or its solve failed; wire tag `"error"`.
    Error(ErrorInfo),
}

impl BatchItemResult {
    /// The lowercase wire tag (matches the equivalent [`Reply`] tag).
    pub fn tag(&self) -> &'static str {
        match self {
            BatchItemResult::Solved(_) => "solved",
            BatchItemResult::Overloaded(_) => "overloaded",
            BatchItemResult::DeadlineExceeded(_) => "deadline_exceeded",
            BatchItemResult::Error(_) => "error",
        }
    }
}

impl Serialize for BatchItemResult {
    fn to_content(&self) -> Content {
        let body = match self {
            BatchItemResult::Solved(b) => b.to_content(),
            BatchItemResult::Overloaded(b) => b.to_content(),
            BatchItemResult::DeadlineExceeded(b) => b.to_content(),
            BatchItemResult::Error(b) => b.to_content(),
        };
        Content::Map(vec![
            ("reply".to_string(), Content::Str(self.tag().to_string())),
            ("body".to_string(), body),
        ])
    }
}

impl Deserialize for BatchItemResult {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a batch-item object"))?;
        let tag = match content_get(map, "reply") {
            Some(Content::Str(s)) => s.as_str(),
            _ => {
                return Err(serde::Error::custom(
                    "missing string field `reply` in batch item",
                ))
            }
        };
        let body = content_get(map, "body")
            .ok_or_else(|| serde::Error::custom(format!("batch item `{tag}` requires a `body`")))?;
        match tag {
            "solved" => Ok(BatchItemResult::Solved(SolveResult::from_content(body)?)),
            "overloaded" => Ok(BatchItemResult::Overloaded(OverloadInfo::from_content(
                body,
            )?)),
            "deadline_exceeded" => Ok(BatchItemResult::DeadlineExceeded(
                DeadlineInfo::from_content(body)?,
            )),
            "error" => Ok(BatchItemResult::Error(ErrorInfo::from_content(body)?)),
            other => Err(serde::Error::custom(format!(
                "unknown batch-item reply `{other}`"
            ))),
        }
    }
}

/// Result of an `analyze` request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeResult {
    /// Number of matched pairs.
    pub matched: u64,
    /// `|E|` of the instance.
    pub num_edges: u64,
    /// Blocking pairs (Definition 1 numerator).
    pub blocking_pairs: u64,
    /// Unmatched men.
    pub unmatched_men: u64,
    /// Unmatched women.
    pub unmatched_women: u64,
    /// ε-blocking pairs (Definition 2) at the request's ε.
    pub eps_blocking_pairs: u64,
    /// Whether the matching is (1−ε)-stable at the request's ε.
    pub one_minus_eps_stable: bool,
}

/// `market_created` reply body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarketCreatedInfo {
    /// The echoed market id.
    pub market: String,
    /// Agent slots at creation (women + men).
    pub agents: u64,
    /// `|E|` at creation.
    pub num_edges: u64,
    /// Mutation epoch (0 at creation).
    pub epoch: u64,
}

/// `market_mutated` reply body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarketMutatedInfo {
    /// The echoed market id.
    pub market: String,
    /// Ops applied (equals the request's op count unless one failed).
    pub applied: u64,
    /// Men currently dirty (pending for the next warm start).
    pub dirty_men: u64,
    /// Women currently dirty.
    pub dirty_women: u64,
    /// Mutation epoch after this batch.
    pub epoch: u64,
}

/// `resolved` reply body. Mirrors [`SolveResult`] where the fields mean
/// the same thing; `mode`/`fallback`/`epoch` are the warm-start contract.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResolveResult {
    /// The matching produced (node ids of the market's instance: women
    /// `0..num_women`, men after).
    pub matching: Matching,
    /// Number of matched pairs.
    pub matched: u64,
    /// `|E|` of the market at this resolve.
    pub num_edges: u64,
    /// Blocking pairs of the result (0: the engine runs to quiescence).
    pub blocking_pairs: u64,
    /// Propose-accept communication rounds this resolve executed — the
    /// number a warm start shrinks.
    pub rounds: u64,
    /// PROPOSE messages sent by this resolve.
    pub proposals: u64,
    /// The path that actually ran: `warm` or `cold`.
    pub mode: String,
    /// Whether a cached matching was eligible to warm from but the
    /// engine ran cold anyway (dirty fraction over the limit, or the
    /// divergence safety net tripped).
    pub fallback: bool,
    /// The market's mutation epoch this matching reflects.
    pub epoch: u64,
}

/// `market_dropped` reply body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarketDroppedInfo {
    /// The echoed market id.
    pub market: String,
    /// The market's final mutation epoch.
    pub epoch: u64,
}

/// `health` reply body.
///
/// Serialized by hand: the `shards` field is omitted when it is `1`, so
/// single-shard deployments (and the pre-sharding golden corpus) keep
/// their exact bytes; deserialization defaults a missing `shards` to `1`.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthInfo {
    /// Protocol schema version ([`PROTOCOL_SCHEMA`]).
    pub schema: u64,
    /// Whether new jobs are being admitted (false once shutdown began).
    pub accepting: bool,
    /// Worker-thread count.
    pub workers: u64,
    /// Bounded queue capacity (aggregate across shards).
    pub queue_capacity: u64,
    /// Jobs currently queued (aggregate across shards).
    pub queue_depth: u64,
    /// Number of shards serving this instance (`1` = unsharded; omitted
    /// from the wire at `1`).
    pub shards: u64,
}

impl Serialize for HealthInfo {
    fn to_content(&self) -> Content {
        let mut map = vec![
            ("schema".to_string(), self.schema.to_content()),
            ("accepting".to_string(), self.accepting.to_content()),
            ("workers".to_string(), self.workers.to_content()),
            (
                "queue_capacity".to_string(),
                self.queue_capacity.to_content(),
            ),
            ("queue_depth".to_string(), self.queue_depth.to_content()),
        ];
        if self.shards != 1 {
            map.push(("shards".to_string(), self.shards.to_content()));
        }
        Content::Map(map)
    }
}

impl Deserialize for HealthInfo {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a health object"))?;
        let field = |name: &str| {
            content_get(map, name)
                .ok_or_else(|| serde::Error::custom(format!("missing field `{name}` in health")))
        };
        Ok(HealthInfo {
            schema: u64::from_content(field("schema")?)?,
            accepting: bool::from_content(field("accepting")?)?,
            workers: u64::from_content(field("workers")?)?,
            queue_capacity: u64::from_content(field("queue_capacity")?)?,
            queue_depth: u64::from_content(field("queue_depth")?)?,
            shards: match content_get(map, "shards") {
                Some(c) => u64::from_content(c)?,
                None => 1,
            },
        })
    }
}

/// `overloaded` reply body.
///
/// Serialized by hand: the `reason` field is omitted when empty, so
/// replies shed by the service's own admission control (which never sets
/// a reason) keep their exact pre-router bytes. The router tier sets
/// `reason` to [`OVERLOAD_REASON_ROUTER`] when *it* shed the request
/// (every candidate backend down, or the forward queue full) so clients
/// can tell a router shed from a backend queue refusal.
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadInfo {
    /// The queue's capacity.
    pub queue_capacity: u64,
    /// Queue depth at the moment of refusal.
    pub queue_depth: u64,
    /// Who shed the request: empty (and omitted from the wire) for the
    /// service's own queue, [`OVERLOAD_REASON_ROUTER`] for the router.
    pub reason: String,
}

/// The `reason` string the router tier stamps on `overloaded` replies it
/// originates (as opposed to relaying from a backend).
pub const OVERLOAD_REASON_ROUTER: &str = "router";

impl OverloadInfo {
    /// A service-origin refusal (no `reason` on the wire).
    pub fn new(queue_capacity: u64, queue_depth: u64) -> Self {
        OverloadInfo {
            queue_capacity,
            queue_depth,
            reason: String::new(),
        }
    }

    /// A router-origin shed (`reason` = [`OVERLOAD_REASON_ROUTER`]).
    pub fn shed(queue_capacity: u64, queue_depth: u64) -> Self {
        OverloadInfo {
            queue_capacity,
            queue_depth,
            reason: OVERLOAD_REASON_ROUTER.to_string(),
        }
    }
}

impl Serialize for OverloadInfo {
    fn to_content(&self) -> Content {
        let mut map = vec![
            (
                "queue_capacity".to_string(),
                self.queue_capacity.to_content(),
            ),
            ("queue_depth".to_string(), self.queue_depth.to_content()),
        ];
        if !self.reason.is_empty() {
            map.push(("reason".to_string(), self.reason.to_content()));
        }
        Content::Map(map)
    }
}

impl Deserialize for OverloadInfo {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected an overloaded object"))?;
        let field = |name: &str| {
            content_get(map, name).ok_or_else(|| {
                serde::Error::custom(format!("missing field `{name}` in overloaded"))
            })
        };
        Ok(OverloadInfo {
            queue_capacity: u64::from_content(field("queue_capacity")?)?,
            queue_depth: u64::from_content(field("queue_depth")?)?,
            reason: match content_get(map, "reason") {
                Some(c) => String::from_content(c)?,
                None => String::new(),
            },
        })
    }
}

/// `deadline_exceeded` reply body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeadlineInfo {
    /// The deadline the request carried.
    pub deadline_ms: u64,
}

/// `error` reply body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ErrorInfo {
    /// Error class: one of [`kind::MALFORMED`], [`kind::INVALID`],
    /// [`kind::SOLVE`], [`kind::UNAVAILABLE`].
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

/// The error-kind strings of [`ErrorInfo`].
pub mod kind {
    /// The frame was not a valid request (bad JSON, missing envelope
    /// fields, unknown op).
    pub const MALFORMED: &str = "malformed";
    /// The request parsed but its parameters are unusable (unknown
    /// algorithm/backend, out-of-range ε, matching/instance mismatch).
    pub const INVALID: &str = "invalid";
    /// The solver itself failed.
    pub const SOLVE: &str = "solve";
    /// The service is shutting down and no longer admits jobs.
    pub const UNAVAILABLE: &str = "unavailable";
}

impl ErrorInfo {
    /// Builds an error body from a kind constant and message.
    pub fn new(kind: &str, message: impl Into<String>) -> Self {
        ErrorInfo {
            kind: kind.to_string(),
            message: message.into(),
        }
    }
}

// ------------------------------------------------------------ envelopes

impl Serialize for Request {
    fn to_content(&self) -> Content {
        let mut map = vec![
            ("id".to_string(), self.id.to_content()),
            ("op".to_string(), Content::Str(self.op.tag().to_string())),
        ];
        match &self.op {
            Op::Solve(body) => map.push(("body".to_string(), body.to_content())),
            Op::SolveBatch(body) => map.push(("body".to_string(), body.to_content())),
            Op::Analyze(body) => map.push(("body".to_string(), body.to_content())),
            Op::MarketCreate(body) => map.push(("body".to_string(), body.to_content())),
            Op::MarketMutate(body) => map.push(("body".to_string(), body.to_content())),
            Op::Resolve(body) => map.push(("body".to_string(), body.to_content())),
            Op::MarketDrop(body) => map.push(("body".to_string(), body.to_content())),
            Op::Health | Op::Metrics | Op::Shutdown => {}
        }
        Content::Map(map)
    }
}

impl Deserialize for Request {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a request object"))?;
        // The envelope is strict: a typoed key (`"bdy"`, `"opp"`) would
        // otherwise silently change the request's meaning.
        for (key, _) in map {
            if key != "id" && key != "op" && key != "body" {
                return Err(serde::Error::custom(format!(
                    "unknown field `{key}` in request envelope (expected `id`, `op`, `body`)"
                )));
            }
        }
        let id = match content_get(map, "id") {
            Some(c) => Option::<u64>::from_content(c)?,
            None => return Err(serde::Error::custom("missing field `id` in request")),
        };
        let tag = match content_get(map, "op") {
            Some(Content::Str(s)) => s.as_str(),
            Some(other) => {
                return Err(serde::Error::custom(format!(
                    "field `op` must be a string, found {}",
                    other.kind()
                )))
            }
            None => return Err(serde::Error::custom("missing field `op` in request")),
        };
        let body = || {
            content_get(map, "body")
                .ok_or_else(|| serde::Error::custom(format!("op `{tag}` requires a `body`")))
        };
        let op = match tag {
            "solve" => Op::Solve(SolveBody::from_content(body()?)?),
            "solve_batch" => Op::SolveBatch(BatchBody::from_content(body()?)?),
            "analyze" => Op::Analyze(AnalyzeBody::from_content(body()?)?),
            "market_create" => Op::MarketCreate(MarketCreateBody::from_content(body()?)?),
            "market_mutate" => Op::MarketMutate(MarketMutateBody::from_content(body()?)?),
            "resolve" => Op::Resolve(ResolveBody::from_content(body()?)?),
            "market_drop" => Op::MarketDrop(MarketDropBody::from_content(body()?)?),
            "health" => Op::Health,
            "metrics" => Op::Metrics,
            "shutdown" => Op::Shutdown,
            other => return Err(serde::Error::custom(format!("unknown op `{other}`"))),
        };
        Ok(Request { id, op })
    }
}

impl Serialize for Response {
    fn to_content(&self) -> Content {
        let mut map = vec![
            ("id".to_string(), self.id.to_content()),
            (
                "reply".to_string(),
                Content::Str(self.reply.tag().to_string()),
            ),
        ];
        let body = match &self.reply {
            Reply::Solved(b) => Some(b.to_content()),
            Reply::SolvedBatch(b) => Some(b.to_content()),
            Reply::Analyzed(b) => Some(b.to_content()),
            Reply::MarketCreated(b) => Some(b.to_content()),
            Reply::MarketMutated(b) => Some(b.to_content()),
            Reply::Resolved(b) => Some(b.to_content()),
            Reply::MarketDropped(b) => Some(b.to_content()),
            Reply::Health(b) => Some(b.to_content()),
            Reply::Metrics(b) => Some(b.to_content()),
            Reply::Overloaded(b) => Some(b.to_content()),
            Reply::DeadlineExceeded(b) => Some(b.to_content()),
            Reply::Error(b) => Some(b.to_content()),
            Reply::ShuttingDown => None,
        };
        if let Some(b) = body {
            map.push(("body".to_string(), b));
        }
        Content::Map(map)
    }
}

impl Deserialize for Response {
    fn from_content(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a response object"))?;
        let id = match content_get(map, "id") {
            Some(c) => Option::<u64>::from_content(c)?,
            None => return Err(serde::Error::custom("missing field `id` in response")),
        };
        let tag = match content_get(map, "reply") {
            Some(Content::Str(s)) => s.as_str(),
            _ => return Err(serde::Error::custom("missing string field `reply`")),
        };
        let body = || {
            content_get(map, "body")
                .ok_or_else(|| serde::Error::custom(format!("reply `{tag}` requires a `body`")))
        };
        let reply = match tag {
            "solved" => Reply::Solved(SolveResult::from_content(body()?)?),
            "solved_batch" => Reply::SolvedBatch(BatchResult::from_content(body()?)?),
            "analyzed" => Reply::Analyzed(AnalyzeResult::from_content(body()?)?),
            "market_created" => Reply::MarketCreated(MarketCreatedInfo::from_content(body()?)?),
            "market_mutated" => Reply::MarketMutated(MarketMutatedInfo::from_content(body()?)?),
            "resolved" => Reply::Resolved(ResolveResult::from_content(body()?)?),
            "market_dropped" => Reply::MarketDropped(MarketDroppedInfo::from_content(body()?)?),
            "health" => Reply::Health(HealthInfo::from_content(body()?)?),
            "metrics" => Reply::Metrics(Box::new(crate::metrics::MetricsSnapshot::from_content(
                body()?,
            )?)),
            "shutting_down" => Reply::ShuttingDown,
            "overloaded" => Reply::Overloaded(OverloadInfo::from_content(body()?)?),
            "deadline_exceeded" => Reply::DeadlineExceeded(DeadlineInfo::from_content(body()?)?),
            "error" => Reply::Error(ErrorInfo::from_content(body()?)?),
            other => return Err(serde::Error::custom(format!("unknown reply `{other}`"))),
        };
        Ok(Response { id, reply })
    }
}

/// Parses one request frame (one line, no trailing newline).
///
/// # Errors
///
/// Returns the JSON or shape error; the server maps it to an
/// [`kind::MALFORMED`] error response with `"id":null`.
pub fn parse_request(line: &str) -> Result<Request, serde_json::Error> {
    serde_json::from_str(line)
}

/// Parses one response frame.
///
/// # Errors
///
/// Returns the JSON or shape error (clients count these as protocol
/// errors).
pub fn parse_response(line: &str) -> Result<Response, serde_json::Error> {
    serde_json::from_str(line)
}

/// Renders a frame as its single wire line (no trailing newline).
pub fn render<T: Serialize>(frame: &T) -> String {
    serde_json::to_string(frame).expect("protocol frames always serialize")
}

// ------------------------------------------------- algorithm / backend

/// The algorithms the service can run per request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Deterministic `ASM` (Algorithm 3).
    Asm,
    /// `RandASM` (Algorithm 4).
    RandAsm,
    /// `AlmostRegularASM` (Algorithm 5).
    AlmostRegular,
    /// Distributed Gale–Shapley to convergence.
    Gs,
    /// Truncated Gale–Shapley (per-request latency/quality knob).
    TruncatedGs,
}

impl Algorithm {
    /// Parses a wire/CLI name (`asm`, `rand-asm`, `almost-regular`, `gs`,
    /// `truncated-gs`).
    pub fn parse(name: &str) -> Option<Algorithm> {
        match name {
            "asm" => Some(Algorithm::Asm),
            "rand-asm" => Some(Algorithm::RandAsm),
            "almost-regular" => Some(Algorithm::AlmostRegular),
            "gs" => Some(Algorithm::Gs),
            "truncated-gs" => Some(Algorithm::TruncatedGs),
            _ => None,
        }
    }

    /// The wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Asm => "asm",
            Algorithm::RandAsm => "rand-asm",
            Algorithm::AlmostRegular => "almost-regular",
            Algorithm::Gs => "gs",
            Algorithm::TruncatedGs => "truncated-gs",
        }
    }
}

/// Parses a maximal-matching backend name (`hkp`, `greedy`, `proposal`,
/// `pr`, `ii`) — shared by the wire protocol and the `asm` CLI.
pub fn parse_backend(name: &str) -> Option<MatcherBackend> {
    match name {
        "hkp" => Some(MatcherBackend::HkpOracle),
        "greedy" => Some(MatcherBackend::DetGreedy),
        "proposal" => Some(MatcherBackend::BipartiteProposal),
        "pr" => Some(MatcherBackend::PanconesiRizzi),
        "ii" => Some(MatcherBackend::IsraeliItai { max_iterations: 64 }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_body() -> SolveBody {
        SolveBody {
            instance: InstanceSpec::Generator(GeneratorConfig::Regular {
                n: 8,
                d: 3,
                seed: 7,
            }),
            algorithm: "asm".to_string(),
            eps: 0.5,
            delta: 0.1,
            seed: 42,
            backend: "greedy".to_string(),
            deadline_ms: 0,
            cycles: 0,
        }
    }

    #[test]
    fn request_round_trips_with_lowercase_tags() {
        let req = Request {
            id: Some(7),
            op: Op::Solve(solve_body()),
        };
        let line = render(&req);
        assert!(
            line.starts_with("{\"id\":7,\"op\":\"solve\",\"body\":"),
            "{line}"
        );
        assert_eq!(parse_request(&line).unwrap(), req);
    }

    #[test]
    fn bodyless_ops_omit_the_body_field() {
        for (op, tag) in [
            (Op::Health, "health"),
            (Op::Metrics, "metrics"),
            (Op::Shutdown, "shutdown"),
        ] {
            let req = Request { id: Some(1), op };
            let line = render(&req);
            assert_eq!(line, format!("{{\"id\":1,\"op\":\"{tag}\"}}"));
            assert_eq!(parse_request(&line).unwrap().op.tag(), tag);
        }
    }

    /// One request per [`Op`] variant — `every_request_variant_round_trips`
    /// fails to compile when a new variant is added without extending it.
    fn one_of_every_request() -> Vec<Request> {
        use asm_market::{MutationOp, Side};
        let every_op = |op: &Op| match op {
            Op::Solve(_)
            | Op::SolveBatch(_)
            | Op::Analyze(_)
            | Op::MarketCreate(_)
            | Op::MarketMutate(_)
            | Op::Resolve(_)
            | Op::MarketDrop(_)
            | Op::Health
            | Op::Metrics
            | Op::Shutdown => (),
        };
        let ops = vec![
            Op::Solve(solve_body()),
            Op::SolveBatch(BatchBody {
                items: vec![solve_body()],
            }),
            Op::Analyze(AnalyzeBody {
                instance: InstanceSpec::Generator(GeneratorConfig::Complete { n: 3, seed: 1 }),
                matching: Matching::new(6),
                eps: 1.0,
            }),
            Op::MarketCreate(MarketCreateBody {
                market: "m1".to_string(),
                instance: InstanceSpec::Generator(GeneratorConfig::Regular {
                    n: 8,
                    d: 3,
                    seed: 7,
                }),
                eps: 0.5,
            }),
            Op::MarketMutate(MarketMutateBody {
                market: "m1".to_string(),
                ops: vec![
                    MutationOp::SetPrefs {
                        side: Side::Men,
                        index: 2,
                        prefs: vec![1, 0],
                    },
                    MutationOp::AddAgent {
                        side: Side::Women,
                        prefs: vec![3],
                    },
                    MutationOp::RemoveAgent {
                        side: Side::Men,
                        index: 0,
                    },
                ],
            }),
            Op::Resolve(ResolveBody {
                market: "m1".to_string(),
                mode: "auto".to_string(),
            }),
            Op::MarketDrop(MarketDropBody {
                market: "m1".to_string(),
            }),
            Op::Health,
            Op::Metrics,
            Op::Shutdown,
        ];
        ops.iter().for_each(every_op);
        ops.into_iter()
            .enumerate()
            .map(|(i, op)| Request {
                id: Some(i as u64),
                op,
            })
            .collect()
    }

    #[test]
    fn every_request_variant_round_trips() {
        for req in one_of_every_request() {
            let line = render(&req);
            assert_eq!(
                parse_request(&line).unwrap(),
                req,
                "round-trip failed for op `{}`: {line}",
                req.op.tag()
            );
        }
    }

    #[test]
    fn unknown_envelope_fields_are_rejected() {
        for req in one_of_every_request() {
            let line = render(&req);
            let salted = format!("{},\"extra\":1}}", &line[..line.len() - 1]);
            let err = parse_request(&salted).unwrap_err();
            assert!(
                err.to_string().contains("extra"),
                "op `{}` must reject the unknown envelope field: {err}",
                req.op.tag()
            );
        }
    }

    #[test]
    fn market_requests_render_their_lowercase_tags() {
        let req = Request {
            id: Some(5),
            op: Op::Resolve(ResolveBody {
                market: "alpha".to_string(),
                mode: "warm".to_string(),
            }),
        };
        assert_eq!(
            render(&req),
            "{\"id\":5,\"op\":\"resolve\",\"body\":{\"market\":\"alpha\",\"mode\":\"warm\"}}"
        );
    }

    #[test]
    fn market_replies_round_trip() {
        let replies = vec![
            Reply::MarketCreated(MarketCreatedInfo {
                market: "m".to_string(),
                agents: 16,
                num_edges: 24,
                epoch: 0,
            }),
            Reply::MarketMutated(MarketMutatedInfo {
                market: "m".to_string(),
                applied: 2,
                dirty_men: 1,
                dirty_women: 3,
                epoch: 2,
            }),
            Reply::Resolved(ResolveResult {
                matching: Matching::new(4),
                matched: 0,
                num_edges: 4,
                blocking_pairs: 0,
                rounds: 6,
                proposals: 9,
                mode: "warm".to_string(),
                fallback: false,
                epoch: 2,
            }),
            Reply::MarketDropped(MarketDroppedInfo {
                market: "m".to_string(),
                epoch: 2,
            }),
        ];
        for reply in replies {
            let resp = Response { id: Some(1), reply };
            let line = render(&resp);
            assert_eq!(
                parse_response(&line).unwrap(),
                resp,
                "round-trip failed: {line}"
            );
        }
    }

    #[test]
    fn null_id_round_trips() {
        let resp = Response {
            id: None,
            reply: Reply::Error(ErrorInfo::new(kind::MALFORMED, "boom")),
        };
        let line = render(&resp);
        assert!(
            line.starts_with("{\"id\":null,\"reply\":\"error\""),
            "{line}"
        );
        assert_eq!(parse_response(&line).unwrap(), resp);
    }

    #[test]
    fn unknown_op_is_rejected_with_its_name() {
        let err = parse_request("{\"id\":1,\"op\":\"dance\"}").unwrap_err();
        assert!(err.to_string().contains("dance"), "{err}");
    }

    #[test]
    fn missing_body_is_rejected() {
        let err = parse_request("{\"id\":1,\"op\":\"solve\"}").unwrap_err();
        assert!(err.to_string().contains("body"), "{err}");
    }

    #[test]
    fn missing_id_is_rejected() {
        assert!(parse_request("{\"op\":\"health\"}").is_err());
    }

    #[test]
    fn shutting_down_response_round_trips() {
        let resp = Response {
            id: Some(3),
            reply: Reply::ShuttingDown,
        };
        let line = render(&resp);
        assert_eq!(line, "{\"id\":3,\"reply\":\"shutting_down\"}");
        assert_eq!(parse_response(&line).unwrap(), resp);
    }

    #[test]
    fn solve_batch_request_round_trips() {
        let mut second = solve_body();
        second.seed = 43;
        let req = Request {
            id: Some(11),
            op: Op::SolveBatch(BatchBody {
                items: vec![solve_body(), second],
            }),
        };
        let line = render(&req);
        assert!(
            line.starts_with("{\"id\":11,\"op\":\"solve_batch\",\"body\":{\"items\":["),
            "{line}"
        );
        assert_eq!(parse_request(&line).unwrap(), req);
    }

    #[test]
    fn solved_batch_reply_round_trips_mixed_outcomes() {
        let resp = Response {
            id: Some(12),
            reply: Reply::SolvedBatch(BatchResult {
                items: vec![
                    BatchItemResult::Overloaded(OverloadInfo::new(4, 4)),
                    BatchItemResult::DeadlineExceeded(DeadlineInfo { deadline_ms: 5 }),
                    BatchItemResult::Error(ErrorInfo::new(kind::INVALID, "bad eps")),
                ],
            }),
        };
        let line = render(&resp);
        assert!(
            line.contains("{\"reply\":\"overloaded\",\"body\":{\"queue_capacity\":4"),
            "{line}"
        );
        assert_eq!(parse_response(&line).unwrap(), resp);
    }

    #[test]
    fn batch_item_with_unknown_tag_is_rejected() {
        let err = BatchItemResult::from_content(&Content::Map(vec![
            ("reply".to_string(), Content::Str("dance".to_string())),
            ("body".to_string(), Content::Null),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("dance"), "{err}");
    }

    #[test]
    fn health_omits_shards_at_one_and_round_trips_otherwise() {
        let mut info = HealthInfo {
            schema: PROTOCOL_SCHEMA,
            accepting: true,
            workers: 2,
            queue_capacity: 8,
            queue_depth: 0,
            shards: 1,
        };
        let line = render(&info);
        assert!(!line.contains("shards"), "{line}");
        assert_eq!(
            serde_json::from_str::<HealthInfo>(&line).unwrap(),
            info,
            "missing shards must default to 1"
        );
        info.shards = 4;
        let line = render(&info);
        assert!(line.ends_with("\"shards\":4}"), "{line}");
        assert_eq!(serde_json::from_str::<HealthInfo>(&line).unwrap(), info);
    }

    #[test]
    fn overloaded_omits_empty_reason_and_round_trips_router_shed() {
        let plain = OverloadInfo::new(64, 64);
        let line = render(&plain);
        assert_eq!(line, "{\"queue_capacity\":64,\"queue_depth\":64}");
        assert_eq!(
            serde_json::from_str::<OverloadInfo>(&line).unwrap(),
            plain,
            "missing reason must default to empty"
        );
        let shed = OverloadInfo::shed(16, 16);
        let line = render(&shed);
        assert_eq!(
            line,
            "{\"queue_capacity\":16,\"queue_depth\":16,\"reason\":\"router\"}"
        );
        assert_eq!(serde_json::from_str::<OverloadInfo>(&line).unwrap(), shed);
    }

    #[test]
    fn analyze_round_trips_with_inline_instance() {
        let inst = asm_instance::generators::complete(3, 1);
        let matching = Matching::new(inst.ids().num_players());
        let req = Request {
            id: Some(2),
            op: Op::Analyze(AnalyzeBody {
                instance: InstanceSpec::Inline(inst),
                matching,
                eps: 1.0,
            }),
        };
        assert_eq!(parse_request(&render(&req)).unwrap(), req);
    }

    #[test]
    fn instance_spec_builds_generator_and_inline_identically() {
        let config = GeneratorConfig::Regular {
            n: 6,
            d: 2,
            seed: 3,
        };
        let built = config.build();
        assert_eq!(InstanceSpec::Generator(config).build(), built);
        assert_eq!(InstanceSpec::Inline(built.clone()).build(), built);
    }

    #[test]
    fn algorithm_names_round_trip() {
        for name in ["asm", "rand-asm", "almost-regular", "gs", "truncated-gs"] {
            assert_eq!(Algorithm::parse(name).unwrap().name(), name);
        }
        assert!(Algorithm::parse("quantum").is_none());
    }

    #[test]
    fn backends_parse() {
        for name in ["hkp", "greedy", "proposal", "pr", "ii"] {
            assert!(parse_backend(name).is_some(), "{name}");
        }
        assert!(parse_backend("magic").is_none());
    }
}
