//! One backend of the router tier: its address, a pool of warm
//! connections, and the probe-driven liveness state machine.
//!
//! ## Connection pool and at-most-once retry
//!
//! Forwarder threads check a connection out of the pool for the length
//! of one request/response exchange and check it back in afterwards, so
//! every pooled connection carries at most one in-flight request and
//! replies can never interleave. A *pooled* connection that dies
//! mid-request earns exactly one retry on a freshly dialed connection —
//! the pooled socket may simply have idled past the backend's lifetime,
//! and the fresh dial settles whether the backend itself is gone. A
//! fresh dial that fails (or a fresh connection that dies) is *not*
//! retried: that is the signal the router's failover logic consumes.
//! All solves are deterministic functions of their request, so a retry
//! can never produce a different answer — the retry is idempotent by
//! construction.
//!
//! ## Liveness state machine
//!
//! ```text
//!            failure                failure × down_after
//!    up ───────────────▶ suspect ───────────────────────▶ down
//!     ▲                     │                               │
//!     └─────────────────────┴───────── success ─────────────┘
//! ```
//!
//! Failures are recorded by the router's periodic `health` probes *and*
//! by request-path exchange errors (so a SIGKILLed backend stops
//! receiving traffic within one failed request, not one probe
//! interval). Any success — probe or request — resets the failure count
//! and returns the backend to `up`, which is what lets cache-warm
//! routing resume on its hash slice when it comes back.

use crate::protocol::{parse_response, Reply, Response};
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Probe-driven liveness of one backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendState {
    /// Healthy: last probe or exchange succeeded.
    Up,
    /// At least one recent failure, but fewer than `down_after`: still
    /// routable (the next exchange settles it).
    Suspect,
    /// `down_after` consecutive failures: taken out of routing until a
    /// probe succeeds.
    Down,
}

impl BackendState {
    /// The wire name used in the merged-metrics `backends` array.
    pub fn name(self) -> &'static str {
        match self {
            BackendState::Up => "up",
            BackendState::Suspect => "suspect",
            BackendState::Down => "down",
        }
    }
}

/// A state-machine edge, reported by [`Backend::record_success`] /
/// [`Backend::record_failure`] so the router can count transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// State before the event.
    pub from: BackendState,
    /// State after the event.
    pub to: BackendState,
}

struct Liveness {
    state: BackendState,
    failures: u32,
}

/// One configured backend: resolved address, connection pool, liveness.
pub struct Backend {
    addr: SocketAddr,
    pool: Mutex<Vec<BufReader<TcpStream>>>,
    live: Mutex<Liveness>,
    down_after: u32,
    connect_timeout: Duration,
    read_timeout: Duration,
}

impl Backend {
    /// Resolves `addr` and builds an `up` backend with an empty pool.
    ///
    /// # Errors
    ///
    /// Returns the resolution error if `addr` names no socket address.
    /// The backend does *not* have to be reachable yet — the state
    /// machine discovers that.
    pub fn new(
        addr: &str,
        down_after: u32,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> io::Result<Backend> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                ErrorKind::InvalidInput,
                format!("backend address `{addr}` resolved to nothing"),
            )
        })?;
        Ok(Backend {
            addr,
            pool: Mutex::new(Vec::new()),
            live: Mutex::new(Liveness {
                state: BackendState::Up,
                failures: 0,
            }),
            down_after: down_after.max(1),
            connect_timeout,
            read_timeout,
        })
    }

    /// The resolved address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current liveness state.
    pub fn state(&self) -> BackendState {
        self.live.lock().expect("liveness lock").state
    }

    /// Records a successful probe or exchange: failures reset, state
    /// returns to `up`. Returns the transition if the state changed.
    pub fn record_success(&self) -> Option<Transition> {
        let mut live = self.live.lock().expect("liveness lock");
        live.failures = 0;
        let from = live.state;
        live.state = BackendState::Up;
        (from != BackendState::Up).then_some(Transition {
            from,
            to: BackendState::Up,
        })
    }

    /// Records a failed probe or exchange: `up → suspect`, and `suspect
    /// → down` after `down_after` consecutive failures. Also drops every
    /// pooled connection — they point at a peer that just failed.
    /// Returns the transition if the state changed.
    pub fn record_failure(&self) -> Option<Transition> {
        self.pool.lock().expect("pool lock").clear();
        let mut live = self.live.lock().expect("liveness lock");
        live.failures = live.failures.saturating_add(1);
        let from = live.state;
        let to = if live.failures >= self.down_after {
            BackendState::Down
        } else {
            BackendState::Suspect
        };
        live.state = to;
        (from != to).then_some(Transition { from, to })
    }

    /// Sends one request line and reads one response line on a pooled
    /// connection (dialing a fresh one when the pool is empty). When a
    /// *pooled* connection dies mid-request, sets `*retried` and makes
    /// exactly one more attempt on a fresh connection. The raw response
    /// line (no trailing newline) is returned verbatim — the router
    /// relays backend bytes untouched.
    ///
    /// # Errors
    ///
    /// Any dial or exchange error after the retry budget is spent; the
    /// failed connection is never returned to the pool.
    pub fn exchange(&self, line: &str, retried: &mut bool) -> io::Result<String> {
        // Pop in its own statement: an `if let` scrutinee would keep the
        // pool guard alive across the body, deadlocking with `checkin`.
        let pooled = self.pool.lock().expect("pool lock").pop();
        if let Some(mut conn) = pooled {
            match Self::try_exchange(&mut conn, line) {
                Ok(reply) => {
                    self.checkin(conn);
                    return Ok(reply);
                }
                Err(_) => *retried = true,
            }
        }
        let mut fresh = self.dial(self.connect_timeout, self.read_timeout)?;
        let reply = Self::try_exchange(&mut fresh, line)?;
        self.checkin(fresh);
        Ok(reply)
    }

    /// One `health` round trip on a dedicated short-timeout connection.
    /// Succeeds only if the backend answers a well-formed `health` reply
    /// *and* is still accepting — a draining backend will refuse solves,
    /// so probes treat it as failed and failover takes its slice.
    pub fn probe(&self, timeout: Duration) -> bool {
        let attempt = || -> io::Result<bool> {
            let mut conn = self.dial(timeout, timeout)?;
            let raw = Self::try_exchange(&mut conn, "{\"id\":0,\"op\":\"health\"}")?;
            Ok(matches!(
                parse_response(&raw),
                Ok(Response {
                    reply: Reply::Health(h),
                    ..
                }) if h.accepting
            ))
        };
        attempt().unwrap_or(false)
    }

    fn dial(
        &self,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect_timeout(&self.addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(read_timeout))?;
        Ok(BufReader::new(stream))
    }

    fn checkin(&self, conn: BufReader<TcpStream>) {
        self.pool.lock().expect("pool lock").push(conn);
    }

    /// Writes `line` + newline and reads exactly one response line.
    fn try_exchange(conn: &mut BufReader<TcpStream>, line: &str) -> io::Result<String> {
        {
            let mut stream = conn.get_ref();
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        let mut reply = String::new();
        let n = conn.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                ErrorKind::UnexpectedEof,
                "backend closed the connection mid-request",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend(down_after: u32) -> Backend {
        Backend::new(
            "127.0.0.1:1",
            down_after,
            Duration::from_millis(100),
            Duration::from_millis(100),
        )
        .unwrap()
    }

    #[test]
    fn failures_walk_up_suspect_down_and_success_recovers() {
        let b = backend(3);
        assert_eq!(b.state(), BackendState::Up);
        assert_eq!(
            b.record_failure(),
            Some(Transition {
                from: BackendState::Up,
                to: BackendState::Suspect
            })
        );
        assert_eq!(b.record_failure(), None, "suspect stays suspect below K");
        assert_eq!(
            b.record_failure(),
            Some(Transition {
                from: BackendState::Suspect,
                to: BackendState::Down
            })
        );
        assert_eq!(b.record_failure(), None, "down stays down");
        assert_eq!(
            b.record_success(),
            Some(Transition {
                from: BackendState::Down,
                to: BackendState::Up
            })
        );
        assert_eq!(b.record_success(), None, "up stays up");
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = backend(2);
        b.record_failure();
        b.record_success();
        // One failure after a recovery is suspect again, not down: the
        // count restarted.
        assert_eq!(
            b.record_failure(),
            Some(Transition {
                from: BackendState::Up,
                to: BackendState::Suspect
            })
        );
        assert_eq!(b.state(), BackendState::Suspect);
    }

    #[test]
    fn down_after_is_clamped_to_at_least_one() {
        let b = backend(0);
        b.record_failure();
        assert_eq!(b.state(), BackendState::Down);
    }

    #[test]
    fn exchange_against_nothing_fails_without_retry() {
        let b = backend(1);
        let mut retried = false;
        assert!(b
            .exchange("{\"id\":0,\"op\":\"health\"}", &mut retried)
            .is_err());
        assert!(!retried, "a fresh dial failure must not count as a retry");
        assert!(!b.probe(Duration::from_millis(50)));
    }

    #[test]
    fn unresolvable_address_is_rejected() {
        assert!(Backend::new(
            "definitely-not-a-host.invalid:1",
            1,
            Duration::from_millis(10),
            Duration::from_millis(10)
        )
        .is_err());
    }
}
