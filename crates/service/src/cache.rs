//! Content-addressed solve-result cache with LRU eviction.
//!
//! The solvers are deterministic functions of
//! `(instance, algorithm, ε, δ, seed, backend, cycles)`, so a repeated
//! request can be answered byte-identically without re-running the
//! engine. The instance component of the key is a content hash
//! ([`asm_runtime::label_hash`] over the canonical JSON of the
//! [`InstanceSpec`]) — a generator recipe
//! and the identical inline instance hash differently, which is safe
//! (it only costs a duplicate entry), while identical requests always
//! collide, which is what matters.
//!
//! Eviction is least-recently-used via a monotonic tick: each entry
//! remembers the tick of its last hit, and eviction scans for the
//! minimum. The scan is O(capacity), which is deliberate — capacities
//! are small (hundreds), and the scan only runs on insert-at-capacity.

use crate::protocol::{InstanceSpec, SolveResult};
use std::collections::HashMap;
use std::sync::Mutex;

/// The full identity of a solve request, as a hashable key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SolveKey {
    /// Content hash of the instance spec's canonical JSON.
    pub instance_hash: u64,
    /// Algorithm name.
    pub algorithm: String,
    /// ε as raw bits (f64 keys must be bit-exact, not ≈).
    pub eps_bits: u64,
    /// δ as raw bits.
    pub delta_bits: u64,
    /// Randomness seed.
    pub seed: u64,
    /// Backend name.
    pub backend: String,
    /// `truncated-gs` cycle budget.
    pub cycles: u64,
}

impl SolveKey {
    /// Builds the key for a solve request.
    pub fn new(
        instance: &InstanceSpec,
        algorithm: &str,
        eps: f64,
        delta: f64,
        seed: u64,
        backend: &str,
        cycles: u64,
    ) -> Self {
        let canonical = serde_json::to_string(instance).expect("instance specs always serialize");
        SolveKey {
            instance_hash: asm_runtime::label_hash(&canonical),
            algorithm: algorithm.to_string(),
            eps_bits: eps.to_bits(),
            delta_bits: delta.to_bits(),
            seed,
            backend: backend.to_string(),
            cycles,
        }
    }
}

struct Entry {
    result: SolveResult,
    last_used: u64,
}

/// A thread-safe LRU cache from [`SolveKey`] to [`SolveResult`].
///
/// Capacity 0 disables caching entirely (every lookup misses, inserts
/// are dropped).
pub struct ResultCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<SolveKey, Entry>,
    tick: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Looks up a result, refreshing its recency on hit. The returned
    /// clone has `cached: true`.
    pub fn get(&self, key: &SolveKey) -> Option<SolveResult> {
        if self.capacity == 0 {
            return None;
        }
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.tick += 1;
        let tick = state.tick;
        let entry = state.entries.get_mut(key)?;
        entry.last_used = tick;
        let mut result = entry.result.clone();
        result.cached = true;
        Some(result)
    }

    /// Inserts a result, evicting the least-recently-used entry at
    /// capacity. The stored copy has `cached: false` cleared so hits can
    /// uniformly mark it.
    pub fn put(&self, key: SolveKey, mut result: SolveResult) {
        if self.capacity == 0 {
            return;
        }
        result.cached = false;
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.tick += 1;
        let tick = state.tick;
        if !state.entries.contains_key(&key) && state.entries.len() >= self.capacity {
            if let Some(oldest) = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                state.entries.remove(&oldest);
            }
        }
        state.entries.insert(
            key,
            Entry {
                result,
                last_used: tick,
            },
        );
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators::GeneratorConfig;
    use asm_matching::Matching;

    fn spec(seed: u64) -> InstanceSpec {
        InstanceSpec::Generator(GeneratorConfig::Regular { n: 8, d: 3, seed })
    }

    fn result(matched: u64) -> SolveResult {
        SolveResult {
            matching: Matching::new(4),
            matched,
            num_edges: 10,
            blocking_pairs: 1,
            rounds: 5,
            messages: 20,
            cached: false,
        }
    }

    fn key(seed: u64) -> SolveKey {
        SolveKey::new(&spec(seed), "asm", 0.5, 0.1, 1, "greedy", 0)
    }

    #[test]
    fn hit_marks_cached_and_miss_returns_none() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.put(key(1), result(3));
        let hit = cache.get(&key(1)).unwrap();
        assert!(hit.cached);
        assert_eq!(hit.matched, 3);
        assert!(cache.get(&key(2)).is_none());
    }

    #[test]
    fn identical_requests_share_a_key_and_different_params_do_not() {
        assert_eq!(key(1), key(1));
        assert_ne!(key(1), key(2));
        let base = key(1);
        let other_eps = SolveKey::new(&spec(1), "asm", 0.25, 0.1, 1, "greedy", 0);
        assert_ne!(base, other_eps);
        let other_alg = SolveKey::new(&spec(1), "gs", 0.5, 0.1, 1, "greedy", 0);
        assert_ne!(base, other_alg);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.put(key(1), result(1));
        cache.put(key(2), result(2));
        // Touch key 1 so key 2 is now the LRU.
        assert!(cache.get(&key(1)).is_some());
        cache.put(key(3), result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn reinserting_updates_without_evicting() {
        let cache = ResultCache::new(2);
        cache.put(key(1), result(1));
        cache.put(key(2), result(2));
        cache.put(key(1), result(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)).unwrap().matched, 9);
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = ResultCache::new(0);
        cache.put(key(1), result(1));
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }
}
