//! Content-addressed solve-result cache with O(1) LRU eviction.
//!
//! The solvers are deterministic functions of
//! `(instance, algorithm, ε, δ, seed, backend, cycles)`, so a repeated
//! request can be answered byte-identically without re-running the
//! engine. The instance component of the key is a content hash
//! ([`asm_runtime::label_hash`] over the canonical JSON of the
//! [`InstanceSpec`]) — a generator recipe
//! and the identical inline instance hash differently, which is safe
//! (it only costs a duplicate entry), while identical requests always
//! collide, which is what matters. The sharded service reuses the same
//! hash to route jobs, so every key of one instance lives in one shard's
//! cache.
//!
//! Eviction is an intrusive doubly-linked LRU list threaded through a
//! slot arena by index (no `unsafe`, no per-entry allocation): `get`
//! unlinks the entry and pushes it to the front, `put` at capacity pops
//! the tail. Touch and evict are both O(1), so eviction cost is flat in
//! capacity — the earlier min-tick scan was O(capacity) per insert at
//! capacity, which `loadgen` mixes with more distinct instances than
//! cache slots turned into a hot path.

use crate::protocol::{InstanceSpec, SolveResult};
use std::collections::HashMap;
use std::sync::Mutex;

/// The full identity of a solve request, as a hashable key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SolveKey {
    /// Content hash of the instance spec's canonical JSON.
    pub instance_hash: u64,
    /// Algorithm name.
    pub algorithm: String,
    /// ε as raw bits (f64 keys must be bit-exact, not ≈).
    pub eps_bits: u64,
    /// δ as raw bits.
    pub delta_bits: u64,
    /// Randomness seed.
    pub seed: u64,
    /// Backend name.
    pub backend: String,
    /// `truncated-gs` cycle budget.
    pub cycles: u64,
}

impl SolveKey {
    /// Builds the key for a solve request.
    pub fn new(
        instance: &InstanceSpec,
        algorithm: &str,
        eps: f64,
        delta: f64,
        seed: u64,
        backend: &str,
        cycles: u64,
    ) -> Self {
        SolveKey {
            instance_hash: instance_hash(instance),
            algorithm: algorithm.to_string(),
            eps_bits: eps.to_bits(),
            delta_bits: delta.to_bits(),
            seed,
            backend: backend.to_string(),
            cycles,
        }
    }
}

/// Content hash of an instance spec's canonical JSON — the cache-key
/// component *and* the service's shard-routing key (identical instances
/// must land on the same shard for their cache entries to be findable).
pub fn instance_hash(instance: &InstanceSpec) -> u64 {
    let canonical = serde_json::to_string(instance).expect("instance specs always serialize");
    asm_runtime::label_hash(&canonical)
}

/// Sentinel for "no neighbour" in the intrusive list.
const NIL: usize = usize::MAX;

/// One arena slot: the entry plus its intrusive LRU links.
struct Node {
    key: SolveKey,
    result: SolveResult,
    /// Towards the MRU end (NIL for the head).
    prev: usize,
    /// Towards the LRU end (NIL for the tail).
    next: usize,
}

#[derive(Default)]
struct CacheState {
    /// Key → arena slot.
    index: HashMap<SolveKey, usize>,
    /// Slot arena; freed slots are recycled via `free`.
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    /// Most recently used slot (NIL when empty).
    head: usize,
    /// Least recently used slot (NIL when empty).
    tail: usize,
}

impl CacheState {
    fn new() -> Self {
        CacheState {
            head: NIL,
            tail: NIL,
            ..CacheState::default()
        }
    }

    fn node(&self, slot: usize) -> &Node {
        self.nodes[slot].as_ref().expect("linked slot is occupied")
    }

    fn node_mut(&mut self, slot: usize) -> &mut Node {
        self.nodes[slot].as_mut().expect("linked slot is occupied")
    }

    /// Detaches `slot` from the recency list (its links become dangling;
    /// callers relink or free immediately).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let n = self.node(slot);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.node_mut(n).prev = prev,
        }
    }

    /// Links `slot` in as the most recently used entry.
    fn push_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(slot);
            n.prev = NIL;
            n.next = old_head;
        }
        match old_head {
            NIL => self.tail = slot,
            h => self.node_mut(h).prev = slot,
        }
        self.head = slot;
    }

    /// Moves an already-linked slot to the front. O(1).
    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Evicts the least-recently-used entry. O(1).
    fn evict_tail(&mut self) {
        let slot = self.tail;
        if slot == NIL {
            return;
        }
        self.unlink(slot);
        let node = self.nodes[slot].take().expect("tail slot is occupied");
        self.index.remove(&node.key);
        self.free.push(slot);
    }

    /// Stores a new entry at the front, reusing a freed slot if any.
    fn insert_front(&mut self, key: SolveKey, result: SolveResult) {
        let node = Node {
            key: key.clone(),
            result,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Some(node);
                slot
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.push_front(slot);
    }
}

/// A thread-safe LRU cache from [`SolveKey`] to [`SolveResult`].
///
/// Capacity 0 disables caching entirely (every lookup misses, inserts
/// are dropped).
pub struct ResultCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            state: Mutex::new(CacheState::new()),
        }
    }

    /// Looks up a result, refreshing its recency on hit. The returned
    /// clone has `cached: true`.
    pub fn get(&self, key: &SolveKey) -> Option<SolveResult> {
        if self.capacity == 0 {
            return None;
        }
        let mut state = self.state.lock().expect("cache lock poisoned");
        let slot = *state.index.get(key)?;
        state.touch(slot);
        let mut result = state.node(slot).result.clone();
        result.cached = true;
        Some(result)
    }

    /// Inserts a result, evicting the least-recently-used entry at
    /// capacity. The stored copy has `cached: false` cleared so hits can
    /// uniformly mark it.
    pub fn put(&self, key: SolveKey, mut result: SolveResult) {
        if self.capacity == 0 {
            return;
        }
        result.cached = false;
        let mut state = self.state.lock().expect("cache lock poisoned");
        if let Some(&slot) = state.index.get(&key) {
            state.touch(slot);
            state.node_mut(slot).result = result;
            return;
        }
        if state.index.len() >= self.capacity {
            state.evict_tail();
        }
        state.insert_front(key, result);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock poisoned").index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_instance::generators::GeneratorConfig;
    use asm_matching::Matching;

    fn spec(seed: u64) -> InstanceSpec {
        InstanceSpec::Generator(GeneratorConfig::Regular { n: 8, d: 3, seed })
    }

    fn result(matched: u64) -> SolveResult {
        SolveResult {
            matching: Matching::new(4),
            matched,
            num_edges: 10,
            blocking_pairs: 1,
            rounds: 5,
            messages: 20,
            cached: false,
        }
    }

    fn key(seed: u64) -> SolveKey {
        SolveKey::new(&spec(seed), "asm", 0.5, 0.1, 1, "greedy", 0)
    }

    /// A key built without serializing an instance, for hot-loop tests.
    fn raw_key(i: u64) -> SolveKey {
        SolveKey {
            instance_hash: i,
            algorithm: "asm".to_string(),
            eps_bits: 0,
            delta_bits: 0,
            seed: 0,
            backend: "greedy".to_string(),
            cycles: 0,
        }
    }

    #[test]
    fn hit_marks_cached_and_miss_returns_none() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.put(key(1), result(3));
        let hit = cache.get(&key(1)).unwrap();
        assert!(hit.cached);
        assert_eq!(hit.matched, 3);
        assert!(cache.get(&key(2)).is_none());
    }

    #[test]
    fn identical_requests_share_a_key_and_different_params_do_not() {
        assert_eq!(key(1), key(1));
        assert_ne!(key(1), key(2));
        let base = key(1);
        let other_eps = SolveKey::new(&spec(1), "asm", 0.25, 0.1, 1, "greedy", 0);
        assert_ne!(base, other_eps);
        let other_alg = SolveKey::new(&spec(1), "gs", 0.5, 0.1, 1, "greedy", 0);
        assert_ne!(base, other_alg);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.put(key(1), result(1));
        cache.put(key(2), result(2));
        // Touch key 1 so key 2 is now the LRU.
        assert!(cache.get(&key(1)).is_some());
        cache.put(key(3), result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        let cache = ResultCache::new(4);
        for i in 1..=4 {
            cache.put(raw_key(i), result(i));
        }
        // Recency, most→least recent, is now [4, 3, 2, 1]. Touch 3 then
        // 1: [1, 3, 4, 2]. The exact eviction order must be 2, 4, 3, 1.
        assert!(cache.get(&raw_key(3)).is_some());
        assert!(cache.get(&raw_key(1)).is_some());
        let mut evicted = Vec::new();
        for next in 5..=8 {
            cache.put(raw_key(next), result(next));
            for candidate in 1..=4 {
                if !cache
                    .state
                    .lock()
                    .unwrap()
                    .index
                    .contains_key(&raw_key(candidate))
                    && !evicted.contains(&candidate)
                {
                    evicted.push(candidate);
                }
            }
        }
        assert_eq!(evicted, vec![2, 4, 3, 1]);
        assert_eq!(cache.len(), 4);
        for survivor in 5..=8 {
            assert!(cache.get(&raw_key(survivor)).is_some(), "{survivor}");
        }
    }

    #[test]
    fn reinserting_updates_without_evicting() {
        let cache = ResultCache::new(2);
        cache.put(key(1), result(1));
        cache.put(key(2), result(2));
        cache.put(key(1), result(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)).unwrap().matched, 9);
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn reinserting_refreshes_recency() {
        let cache = ResultCache::new(2);
        cache.put(raw_key(1), result(1));
        cache.put(raw_key(2), result(2));
        // Re-putting 1 makes 2 the LRU.
        cache.put(raw_key(1), result(1));
        cache.put(raw_key(3), result(3));
        assert!(cache.get(&raw_key(1)).is_some());
        assert!(cache.get(&raw_key(2)).is_none());
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = ResultCache::new(0);
        cache.put(key(1), result(1));
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_one_churn_stays_consistent() {
        let cache = ResultCache::new(1);
        for i in 0..100 {
            cache.put(raw_key(i), result(i));
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.get(&raw_key(i)).unwrap().matched, i);
            if i > 0 {
                assert!(cache.get(&raw_key(i - 1)).is_none());
            }
        }
    }

    /// Eviction must be O(1): per-insert cost at capacity 1000 must be
    /// within an order of magnitude of capacity 10 (the old min-tick scan
    /// was O(capacity) per insert, a ~100× spread on this measurement).
    #[test]
    fn eviction_cost_is_flat_in_capacity() {
        fn churn_ns_per_insert(capacity: usize, inserts: u64) -> f64 {
            let cache = ResultCache::new(capacity);
            // Fill to capacity so every subsequent insert evicts.
            for i in 0..capacity as u64 {
                cache.put(raw_key(i), result(i));
            }
            let start = std::time::Instant::now();
            for i in 0..inserts {
                cache.put(raw_key(capacity as u64 + i), result(i));
            }
            start.elapsed().as_nanos() as f64 / inserts as f64
        }
        // Warm up allocators and branch predictors off the clock.
        churn_ns_per_insert(10, 2_000);
        let small = churn_ns_per_insert(10, 50_000);
        let large = churn_ns_per_insert(1_000, 50_000);
        assert!(
            large < small * 10.0 + 500.0,
            "eviction scales with capacity: {small:.0} ns at cap 10 vs {large:.0} ns at cap 1000"
        );
    }
}
